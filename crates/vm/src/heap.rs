//! The runtime heap: tagged values, two-part object descriptors (paper
//! Figure 1c), and a two-generation copying collector.
//!
//! A value is one 32-bit word: a tagged 31-bit integer (low bit set) or a
//! 4-byte-aligned pointer (low bit clear). An object is a descriptor word
//! followed by its *scanned* one-word fields and then its *raw* words
//! (unboxed floats, string bytes); the descriptor records both lengths,
//! exactly the "two short integers" of the paper's reordered flat
//! records.
//!
//! # Collector
//!
//! In [`GcMode::Generational`] (the default) the collected heap is a
//! nursery plus a tenured space, each a Cheney semispace pair. New
//! objects are bump-allocated in the nursery (objects too large for it
//! go straight to tenured space). A *minor* collection evacuates live
//! nursery objects, promoting those that have survived
//! [`HeapConfig::promote_after`] minor collections into tenured space
//! and copying the rest to the nursery to-space. Minor collections
//! never scan tenured space: the only tenured words they visit are the
//! slots in the *remembered set*, maintained by
//! [`Heap::store_barriered`] whenever a mutation creates a
//! tenured→nursery pointer. A *major* collection copies everything
//! live — both generations — into a fresh tenured semispace; it is the
//! final attempt before the VM traps with `HeapExhausted`.
//!
//! [`GcMode::Semispace`] keeps the pre-generational single-semispace
//! collector (every collection copies the whole live set on a fixed
//! allocation schedule) as a reference baseline for differential
//! testing and the `gc_bench` comparison.
//!
//! # Incremental major collection
//!
//! A major collection can run either stop-the-world ([`Heap::collect`]
//! with [`GcKind::Major`], the differential baseline) or in bounded
//! *slices*: [`Heap::begin_major`] flips to the other tenured semispace
//! and forwards the roots, then repeated [`Heap::major_slice`] calls
//! each advance the Cheney scan by at most a caller-chosen number of
//! copied words. While a major is *active*:
//!
//! - allocation goes black: new objects are placed at the to-space copy
//!   frontier (they will be scanned like any copied object, which is
//!   harmless because their fields are initialized before the next
//!   slice can run);
//! - the mutator must read scanned fields through the
//!   [`Heap::load_healed`] read barrier, which evacuates any from-space
//!   target on the spot and heals the slot, so registers only ever hold
//!   to-space pointers and no store can re-introduce a from-space edge;
//! - minor collections are forbidden ([`Heap::needs_gc`] reports
//!   `false`) — the nursery is part of the from-space being evacuated.
//!
//! When the caller pumps every slice back-to-back at a single
//! allocation point (the default: no yields), the copy order and object
//! placement are *identical* to the stop-the-world collector, so
//! `promoted_words`, `copied_words`, and the final heap image do not
//! depend on the slice budget. Mutator interleaving between slices
//! (fault-injected yields, or a scheduler switching tenants) is where
//! the read barrier earns its keep.
//!
//! If the to-space overflows mid-collection the heap is *finalized* to
//! a scannable, accounting-consistent state ([`Heap::check_consistency`])
//! and marked exhausted: every further allocation fails so the VM traps
//! `HeapExhausted` immediately, while already-reachable data stays
//! readable through [`Heap::resolve`].

use std::collections::HashSet;

/// Object classification stored in the descriptor's low bits.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum ObjKind {
    Record = 0,
    Array = 1,
    Ref = 2,
    Str = 3,
    BoxedFloat = 4,
}

const KIND_MASK: u32 = 0b111;
const FORWARD: u32 = 0b111;
const SCAN_SHIFT: u32 = 3;
const SCAN_BITS: u32 = 15;
const RAW_SHIFT: u32 = 18;

/// Largest scanned-field count a descriptor can record (the bytecode
/// verifier rejects `Alloc`s beyond this: the GC scanner could not
/// describe them).
pub const MAX_SCAN_FIELDS: u32 = (1 << SCAN_BITS) - 1;
/// Largest raw-word count a descriptor can record.
pub const MAX_RAW_WORDS: u32 = (1 << (32 - RAW_SHIFT)) - 1;

/// Builds a descriptor word.
pub fn descriptor(kind: ObjKind, nscan: u32, nraw: u32) -> u32 {
    debug_assert!(nscan < (1 << SCAN_BITS));
    (kind as u32) | (nscan << SCAN_SHIFT) | (nraw << RAW_SHIFT)
}

/// Decodes `(kind, nscan, nraw)` from a descriptor.
pub fn decode(desc: u32) -> (u32, u32, u32) {
    (
        desc & KIND_MASK,
        (desc >> SCAN_SHIFT) & ((1 << SCAN_BITS) - 1),
        desc >> RAW_SHIFT,
    )
}

/// Tags an integer.
pub fn tag_int(n: i64) -> u32 {
    ((n as u32) << 1) | 1
}

/// Untags an integer (sign-extended from 31 bits).
pub fn untag_int(w: u32) -> i64 {
    ((w as i32) >> 1) as i64
}

/// True if the word is a pointer.
pub fn is_ptr(w: u32) -> bool {
    w & 1 == 0 && w != 0
}

/// Collector selection for a [`Heap`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum GcMode {
    /// Two generations: nursery minor collections with promotion into a
    /// tenured space, write barrier, remembered set.
    #[default]
    Generational,
    /// The single Cheney semispace of earlier revisions: every
    /// collection copies the entire live set. The `nursery_words` knob
    /// becomes a pure allocation schedule (collect every N words).
    Semispace,
}

/// Which collection to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GcKind {
    /// Evacuate the nursery, promoting survivors per the age policy.
    /// In [`GcMode::Semispace`] this degrades to a full collection.
    Minor,
    /// Collect both generations into a fresh tenured semispace.
    Major,
}

/// Outcome of one incremental major-collection slice
/// ([`Heap::major_slice`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SliceOutcome {
    /// The collection completed; the heap has flipped to the new
    /// semispace and the nursery is empty.
    Done,
    /// Work remains; call [`Heap::major_slice`] again.
    More,
    /// The to-space overflowed: live data exceeds one tenured
    /// semispace. The heap has been finalized to a consistent but
    /// exhausted state; the caller must end the run.
    Overflow,
}

/// Book-keeping for an active incremental major collection: the Cheney
/// frontier (`free`) and scan pointer into the to-space, which doubles
/// as the black-allocation frontier while the collection is active.
struct MajorState {
    to_base: usize,
    limit: usize,
    free: usize,
    scan: usize,
}

/// Geometry and policy knobs for [`Heap::new`].
#[derive(Clone, Copy, Debug)]
pub struct HeapConfig {
    /// Collector selection.
    pub mode: GcMode,
    /// Nursery semispace size in words (generational mode); in
    /// semispace mode, the allocation interval between collections.
    pub nursery_words: usize,
    /// Tenured semispace size in words — the heap ceiling.
    pub tenured_words: usize,
    /// Minor collections an object must survive before promotion
    /// (1-based; clamped to at least 1).
    pub promote_after: u32,
    /// Immortal literal-pool region capacity in words.
    pub static_words: usize,
    /// GC pause budget in cycles; `0` means unbounded (stop-the-world
    /// majors, full-size nursery). When nonzero, the nursery is clamped
    /// so a worst-case (full-survival) minor pause fits in roughly
    /// three quarters of the budget, leaving slack for remembered-set
    /// scanning, and major collections are expected to run in slices
    /// sized by [`Heap::slice_words`].
    pub max_pause_cycles: u64,
}

impl Default for HeapConfig {
    fn default() -> HeapConfig {
        HeapConfig {
            mode: GcMode::Generational,
            nursery_words: 64 * 1024,
            tenured_words: 8 << 20,
            promote_after: 2,
            static_words: 64 * 1024,
            max_pause_cycles: 0,
        }
    }
}

/// Allocation target for a given request size.
enum Space {
    Nursery,
    Tenured,
}

/// The heap. Word layout: the low `static_end` words form an immortal
/// region for pooled string literals, followed by the two nursery
/// halves (absent in semispace mode) and the two tenured halves.
pub struct Heap {
    mem: Vec<u32>,
    static_free: usize,
    static_end: usize,
    mode: GcMode,
    /// Nursery semispace size in words (0 in semispace mode).
    nursery_words: usize,
    /// Semispace-mode collection schedule: collect once this many words
    /// have been allocated since the last collection.
    trigger_words: usize,
    /// Tenured semispace size in words.
    tenured_words: usize,
    /// Minor collections an object must survive before promotion.
    promote_after: u32,
    /// Current nursery from-space base and bump pointer.
    n_base: usize,
    n_free: usize,
    /// Current tenured from-space base and bump pointer.
    t_base: usize,
    t_free: usize,
    /// Words allocated since the last collection (semispace trigger).
    since_gc: usize,
    /// Minor collections survived, per nursery body index (relative to
    /// `static_end`; covers both halves).
    ages: Vec<u8>,
    /// Remembered set: tenured slots holding nursery pointers, in
    /// insertion order (determinism), deduplicated via `rs_member`.
    remembered: Vec<usize>,
    rs_member: HashSet<usize>,
    /// Active incremental major collection, if any.
    major: Option<MajorState>,
    /// Set when a major collection overflowed its to-space: the heap is
    /// finalized but can no longer allocate or collect.
    exhausted: bool,
    /// Words copied by the read barrier since the last
    /// [`Heap::take_barrier_words`] drain (mutator-time copy work, not
    /// part of any recorded pause).
    pending_barrier: u64,
    /// Total words ever allocated (the heap-allocation metric).
    pub alloc_words: u64,
    /// Total objects ever allocated (bump-pointer allocations, including
    /// strings; excludes the immortal literal pool).
    pub n_allocs: u64,
    /// Total words copied by the collector (minor and major).
    pub copied_words: u64,
    /// Number of collections (minor + major).
    pub n_gcs: u64,
    /// Number of minor collections.
    pub n_minor_gcs: u64,
    /// Number of major collections.
    pub n_major_gcs: u64,
    /// Words moved from the nursery into tenured space.
    pub promoted_words: u64,
    /// High-water mark of the remembered set, in slots.
    pub rs_peak: u64,
}

impl Heap {
    /// Creates a heap with the given geometry. With a nonzero pause
    /// budget the nursery is clamped (see
    /// [`HeapConfig::max_pause_cycles`]) so that even a full-survival
    /// minor collection fits the budget with slack to spare.
    pub fn new(cfg: &HeapConfig) -> Heap {
        let n = match cfg.mode {
            GcMode::Generational if cfg.max_pause_cycles > 0 => cfg
                .nursery_words
                .min(((cfg.max_pause_cycles.saturating_sub(150) / 4) as usize).max(16)),
            GcMode::Generational => cfg.nursery_words,
            GcMode::Semispace => 0,
        };
        let t_lo = cfg.static_words + 2 * n;
        Heap {
            mem: vec![0; t_lo + 2 * cfg.tenured_words],
            static_free: 1, // keep address 0 invalid
            static_end: cfg.static_words,
            mode: cfg.mode,
            nursery_words: n,
            trigger_words: cfg.nursery_words,
            tenured_words: cfg.tenured_words,
            promote_after: cfg.promote_after.max(1),
            n_base: cfg.static_words,
            n_free: cfg.static_words,
            t_base: t_lo,
            t_free: t_lo,
            since_gc: 0,
            ages: vec![0; 2 * n],
            remembered: Vec::new(),
            rs_member: HashSet::new(),
            major: None,
            exhausted: false,
            pending_barrier: 0,
            alloc_words: 0,
            n_allocs: 0,
            copied_words: 0,
            n_gcs: 0,
            n_minor_gcs: 0,
            n_major_gcs: 0,
            promoted_words: 0,
            rs_peak: 0,
        }
    }

    fn ptr_of(idx: usize) -> u32 {
        (idx as u32) << 2
    }

    fn idx_of(ptr: u32) -> usize {
        (ptr >> 2) as usize
    }

    /// Words an allocation of `want` body words actually occupies: the
    /// body, padded to at least one word so the collector always has
    /// room for a forwarding pointer, plus the descriptor. The single
    /// accounting predicate shared by [`Heap::needs_gc`],
    /// [`Heap::has_room`], and the allocator.
    fn footprint(want: usize) -> usize {
        want.max(1) + 1
    }

    fn in_range(at: usize, base: usize, len: usize) -> bool {
        at >= base && at < base + len
    }

    fn in_tenured(&self, at: usize) -> bool {
        at >= self.static_end + 2 * self.nursery_words
    }

    /// Where an allocation of `want` body words goes: the nursery, or —
    /// for objects too large to ever fit there, for everything in
    /// semispace mode, and for everything while an incremental major is
    /// active (black allocation) — directly into tenured space.
    fn target_space(&self, want: usize) -> Space {
        if self.major.is_none()
            && self.mode == GcMode::Generational
            && Heap::footprint(want) <= self.nursery_words
        {
            Space::Nursery
        } else {
            Space::Tenured
        }
    }

    /// Reads the word at `ptr + off` words.
    pub fn load(&self, ptr: u32, off: usize) -> u32 {
        self.mem[Heap::idx_of(ptr) + off]
    }

    /// Writes the word at `ptr + off` with no write barrier. Only for
    /// stores that can never create a tenured→nursery pointer:
    /// initializing stores into just-allocated nursery objects and
    /// unboxed (non-pointer) mutations.
    pub fn store(&mut self, ptr: u32, off: usize, v: u32) {
        self.mem[Heap::idx_of(ptr) + off] = v;
    }

    /// Stores through the generational write barrier (the `:=` and
    /// array-update paths): when the store creates a tenured→nursery
    /// pointer, the slot joins the remembered set so the next minor
    /// collection finds it without scanning tenured space.
    pub fn store_barriered(&mut self, ptr: u32, off: usize, v: u32) {
        let base = Heap::idx_of(ptr);
        self.mem[base + off] = v;
        if is_ptr(v)
            && self.in_tenured(base)
            && Heap::in_range(Heap::idx_of(v), self.static_end, 2 * self.nursery_words)
        {
            self.remember(base + off);
        }
    }

    /// True when storing `v` into the object at `ptr` would create a
    /// tenured→nursery edge, i.e. the write barrier is required. The VM
    /// debug-asserts this is false on its unbarriered unboxed stores.
    pub fn would_need_barrier(&self, ptr: u32, v: u32) -> bool {
        is_ptr(ptr)
            && is_ptr(v)
            && self.in_tenured(Heap::idx_of(ptr))
            && Heap::in_range(Heap::idx_of(v), self.static_end, 2 * self.nursery_words)
    }

    fn remember(&mut self, slot: usize) {
        if self.rs_member.insert(slot) {
            self.remembered.push(slot);
            self.rs_peak = self.rs_peak.max(self.remembered.len() as u64);
        }
    }

    /// Current remembered-set size in slots.
    pub fn remembered_len(&self) -> usize {
        self.remembered.len()
    }

    /// True in generational mode.
    pub fn is_generational(&self) -> bool {
        self.mode == GcMode::Generational
    }

    /// True when `ptr` points into tenured space.
    pub fn is_tenured_ptr(&self, ptr: u32) -> bool {
        is_ptr(ptr) && self.in_tenured(Heap::idx_of(ptr))
    }

    /// Reads a raw float at word offset `off`.
    pub fn load_f64(&self, ptr: u32, off: usize) -> f64 {
        let i = Heap::idx_of(ptr) + off;
        let bits = (self.mem[i] as u64) | ((self.mem[i + 1] as u64) << 32);
        f64::from_bits(bits)
    }

    /// Writes a raw float at word offset `off` (two single-word stores).
    pub fn store_f64(&mut self, ptr: u32, off: usize, v: f64) {
        let i = Heap::idx_of(ptr) + off;
        let bits = v.to_bits();
        self.mem[i] = bits as u32;
        self.mem[i + 1] = (bits >> 32) as u32;
    }

    /// The descriptor of the object at `ptr`.
    pub fn desc(&self, ptr: u32) -> u32 {
        self.mem[Heap::idx_of(ptr) - 1]
    }

    /// True if a collection should run before allocating `want` body
    /// words: the target space cannot fit the allocation (plus, in
    /// semispace mode, the fixed allocation schedule has elapsed).
    /// Always `false` while an incremental major is active — the
    /// nursery is mid-evacuation, so the caller must pump
    /// [`Heap::major_slice`] instead of starting a minor collection.
    pub fn needs_gc(&self, want: usize) -> bool {
        if self.major.is_some() {
            return false;
        }
        match self.mode {
            GcMode::Generational => !self.has_room(want),
            GcMode::Semispace => {
                self.since_gc + Heap::footprint(want) > self.trigger_words || !self.has_room(want)
            }
        }
    }

    /// True if the space an allocation of `want` body words targets can
    /// hold its full footprint (body plus descriptor, empty objects
    /// padded). Exactly the predicate [`Heap::alloc`] uses, so
    /// `has_room(want)` ⇔ the next `alloc` of that size succeeds. When
    /// this still fails right after a major collection, the live data
    /// genuinely does not fit: the heap is exhausted.
    pub fn has_room(&self, want: usize) -> bool {
        if self.exhausted {
            return false; // finalized after a to-space overflow
        }
        if let Some(m) = &self.major {
            // Black allocation at the to-space frontier.
            return Heap::footprint(want) <= m.limit - m.free;
        }
        let (free, limit) = match self.target_space(want) {
            Space::Nursery => (self.n_free, self.n_base + self.nursery_words),
            Space::Tenured => (self.t_free, self.t_base + self.tenured_words),
        };
        Heap::footprint(want) <= limit - free
    }

    fn bump(&mut self, want: usize) -> Option<usize> {
        if !self.has_room(want) {
            return None; // space exhausted; caller collects or traps
        }
        let total = Heap::footprint(want);
        let at = if let Some(m) = self.major.as_mut() {
            // Black allocation: the new object lands ahead of the scan
            // pointer and is scanned like any copied object once its
            // fields are initialized (always before the next slice).
            let at = m.free + 1;
            m.free += total;
            at
        } else {
            match self.target_space(want) {
                Space::Nursery => {
                    let at = self.n_free + 1;
                    self.n_free += total;
                    self.ages[at - self.static_end] = 0;
                    at
                }
                Space::Tenured => {
                    let at = self.t_free + 1;
                    self.t_free += total;
                    at
                }
            }
        };
        self.since_gc += total;
        self.alloc_words += total as u64;
        self.n_allocs += 1;
        Some(at)
    }

    /// Allocates an object with `nscan` scanned one-word fields and
    /// `nraw` raw float fields (two words each), uninitialized; returns
    /// the pointer, or `None` when the target space is exhausted (the VM
    /// turns that into a [`HeapExhausted`](crate::VmResult::HeapExhausted)
    /// trap after a final collection attempt).
    pub fn alloc(&mut self, kind: ObjKind, nscan: u32, nraw: u32) -> Option<u32> {
        let at = self.bump((nscan + 2 * nraw) as usize)?;
        self.mem[at - 1] = descriptor(kind, nscan, nraw);
        Some(Heap::ptr_of(at))
    }

    /// The longest string the descriptor encoding can represent, in
    /// bytes. Longer strings must be rejected before allocation.
    pub const MAX_STRING_BYTES: usize = (1 << SCAN_BITS) - 1;

    /// The longest array the descriptor encoding can represent, in
    /// elements (the scanned-field count doubles as the length).
    pub const MAX_ARRAY_LEN: usize = (1 << SCAN_BITS) - 1;

    /// Allocates a string in the collected heap; `None` when the target
    /// space is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if the string exceeds [`Heap::MAX_STRING_BYTES`] — callers
    /// must check first and trap rather than allocate.
    pub fn alloc_string(&mut self, s: &str) -> Option<u32> {
        let bytes = s.as_bytes();
        assert!(
            bytes.len() <= Heap::MAX_STRING_BYTES,
            "string too long for descriptor"
        );
        let at = self.bump(bytes.len().div_ceil(4))?;
        self.mem[at - 1] = (ObjKind::Str as u32) | ((bytes.len() as u32) << SCAN_SHIFT);
        for (i, chunk) in bytes.chunks(4).enumerate() {
            let mut w = 0u32;
            for (j, b) in chunk.iter().enumerate() {
                w |= (*b as u32) << (8 * j);
            }
            self.mem[at + i] = w;
        }
        Some(Heap::ptr_of(at))
    }

    /// Allocates a string in the immortal region (for pooled literals).
    pub fn alloc_static_string(&mut self, s: &str) -> u32 {
        let bytes = s.as_bytes();
        let nraw = bytes.len().div_ceil(4);
        assert!(
            self.static_free + nraw.max(1) < self.static_end,
            "string pool region exhausted"
        );
        let at = self.static_free + 1;
        self.static_free += nraw.max(1) + 1;
        self.mem[at - 1] = (ObjKind::Str as u32) | ((bytes.len() as u32) << SCAN_SHIFT);
        for (i, chunk) in bytes.chunks(4).enumerate() {
            let mut w = 0u32;
            for (j, b) in chunk.iter().enumerate() {
                w |= (*b as u32) << (8 * j);
            }
            self.mem[at + i] = w;
        }
        Heap::ptr_of(at)
    }

    /// Reads a string object back out.
    pub fn read_string(&self, ptr: u32) -> String {
        let at = Heap::idx_of(ptr);
        let desc = self.mem[at - 1];
        debug_assert_eq!(desc & KIND_MASK, ObjKind::Str as u32);
        let len = (desc >> SCAN_SHIFT) as usize;
        let mut out = Vec::with_capacity(len);
        for i in 0..len {
            let w = self.mem[at + i / 4];
            out.push(((w >> (8 * (i % 4))) & 0xff) as u8);
        }
        String::from_utf8_lossy(&out).into_owned()
    }

    /// Byte length of a string object.
    pub fn string_len(&self, ptr: u32) -> usize {
        (self.desc(ptr) >> SCAN_SHIFT) as usize
    }

    /// Byte at index `i` of a string object.
    pub fn string_byte(&self, ptr: u32, i: usize) -> u8 {
        let at = Heap::idx_of(ptr);
        let w = self.mem[at + i / 4];
        ((w >> (8 * (i % 4))) & 0xff) as u8
    }

    /// Body words occupied by an object with the given decoded
    /// descriptor (empty objects pad to one word of forwarding space).
    fn body_words(kind: u32, nscan: u32, nraw: u32) -> usize {
        let n = if kind == ObjKind::Str as u32 {
            (nscan as usize).div_ceil(4)
        } else if kind == ObjKind::Array as u32 {
            nscan as usize
        } else {
            (nscan + nraw * 2) as usize
        };
        n.max(1)
    }

    /// Pointer-valued field count of an object (strings are all raw).
    fn scanned_fields(kind: u32, nscan: u32) -> usize {
        if kind == ObjKind::Str as u32 {
            0
        } else {
            nscan as usize
        }
    }

    /// Validates that `ptr` is a plausible object pointer and that the
    /// word range `[off, off + words)` lies inside that object's body.
    /// Returns the violation reason on failure; the VM converts it into
    /// a [`Fault`](crate::VmResult::Fault) trap instead of indexing out
    /// of bounds.
    pub fn check_access(&self, ptr: u32, off: usize, words: usize) -> Result<(), String> {
        if !is_ptr(ptr) {
            return Err(format!("memory access through non-pointer {ptr:#x}"));
        }
        let at = Heap::idx_of(ptr);
        if at == 0 || at >= self.mem.len() {
            return Err(format!("pointer {ptr:#x} outside the heap"));
        }
        let desc = self.mem[at - 1];
        let (kind, nscan, nraw) = decode(desc);
        if kind == FORWARD {
            return Err(format!("access to forwarded object at {ptr:#x}"));
        }
        let total = Heap::body_words(kind, nscan, nraw);
        if off + words > total {
            return Err(format!(
                "access to words [{off}, {}) outside object of {total} body words at {ptr:#x}",
                off + words
            ));
        }
        if at + total > self.mem.len() {
            return Err(format!("object at {ptr:#x} extends past the heap end"));
        }
        Ok(())
    }

    /// Validates that `ptr` refers to a string object whose bytes lie in
    /// bounds; returns the violation reason otherwise.
    pub fn check_string(&self, ptr: u32) -> Result<(), String> {
        self.check_access(ptr, 0, 0)?;
        let (kind, nscan, _) = decode(self.desc(ptr));
        if kind != ObjKind::Str as u32 {
            return Err(format!(
                "string operation on non-string object (kind {kind}) at {ptr:#x}"
            ));
        }
        let at = Heap::idx_of(ptr);
        if at + (nscan as usize).div_ceil(4) > self.mem.len() {
            return Err(format!("string at {ptr:#x} extends past the heap end"));
        }
        Ok(())
    }

    /// Runs a stop-the-world collection; `roots` are updated in place.
    /// Returns `false` only when a major collection overflowed its
    /// to-space — the live data exceeds one tenured semispace — in
    /// which case the heap is finalized to a consistent exhausted state
    /// and the caller must trap immediately. Minor collections cannot
    /// fail: survivors always fit in the nursery to-space (promotion
    /// falls back to keeping objects young when tenured space is full).
    ///
    /// # Panics
    ///
    /// Panics if an incremental major collection is active — pump
    /// [`Heap::major_slice`] to completion first.
    pub fn collect(&mut self, roots: &mut [&mut u32], kind: GcKind) -> bool {
        assert!(
            self.major.is_none(),
            "collect() during an active incremental major"
        );
        match (self.mode, kind) {
            (GcMode::Generational, GcKind::Minor) => {
                self.collect_minor(roots);
                true
            }
            _ => self.collect_major(roots),
        }
    }

    /// True while an incremental major collection is active (begun but
    /// neither completed nor overflowed).
    pub fn major_active(&self) -> bool {
        self.major.is_some()
    }

    /// True once a major collection overflowed its to-space: the heap
    /// is finalized and read-only — every allocation fails, so the VM
    /// traps `HeapExhausted` at the next allocation point.
    pub fn is_exhausted(&self) -> bool {
        self.exhausted
    }

    /// Effective nursery semispace capacity in words, after the
    /// pause-budget clamp (0 in semispace mode).
    pub fn nursery_capacity(&self) -> usize {
        self.nursery_words
    }

    /// Copy-work slice budget in words for a pause budget of
    /// `max_pause_cycles`: half the cycles left after the fixed major
    /// pause cost, at 3 cycles per copied word. The halving leaves
    /// headroom for finishing the object in flight when the budget
    /// trips — only a genuinely oversized single object can then push a
    /// slice past the budget (and that is reported, not hidden).
    /// `u64::MAX` when the budget is zero (unbounded).
    pub fn slice_words(max_pause_cycles: u64) -> u64 {
        if max_pause_cycles == 0 {
            u64::MAX
        } else {
            (max_pause_cycles.saturating_sub(200) / 3 / 2).max(1)
        }
    }

    /// Begins an incremental major collection: flips to the other
    /// tenured semispace and forwards the roots (the one atomic step —
    /// after it, every root is a to-space pointer). Returns `false` if
    /// the root set alone overflowed the to-space, in which case the
    /// heap is finalized exhausted exactly as for a mid-slice overflow.
    ///
    /// # Panics
    ///
    /// Panics if a major is already active or the heap is exhausted.
    pub fn begin_major(&mut self, roots: &mut [&mut u32]) -> bool {
        assert!(self.major.is_none(), "begin_major: major already active");
        assert!(!self.exhausted, "begin_major on an exhausted heap");
        self.n_gcs += 1;
        self.n_major_gcs += 1;
        let t_lo = self.static_end + 2 * self.nursery_words;
        let to_base = if self.t_base == t_lo {
            t_lo + self.tenured_words
        } else {
            t_lo
        };
        let limit = to_base + self.tenured_words;
        let mut free = to_base;
        for r in roots.iter_mut() {
            match self.forward_major(**r, &mut free, limit) {
                Some(nv) => **r = nv,
                None => {
                    self.major = Some(MajorState {
                        to_base,
                        limit,
                        free,
                        scan: free,
                    });
                    self.finalize_overflow();
                    return false;
                }
            }
        }
        self.major = Some(MajorState {
            to_base,
            limit,
            free,
            scan: to_base,
        });
        true
    }

    /// Advances the active major collection by at most `max_copy_words`
    /// copied words (pass `u64::MAX` for a stop-the-world finish). A
    /// slice may stop mid-object; the next slice re-walks that object's
    /// fields, which is cheap and idempotent (already-forwarded fields
    /// are left alone). On [`SliceOutcome::Done`] the heap has flipped:
    /// tenured space is the to-space, the nursery is empty, and the
    /// remembered set is clear.
    ///
    /// # Panics
    ///
    /// Panics if no major collection is active.
    pub fn major_slice(&mut self, max_copy_words: u64) -> SliceOutcome {
        let m = self.major.as_ref().expect("major_slice: no active major");
        let (mut scan, mut free, limit) = (m.scan, m.free, m.limit);
        let start = self.copied_words;
        while scan < free {
            let desc = self.mem[scan];
            let (kind, nscan, nraw) = decode(desc);
            let fields = scan + 1;
            for i in 0..Heap::scanned_fields(kind, nscan) {
                if self.copied_words - start >= max_copy_words {
                    // Budget spent mid-object: park the scan pointer at
                    // the object start and resume here next slice.
                    let m = self.major.as_mut().unwrap();
                    m.scan = scan;
                    m.free = free;
                    return SliceOutcome::More;
                }
                match self.forward_major(self.mem[fields + i], &mut free, limit) {
                    Some(nv) => self.mem[fields + i] = nv,
                    None => {
                        let m = self.major.as_mut().unwrap();
                        m.scan = scan;
                        m.free = free;
                        self.finalize_overflow();
                        return SliceOutcome::Overflow;
                    }
                }
            }
            scan = fields + Heap::body_words(kind, nscan, nraw);
            if self.copied_words - start >= max_copy_words && scan < free {
                let m = self.major.as_mut().unwrap();
                m.scan = scan;
                m.free = free;
                return SliceOutcome::More;
            }
        }
        // Scan met the frontier: the collection is complete. Flip.
        let m = self.major.take().unwrap();
        self.t_base = m.to_base;
        self.t_free = free;
        self.n_free = self.n_base; // nursery fully evacuated
        self.remembered.clear();
        self.rs_member.clear();
        self.since_gc = 0;
        SliceOutcome::Done
    }

    /// Finalizes the heap after a to-space overflow: adopt the partial
    /// to-space as the tenured space (every object in it is a valid,
    /// fully-copied object, so the space is linearly scannable),
    /// declare the half-evacuated nursery empty, clear the remembered
    /// set, and mark the heap exhausted so no allocation or collection
    /// ever runs again. Reachable data stays readable: unforwarded
    /// from-space objects are intact and forwarded ones resolve through
    /// [`Heap::resolve`].
    fn finalize_overflow(&mut self) {
        let m = self.major.take().expect("finalize_overflow: no major");
        self.t_base = m.to_base;
        self.t_free = m.free;
        self.n_free = self.n_base;
        self.remembered.clear();
        self.rs_member.clear();
        self.since_gc = 0;
        self.exhausted = true;
    }

    /// Minor collection: Cheney over the nursery only. Roots are the
    /// VM roots plus the remembered set; copy targets are the nursery
    /// to-space and (for promotion) the tenured bump frontier.
    fn collect_minor(&mut self, roots: &mut [&mut u32]) {
        debug_assert!(self.major.is_none(), "minor during an active major");
        self.n_gcs += 1;
        self.n_minor_gcs += 1;
        let to_base = if self.n_base == self.static_end {
            self.static_end + self.nursery_words
        } else {
            self.static_end
        };
        let mut n_free = to_base;
        let mut n_scan = to_base;
        let mut t_scan = self.t_free; // promoted objects land from here

        for r in roots.iter_mut() {
            **r = self.forward_minor(**r, &mut n_free);
        }
        // Remembered slots are the only tenured words a minor collection
        // visits; keep the ones whose target is still young.
        let slots = std::mem::take(&mut self.remembered);
        self.rs_member.clear();
        for &slot in &slots {
            let nv = self.forward_minor(self.mem[slot], &mut n_free);
            self.mem[slot] = nv;
            if is_ptr(nv) && Heap::in_range(Heap::idx_of(nv), to_base, self.nursery_words) {
                self.remember(slot);
            }
        }
        // Scan both copy targets to a fixpoint: scanning promoted
        // objects can copy more into the nursery and vice versa.
        while n_scan < n_free || t_scan < self.t_free {
            if n_scan < n_free {
                n_scan = self.scan_minor(n_scan, &mut n_free, to_base, false);
            } else {
                t_scan = self.scan_minor(t_scan, &mut n_free, to_base, true);
            }
        }
        self.n_base = to_base;
        self.n_free = n_free;
        self.since_gc = 0;
    }

    /// Scans one object during a minor collection; `promoted` marks
    /// objects living in tenured space, whose still-young fields must
    /// join the remembered set. Returns the next scan position.
    fn scan_minor(
        &mut self,
        at: usize,
        n_free: &mut usize,
        to_base: usize,
        promoted: bool,
    ) -> usize {
        let desc = self.mem[at];
        let (kind, nscan, nraw) = decode(desc);
        let fields = at + 1;
        for i in 0..Heap::scanned_fields(kind, nscan) {
            let nv = self.forward_minor(self.mem[fields + i], n_free);
            self.mem[fields + i] = nv;
            if promoted
                && is_ptr(nv)
                && Heap::in_range(Heap::idx_of(nv), to_base, self.nursery_words)
            {
                self.remember(fields + i);
            }
        }
        fields + Heap::body_words(kind, nscan, nraw)
    }

    fn forward_minor(&mut self, v: u32, n_free: &mut usize) -> u32 {
        if !is_ptr(v) {
            return v;
        }
        let at = Heap::idx_of(v);
        if !Heap::in_range(at, self.n_base, self.nursery_words) {
            return v; // static, tenured, or already evacuated
        }
        let desc = self.mem[at - 1];
        if desc & KIND_MASK == FORWARD {
            return self.mem[at]; // already copied; new addr in field 0
        }
        let (kind, nscan, nraw) = decode(desc);
        let total = Heap::body_words(kind, nscan, nraw);
        let age = self.ages[at - self.static_end].saturating_add(1);
        // Promotion needs `total` body words plus the descriptor.
        let tenure = u32::from(age) >= self.promote_after
            && total < self.t_base + self.tenured_words - self.t_free;
        let new_at = if tenure {
            let na = self.t_free + 1;
            self.t_free += total + 1;
            self.promoted_words += (total + 1) as u64;
            na
        } else {
            // Not old enough — or tenured space is full, in which case
            // the object stays young: survivors always fit in the
            // to-space, so a minor collection cannot fail.
            let na = *n_free + 1;
            *n_free += total + 1;
            self.ages[na - self.static_end] = age;
            na
        };
        self.mem[new_at - 1] = desc;
        for i in 0..total {
            self.mem[new_at + i] = self.mem[at + i];
        }
        self.copied_words += (total + 1) as u64;
        let new_ptr = Heap::ptr_of(new_at);
        self.mem[at - 1] = FORWARD;
        self.mem[at] = new_ptr;
        new_ptr
    }

    /// Stop-the-world major collection: [`Heap::begin_major`] plus one
    /// unbounded [`Heap::major_slice`] — the same code path as the
    /// incremental collector, with identical copy order and placement.
    /// Returns `false` on to-space overflow (the heap is then finalized
    /// exhausted and the caller must end the run).
    fn collect_major(&mut self, roots: &mut [&mut u32]) -> bool {
        if !self.begin_major(roots) {
            return false;
        }
        self.major_slice(u64::MAX) == SliceOutcome::Done
    }

    /// Forwards one value during a major collection; `None` when the
    /// to-space overflowed.
    fn forward_major(&mut self, v: u32, free: &mut usize, limit: usize) -> Option<u32> {
        if !is_ptr(v) {
            return Some(v);
        }
        let at = Heap::idx_of(v);
        let young = Heap::in_range(at, self.n_base, self.nursery_words);
        if !young && !Heap::in_range(at, self.t_base, self.tenured_words) {
            return Some(v); // immortal
        }
        let desc = self.mem[at - 1];
        if desc & KIND_MASK == FORWARD {
            return Some(self.mem[at]);
        }
        let (kind, nscan, nraw) = decode(desc);
        let total = Heap::body_words(kind, nscan, nraw);
        if *free + total + 1 > limit {
            return None;
        }
        let new_at = *free + 1;
        self.mem[*free] = desc;
        for i in 0..total {
            self.mem[new_at + i] = self.mem[at + i];
        }
        *free = new_at + total;
        self.copied_words += (total + 1) as u64;
        if young {
            self.promoted_words += (total + 1) as u64;
        }
        let new_ptr = Heap::ptr_of(new_at);
        self.mem[at - 1] = FORWARD;
        self.mem[at] = new_ptr;
        Some(new_ptr)
    }

    /// Reads the word at `ptr + off` through the incremental-major read
    /// barrier: while a major collection is active, a loaded from-space
    /// pointer is evacuated on the spot and the slot healed, so the
    /// mutator only ever holds to-space pointers. Outside an active
    /// major this is exactly [`Heap::load`]. Barrier copy work is
    /// accumulated in a side counter (see [`Heap::take_barrier_words`])
    /// rather than attributed to any pause.
    pub fn load_healed(&mut self, ptr: u32, off: usize) -> u32 {
        let slot = Heap::idx_of(ptr) + off;
        let v = self.mem[slot];
        let Some(m) = &self.major else {
            return v;
        };
        if !is_ptr(v) {
            return v;
        }
        let at = Heap::idx_of(v);
        if !Heap::in_range(at, self.n_base, self.nursery_words)
            && !Heap::in_range(at, self.t_base, self.tenured_words)
        {
            return v; // already to-space or immortal
        }
        let (mut free, limit) = (m.free, m.limit);
        let before = self.copied_words;
        match self.forward_major(v, &mut free, limit) {
            Some(nv) => {
                self.major.as_mut().unwrap().free = free;
                self.pending_barrier += self.copied_words - before;
                self.mem[slot] = nv;
                nv
            }
            None => {
                // To-space overflow while healing: finalize. The stale
                // value still reads correctly (from-space data is
                // intact) and the next allocation traps the run.
                self.major.as_mut().unwrap().free = free;
                self.finalize_overflow();
                self.resolve(v)
            }
        }
    }

    /// Follows forwarding pointers to the current address of a value;
    /// the identity for everything except pointers to objects evacuated
    /// by a collection still in flight (or finalized after overflow).
    /// Read-only: callers that can write the slot back should prefer
    /// [`Heap::load_healed`].
    pub fn resolve(&self, v: u32) -> u32 {
        let mut v = v;
        // Forwarding chains are at most one hop deep in practice; the
        // bound makes malformed memory terminate instead of looping.
        for _ in 0..8 {
            if !is_ptr(v) {
                return v;
            }
            let at = Heap::idx_of(v);
            if at == 0 || at >= self.mem.len() || self.mem[at - 1] & KIND_MASK != FORWARD {
                return v;
            }
            v = self.mem[at];
        }
        v
    }

    /// Drains the words copied by the read barrier since the last call
    /// (the VM charges them to GC time outside any recorded pause).
    pub fn take_barrier_words(&mut self) -> u64 {
        std::mem::take(&mut self.pending_barrier)
    }

    /// Structural self-check: bump pointers inside their spaces,
    /// counters mutually consistent, remembered slots in tenured space,
    /// and both collected spaces linearly scannable (valid descriptors,
    /// bodies in bounds, no forwarding pointers left in live spaces).
    /// Used by tests and by the VM's trap paths to assert the heap is
    /// left well-formed — in particular after a major-collection
    /// overflow finalization.
    pub fn check_consistency(&self) -> Result<(), String> {
        if self.static_free > self.static_end {
            return Err("static region overran".into());
        }
        let n_hi = self.n_base + self.nursery_words;
        if self.n_free < self.n_base || self.n_free > n_hi {
            return Err(format!(
                "nursery bump {} outside [{}, {n_hi}]",
                self.n_free, self.n_base
            ));
        }
        let t_hi = self.t_base + self.tenured_words;
        if self.t_free < self.t_base || self.t_free > t_hi {
            return Err(format!(
                "tenured bump {} outside [{}, {t_hi}]",
                self.t_free, self.t_base
            ));
        }
        if self.n_gcs != self.n_minor_gcs + self.n_major_gcs {
            return Err("collection counters disagree".into());
        }
        if self.copied_words < self.promoted_words {
            return Err("promoted more words than were copied".into());
        }
        if (self.remembered.len() as u64) > self.rs_peak {
            return Err("remembered set above its recorded peak".into());
        }
        for &slot in &self.remembered {
            if !self.in_tenured(slot) {
                return Err(format!("remembered slot {slot} not in tenured space"));
            }
        }
        if self.major.is_none() {
            // Mid-collection the to-space tail beyond `scan` is still
            // being produced; only quiescent heaps are walked.
            self.check_walk(self.n_base, self.n_free, "nursery")?;
            self.check_walk(self.t_base, self.t_free, "tenured")?;
        }
        Ok(())
    }

    /// Walks `[base, end)` as a sequence of objects.
    fn check_walk(&self, base: usize, end: usize, what: &str) -> Result<(), String> {
        let mut at = base;
        while at < end {
            let desc = self.mem[at];
            let (kind, nscan, nraw) = decode(desc);
            if kind == FORWARD {
                return Err(format!("forwarding pointer in live {what} space at {at}"));
            }
            if kind > ObjKind::BoxedFloat as u32 {
                return Err(format!("bad object kind {kind} in {what} space at {at}"));
            }
            let body = Heap::body_words(kind, nscan, nraw);
            if at + 1 + body > end {
                return Err(format!(
                    "object at {at} overruns {what} space ({body} body words)"
                ));
            }
            for i in 0..Heap::scanned_fields(kind, nscan) {
                let v = self.mem[at + 1 + i];
                if is_ptr(v) && Heap::idx_of(v) >= self.mem.len() {
                    return Err(format!("field {i} of object at {at} points off-heap"));
                }
            }
            at += 1 + body;
        }
        Ok(())
    }

    /// Structural equality on standard-representation values; returns
    /// the verdict and the number of words visited (the runtime cost).
    pub fn poly_eq(&self, a: u32, b: u32) -> (bool, u64) {
        let mut cost = 1u64;
        let eq = self.peq(a, b, &mut cost, 0);
        (eq, cost)
    }

    fn peq(&self, a: u32, b: u32, cost: &mut u64, depth: u32) -> bool {
        *cost += 1;
        // During an active incremental major one of the values may have
        // been evacuated already; compare canonical addresses so
        // identity (and Ref equality) is stable across evacuation.
        let (a, b) = (self.resolve(a), self.resolve(b));
        if a == b {
            return true;
        }
        if depth > 10_000 {
            return false; // pathological; give up (circular refs are eq by ptr)
        }
        if !is_ptr(a) || !is_ptr(b) {
            return false;
        }
        let (ka, sa, ra) = decode(self.desc(a));
        let (kb, sb, rb) = decode(self.desc(b));
        if ka != kb {
            return false;
        }
        if ka == ObjKind::Ref as u32 || ka == ObjKind::Array as u32 {
            return false; // identity compared above
        }
        if ka == ObjKind::Str as u32 {
            let la = self.string_len(a);
            if la != self.string_len(b) {
                return false;
            }
            *cost += la as u64 / 4 + 1;
            return (0..la).all(|i| self.string_byte(a, i) == self.string_byte(b, i));
        }
        if ka == ObjKind::BoxedFloat as u32 {
            *cost += 2;
            return self.load_f64(a, 0) == self.load_f64(b, 0);
        }
        // Records: scanned fields recursively, raw words bitwise.
        if sa != sb || ra != rb {
            return false;
        }
        for i in 0..sa as usize {
            if !self.peq(self.load(a, i), self.load(b, i), cost, depth + 1) {
                return false;
            }
        }
        for i in 0..(ra * 2) as usize {
            *cost += 1;
            if self.load(a, sa as usize + i) != self.load(b, sb as usize + i) {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen_heap(nursery: usize, tenured: usize) -> Heap {
        Heap::new(&HeapConfig {
            mode: GcMode::Generational,
            nursery_words: nursery,
            tenured_words: tenured,
            promote_after: 2,
            static_words: 128,
            max_pause_cycles: 0,
        })
    }

    fn semi_heap(tenured: usize, trigger: usize) -> Heap {
        Heap::new(&HeapConfig {
            mode: GcMode::Semispace,
            nursery_words: trigger,
            tenured_words: tenured,
            promote_after: 2,
            static_words: 128,
            max_pause_cycles: 0,
        })
    }

    #[test]
    fn tagging_roundtrip() {
        assert_eq!(untag_int(tag_int(42)), 42);
        assert_eq!(untag_int(tag_int(-7)), -7);
        assert_eq!(untag_int(tag_int(0)), 0);
        assert!(!is_ptr(tag_int(5)));
    }

    #[test]
    fn descriptor_roundtrip() {
        let d = descriptor(ObjKind::Record, 3, 2);
        assert_eq!(decode(d), (0, 3, 2));
    }

    #[test]
    fn alloc_and_access() {
        let mut h = gen_heap(4096, 4096);
        let p = h.alloc(ObjKind::Record, 2, 1).unwrap();
        h.store(p, 0, tag_int(1));
        h.store(p, 1, tag_int(2));
        h.store_f64(p, 2, 3.25);
        assert_eq!(untag_int(h.load(p, 0)), 1);
        assert_eq!(h.load_f64(p, 2), 3.25);
        assert!(h.alloc_words >= 5);
    }

    #[test]
    fn strings() {
        let mut h = gen_heap(4096, 4096);
        let p = h.alloc_string("hello").unwrap();
        assert_eq!(h.read_string(p), "hello");
        assert_eq!(h.string_len(p), 5);
        assert_eq!(h.string_byte(p, 1), b'e');
        let q = h.alloc_static_string("lit");
        assert_eq!(h.read_string(q), "lit");
    }

    #[test]
    fn gc_preserves_structure() {
        let mut h = gen_heap(4096, 4096);
        let inner = h.alloc(ObjKind::Record, 1, 1).unwrap();
        h.store(inner, 0, tag_int(9));
        h.store_f64(inner, 1, 2.5);
        let outer = h.alloc(ObjKind::Record, 2, 0).unwrap();
        h.store(outer, 0, inner);
        h.store(outer, 1, tag_int(7));
        let mut root = outer;
        // Garbage to make the collection meaningful.
        for _ in 0..100 {
            h.alloc(ObjKind::Record, 2, 0).unwrap();
        }
        h.collect(&mut [&mut root], GcKind::Minor);
        assert_ne!(root, outer, "object moved");
        let inner2 = h.load(root, 0);
        assert_eq!(untag_int(h.load(root, 1)), 7);
        assert_eq!(untag_int(h.load(inner2, 0)), 9);
        assert_eq!(h.load_f64(inner2, 1), 2.5);
        assert!(h.copied_words >= 7);
        assert_eq!(h.n_gcs, 1);
        assert_eq!(h.n_minor_gcs, 1);
    }

    #[test]
    fn gc_shares_copies() {
        // Two roots to the same object stay shared.
        let mut h = gen_heap(4096, 4096);
        let obj = h.alloc(ObjKind::Record, 1, 0).unwrap();
        h.store(obj, 0, tag_int(5));
        let mut r1 = obj;
        let mut r2 = obj;
        h.collect(&mut [&mut r1, &mut r2], GcKind::Minor);
        assert_eq!(r1, r2);
    }

    #[test]
    fn gc_skips_static() {
        let mut h = gen_heap(4096, 4096);
        let s = h.alloc_static_string("immortal");
        let mut root = s;
        h.collect(&mut [&mut root], GcKind::Minor);
        assert_eq!(root, s, "static strings never move");
        h.collect(&mut [&mut root], GcKind::Major);
        assert_eq!(root, s);
        assert_eq!(h.read_string(root), "immortal");
    }

    #[test]
    fn has_room_agrees_with_alloc() {
        // The shared accounting predicate: has_room(want) answers
        // exactly whether the next alloc of that size succeeds, at every
        // fill level, including the zero-length padding case.
        for want in 0..4u32 {
            for (gen, mk) in [(true, 0), (false, 1)] {
                let mut h = if mk == 0 {
                    gen_heap(16, 16)
                } else {
                    semi_heap(16, 1 << 20)
                };
                loop {
                    let room = h.has_room(want as usize);
                    let got = h.alloc(ObjKind::Record, want, 0);
                    assert_eq!(room, got.is_some(), "want={want} gen={gen}");
                    if got.is_none() {
                        break;
                    }
                }
            }
        }
    }

    #[test]
    fn exactly_full_nursery() {
        let mut h = gen_heap(6, 64);
        assert!(h.alloc(ObjKind::Record, 2, 0).is_some()); // 3 words
        assert!(h.alloc(ObjKind::Record, 2, 0).is_some()); // nursery exactly full
        assert!(!h.has_room(0));
        assert!(h.needs_gc(0));
        assert!(h.alloc(ObjKind::Record, 0, 0).is_none());
        // Objects that can never fit the nursery pre-tenure instead.
        let big = h.alloc(ObjKind::Record, 10, 0).unwrap();
        assert!(h.is_tenured_ptr(big));
    }

    #[test]
    fn zero_field_objects_survive_collection() {
        let mut h = gen_heap(64, 64);
        let p = h.alloc(ObjKind::Record, 0, 0).unwrap();
        let q = h.alloc(ObjKind::Record, 1, 0).unwrap();
        h.store(q, 0, p);
        assert_eq!(h.alloc_words, 4, "empty objects pad to one body word");
        let (mut r1, mut r2) = (p, q);
        h.collect(&mut [&mut r1, &mut r2], GcKind::Minor);
        assert_eq!(h.load(r2, 0), r1, "sharing survives via the pad word");
        h.collect(&mut [&mut r1, &mut r2], GcKind::Major);
        assert_eq!(h.load(r2, 0), r1);
    }

    #[test]
    fn empty_and_max_strings() {
        let mut h = gen_heap(1 << 13, 1 << 14);
        let e = h.alloc_string("").unwrap();
        assert_eq!(h.read_string(e), "");
        assert_eq!(h.string_len(e), 0);
        let big = "x".repeat(Heap::MAX_STRING_BYTES);
        let p = h.alloc_string(&big).unwrap();
        // 8192 body words + descriptor exceed the 8192-word nursery.
        assert!(h.is_tenured_ptr(p), "oversized strings pre-tenure");
        let mut roots = [e, p];
        {
            let [r0, r1] = &mut roots;
            h.collect(&mut [r0, r1], GcKind::Minor);
        }
        assert_eq!(h.read_string(roots[0]), "");
        assert_eq!(roots[1], p, "tenured objects do not move in a minor");
        assert_eq!(h.read_string(roots[1]), big);
    }

    #[test]
    fn max_array_survives_major() {
        let mut h = gen_heap(256, 1 << 16);
        let n = Heap::MAX_ARRAY_LEN as u32;
        let p = h.alloc(ObjKind::Array, n, 0).unwrap();
        for i in 0..n as usize {
            h.store(p, i, tag_int(1));
        }
        let mut root = p;
        assert!(h.collect(&mut [&mut root], GcKind::Major));
        assert_eq!(decode(h.desc(root)).1, n);
        assert_eq!(untag_int(h.load(root, n as usize - 1)), 1);
    }

    #[test]
    fn promotion_after_surviving_minors() {
        let mut h = gen_heap(64, 256);
        let p = h.alloc(ObjKind::Record, 1, 0).unwrap();
        h.store(p, 0, tag_int(42));
        let mut root = p;
        h.collect(&mut [&mut root], GcKind::Minor);
        assert!(!h.is_tenured_ptr(root), "one survival: still young");
        assert_eq!(h.promoted_words, 0);
        h.collect(&mut [&mut root], GcKind::Minor);
        assert!(h.is_tenured_ptr(root), "promote_after=2 survivals");
        assert_eq!(h.promoted_words, 2, "one field plus descriptor");
        assert_eq!(untag_int(h.load(root, 0)), 42);
        // With everything tenured, a minor collection copies nothing.
        let before = h.copied_words;
        h.collect(&mut [&mut root], GcKind::Minor);
        assert_eq!(h.copied_words, before, "minors never scan tenured");
    }

    #[test]
    fn write_barrier_keeps_young_reachable() {
        let mut h = gen_heap(64, 256);
        let r = h.alloc(ObjKind::Ref, 1, 0).unwrap();
        h.store(r, 0, tag_int(0));
        let mut root = r;
        h.collect(&mut [&mut root], GcKind::Minor);
        h.collect(&mut [&mut root], GcKind::Minor);
        assert!(h.is_tenured_ptr(root));
        let young = h.alloc(ObjKind::Record, 1, 0).unwrap();
        h.store(young, 0, tag_int(7));
        assert!(h.would_need_barrier(root, young));
        h.store_barriered(root, 0, young);
        assert_eq!(h.remembered_len(), 1);
        // The young object is reachable only through the remembered
        // slot: the minor collection must still find and move it.
        h.collect(&mut [&mut root], GcKind::Minor);
        let moved = h.load(root, 0);
        assert!(is_ptr(moved) && !h.is_tenured_ptr(moved));
        assert_eq!(untag_int(h.load(moved, 0)), 7);
        assert_eq!(h.remembered_len(), 1, "slot re-remembered while young");
        // Once the target promotes, the slot leaves the remembered set.
        h.collect(&mut [&mut root], GcKind::Minor);
        assert!(h.is_tenured_ptr(h.load(root, 0)));
        assert_eq!(h.remembered_len(), 0);
        assert!(h.rs_peak >= 1);
    }

    #[test]
    fn major_collect_reports_overflow() {
        let mut h = gen_heap(256, 64);
        let mut head = tag_int(0);
        for i in 0..40 {
            let cell = h.alloc(ObjKind::Record, 2, 0).unwrap();
            h.store(cell, 0, tag_int(i));
            h.store(cell, 1, head);
            head = cell;
        }
        // 120 live words cannot fit a 64-word tenured semispace.
        let mut root = head;
        assert!(!h.collect(&mut [&mut root], GcKind::Major));
    }

    #[test]
    fn semispace_mode_full_collections() {
        let mut h = semi_heap(1 << 16, 64);
        assert!(!h.needs_gc(10));
        for _ in 0..30 {
            h.alloc(ObjKind::Record, 2, 0).unwrap();
        }
        assert!(h.needs_gc(10), "allocation schedule elapsed");
        let obj = h.alloc(ObjKind::Record, 1, 0).unwrap();
        h.store(obj, 0, tag_int(5));
        let mut root = obj;
        h.collect(&mut [&mut root], GcKind::Minor);
        assert_ne!(root, obj, "semispace collections move everything");
        assert_eq!(untag_int(h.load(root, 0)), 5);
        assert_eq!(h.n_major_gcs, 1, "minor degrades to a full collection");
        assert_eq!(h.n_minor_gcs, 0);
        assert_eq!(h.promoted_words, 0);
        assert!(!h.needs_gc(10), "schedule reset");
    }

    /// Builds the same linked list in a fresh heap: `n` cons cells of
    /// `[tag_int(i), next]`, head returned. Deterministic, so two heaps
    /// built this way are word-for-word identical.
    fn build_list(h: &mut Heap, n: i64) -> u32 {
        let mut head = tag_int(0);
        for i in 0..n {
            let cell = h.alloc(ObjKind::Record, 2, 0).unwrap();
            h.store(cell, 0, tag_int(i));
            h.store(cell, 1, head);
            head = cell;
        }
        head
    }

    fn list_sum(h: &Heap, mut p: u32) -> i64 {
        let mut sum = 0;
        while is_ptr(p) {
            let p2 = h.resolve(p);
            sum += untag_int(h.load(p2, 0));
            p = h.load(p2, 1);
        }
        sum
    }

    #[test]
    fn incremental_major_matches_stw() {
        // Same graph, same roots: slicing must not change the copy
        // count, promotion count, placement, or surviving data.
        let mut stw = gen_heap(256, 4096);
        let mut inc = gen_heap(256, 4096);
        let mut r1 = build_list(&mut stw, 50);
        let mut r2 = build_list(&mut inc, 50);
        assert!(stw.collect(&mut [&mut r1], GcKind::Major));
        assert!(inc.begin_major(&mut [&mut r2]));
        let mut slices = 0;
        loop {
            match inc.major_slice(8) {
                SliceOutcome::Done => break,
                SliceOutcome::More => slices += 1,
                SliceOutcome::Overflow => panic!("unexpected overflow"),
            }
            assert!(slices < 1000, "slice loop diverged");
        }
        assert!(slices > 1, "budget of 8 words must take many slices");
        assert_eq!(stw.copied_words, inc.copied_words);
        assert_eq!(stw.promoted_words, inc.promoted_words);
        assert_eq!(stw.n_major_gcs, inc.n_major_gcs);
        assert_eq!(r1, r2, "identical placement");
        assert_eq!(list_sum(&stw, r1), list_sum(&inc, r2));
        inc.check_consistency().unwrap();
    }

    #[test]
    fn slice_budget_bounds_copy_work() {
        let mut h = gen_heap(256, 4096);
        let mut root = build_list(&mut h, 60);
        assert!(h.begin_major(&mut [&mut root]));
        loop {
            let before = h.copied_words;
            let out = h.major_slice(10);
            let copied = h.copied_words - before;
            // Overshoot is at most the one object in flight (3 words).
            assert!(copied <= 10 + 3, "slice copied {copied} words");
            if out == SliceOutcome::Done {
                break;
            }
        }
        assert_eq!(list_sum(&h, root), (0..60).sum::<i64>());
    }

    #[test]
    fn black_allocation_during_major() {
        let mut h = gen_heap(256, 4096);
        let mut root = build_list(&mut h, 40);
        assert!(h.begin_major(&mut [&mut root]));
        assert!(h.major_slice(4) == SliceOutcome::More);
        // Mutator allocates while the collection is paused: the object
        // must land in to-space (black) and survive the rest.
        let p = h.alloc(ObjKind::Record, 1, 0).unwrap();
        h.store(p, 0, tag_int(99));
        assert!(h.major_active());
        while h.major_slice(16) != SliceOutcome::Done {}
        assert!(h.is_tenured_ptr(p));
        assert_eq!(untag_int(h.load(p, 0)), 99);
        assert_eq!(list_sum(&h, root), (0..40).sum::<i64>());
        h.check_consistency().unwrap();
    }

    #[test]
    fn read_barrier_heals_from_space_loads() {
        let mut h = gen_heap(256, 4096);
        // outer → inner, both in the nursery; only outer is a root, so
        // after the flip inner is still in from-space.
        let inner = h.alloc(ObjKind::Record, 1, 0).unwrap();
        h.store(inner, 0, tag_int(7));
        let outer = h.alloc(ObjKind::Record, 1, 0).unwrap();
        h.store(outer, 0, inner);
        let mut root = outer;
        assert!(h.begin_major(&mut [&mut root]));
        // No slice has run: outer is copied (root), inner is not.
        let healed = h.load_healed(root, 0);
        assert_ne!(healed, inner, "barrier must evacuate the target");
        assert!(h.is_tenured_ptr(healed));
        assert_eq!(h.load(root, 0), healed, "slot healed in place");
        assert_eq!(untag_int(h.load(healed, 0)), 7);
        assert!(h.take_barrier_words() >= 2);
        assert_eq!(h.take_barrier_words(), 0, "drain resets");
        // Idempotent: a second load through the barrier copies nothing.
        assert_eq!(h.load_healed(root, 0), healed);
        assert_eq!(h.take_barrier_words(), 0);
        while h.major_slice(u64::MAX) != SliceOutcome::Done {}
        h.check_consistency().unwrap();
    }

    #[test]
    fn overflow_leaves_consistent_exhausted_heap() {
        // Near-full tenured space *and* a live remembered set — the
        // regression shape for incomplete-major finalization.
        let mut h = gen_heap(128, 128);
        let mut root = build_list(&mut h, 20); // 60 live words
        h.collect(&mut [&mut root], GcKind::Minor);
        h.collect(&mut [&mut root], GcKind::Minor); // list now tenured
        let young = h.alloc(ObjKind::Record, 1, 0).unwrap();
        h.store(young, 0, tag_int(5));
        // Overwrite the head's int field (not the next pointer — the
        // tail must stay live) with a tenured→nursery edge.
        h.store_barriered(root, 0, young);
        assert_eq!(h.remembered_len(), 1);
        // Grow the live set past one tenured semispace:
        // 60 + 2 + 120 = 182 live words > 128.
        let mut extra = build_list(&mut h, 40);
        assert!(!h.collect(&mut [&mut root, &mut extra], GcKind::Major));
        assert!(h.is_exhausted());
        h.check_consistency()
            .expect("heap must be consistent after overflow finalization");
        assert!(!h.has_room(0), "exhausted heap never has room");
        assert!(h.alloc(ObjKind::Record, 0, 0).is_none());
        assert_eq!(h.remembered_len(), 0, "remembered set cleared");
        // Copied data is still readable through resolve().
        let r = h.resolve(root);
        if is_ptr(r) {
            let _ = untag_int(h.load(r, 0));
        }
    }

    #[test]
    fn pause_budget_clamps_nursery() {
        let h = Heap::new(&HeapConfig {
            mode: GcMode::Generational,
            nursery_words: 64 * 1024,
            tenured_words: 1 << 16,
            promote_after: 2,
            static_words: 128,
            max_pause_cycles: 4_150,
        });
        // (4150 - 150) / 4 = 1000 words: full-survival copy cost
        // 3*1000 plus the 150 fixed cost leaves 850 cycles of slack.
        assert_eq!(h.nursery_capacity(), 1000);
        let h2 = Heap::new(&HeapConfig {
            mode: GcMode::Generational,
            nursery_words: 64 * 1024,
            tenured_words: 1 << 16,
            promote_after: 2,
            static_words: 128,
            max_pause_cycles: 0,
        });
        assert_eq!(h2.nursery_capacity(), 64 * 1024, "no budget, no clamp");
        assert_eq!(Heap::slice_words(0), u64::MAX);
        assert_eq!(Heap::slice_words(2_000), 300);
        assert!(Heap::slice_words(1) >= 1);
    }

    #[test]
    fn semispace_incremental_full_collection() {
        // The slice machinery is mode-independent: semispace "majors"
        // (which are every collection) slice the same way.
        let mut h = semi_heap(1 << 12, 1 << 20);
        let mut root = build_list(&mut h, 30);
        assert!(h.begin_major(&mut [&mut root]));
        let mut slices = 1;
        while h.major_slice(8) != SliceOutcome::Done {
            slices += 1;
            assert!(slices < 1000);
        }
        assert!(slices > 1);
        assert_eq!(list_sum(&h, root), (0..30).sum::<i64>());
        assert_eq!(h.promoted_words, 0, "semispace never promotes");
        h.check_consistency().unwrap();
    }

    #[test]
    fn poly_eq_cases() {
        let mut h = gen_heap(4096, 4096);
        let a = h.alloc(ObjKind::Record, 1, 1).unwrap();
        h.store(a, 0, tag_int(1));
        h.store_f64(a, 1, 2.5);
        let b = h.alloc(ObjKind::Record, 1, 1).unwrap();
        h.store(b, 0, tag_int(1));
        h.store_f64(b, 1, 2.5);
        let c = h.alloc(ObjKind::Record, 1, 1).unwrap();
        h.store(c, 0, tag_int(1));
        h.store_f64(c, 1, 9.0);
        assert!(h.poly_eq(a, b).0);
        assert!(!h.poly_eq(a, c).0);
        let s1 = h.alloc_string("abc").unwrap();
        let s2 = h.alloc_string("abc").unwrap();
        let s3 = h.alloc_string("abd").unwrap();
        assert!(h.poly_eq(s1, s2).0);
        assert!(!h.poly_eq(s1, s3).0);
        // Refs compare by identity.
        let r1 = h.alloc(ObjKind::Ref, 1, 0).unwrap();
        let r2 = h.alloc(ObjKind::Ref, 1, 0).unwrap();
        h.store(r1, 0, tag_int(1));
        h.store(r2, 0, tag_int(1));
        assert!(!h.poly_eq(r1, r2).0);
        assert!(h.poly_eq(r1, r1).0);
    }
}
