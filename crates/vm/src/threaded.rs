//! The threaded execution engine: pre-decoded dispatch with peephole
//! superinstructions.
//!
//! [`predecode`] flattens each [`CodeBlock`]'s `Vec<Instr>` into a
//! stream of compact, fixed-size [`TInstr`] handler records — the
//! heap-carrying `Instr` is ~56 bytes with two levels of bounds-checked
//! indexing per fetch, while a `TInstr` is a small `Copy` record
//! fetched from one flat slice. A peephole selector fuses the hot
//! adjacent pairs observed in the figure benchmarks — `LoadI`+`Arith`
//! (constant operand feeding the ALU), `LoadI`/`Load`/`Arith` feeding a
//! compare-and-branch, and `Move`+`Jump` (argument shuffle into a tail
//! call) — into single superinstruction records, eliding one
//! fetch/decode per pair. A pair is only formed when no branch targets
//! its second instruction, so every branch target lands on a record
//! boundary.
//!
//! [`run_slice_threaded`] executes the stream through the same
//! `#[inline(always)]` [`Engine`] handlers as the decode loop, with
//! byte-identical per-instruction accounting: each constituent of a
//! superinstruction is counted, attributed, and fuel-checked exactly as
//! if decoded separately (the fuel check between the halves mirrors the
//! decode loop's top-of-iteration check). The only observable
//! differences are wall-clock speed and slice-preemption granularity —
//! a pair never splits across a scheduler slice, so a slice may overrun
//! by one extra instruction.
//!
//! Instructions with vector operands or runtime-call bodies
//! (`Alloc`, `Switch`, `Rt`, ...) stay in the original stream and
//! execute through a [`TInstr::Slow`] record that defers to
//! [`Engine::step`] — they are rare in hot code and not worth
//! flattening.
//!
//! The pre-decoded stream is itself verified: `verify::verify_threaded`
//! round-trips every record back to the original instructions and
//! re-checks operand bounds, so the typed chain covers the stream the
//! VM actually executes.

use crate::isa::*;
use crate::vm::{drain_barrier, Engine, VmInstance, VmResult};

/// One pre-decoded handler record. Flat (no heap indirection), `Copy`,
/// and small; branch targets are in *threaded* coordinates (record
/// indices within the block's stream).
#[derive(Clone, Copy, Debug)]
pub(crate) enum TInstr {
    Move {
        d: Reg,
        s: Reg,
    },
    FMove {
        d: FReg,
        s: FReg,
    },
    LoadI {
        d: Reg,
        imm: i64,
    },
    LoadF {
        d: FReg,
        imm: f64,
    },
    LoadStr {
        d: Reg,
        pool: u32,
    },
    LoadLabel {
        d: Reg,
        label: u32,
    },
    Arith {
        op: AOp,
        d: Reg,
        a: Reg,
        b: Reg,
    },
    FArith {
        op: FOp,
        d: FReg,
        a: FReg,
        b: FReg,
    },
    FUnary {
        op: FUOp,
        d: FReg,
        a: FReg,
    },
    Floor {
        d: Reg,
        a: FReg,
    },
    IntToReal {
        d: FReg,
        a: Reg,
    },
    Load {
        d: Reg,
        base: Reg,
        off: u16,
    },
    Store {
        s: Reg,
        base: Reg,
        off: u16,
    },
    StoreWB {
        s: Reg,
        base: Reg,
        off: u16,
    },
    FLoad {
        d: FReg,
        base: Reg,
        off: u16,
    },
    FStore {
        s: FReg,
        base: Reg,
        off: u16,
    },
    LoadIdx {
        d: Reg,
        base: Reg,
        idx: Reg,
    },
    StoreIdx {
        s: Reg,
        base: Reg,
        idx: Reg,
    },
    StoreIdxWB {
        s: Reg,
        base: Reg,
        idx: Reg,
    },
    ArrLen {
        d: Reg,
        a: Reg,
    },
    FBox {
        d: Reg,
        s: FReg,
    },
    FUnbox {
        d: FReg,
        s: Reg,
    },
    Branch {
        op: BrOp,
        a: Reg,
        b: Reg,
        t: u32,
    },
    FBranch {
        op: FBrOp,
        a: FReg,
        b: FReg,
        t: u32,
    },
    Jump {
        label: u32,
    },
    JumpReg {
        r: Reg,
    },
    GetHdlr {
        d: Reg,
    },
    SetHdlr {
        s: Reg,
    },
    Halt {
        s: Reg,
    },
    Uncaught {
        s: Reg,
    },
    /// Superinstruction: `LoadI di, imm` then `Arith op d, a, b`.
    LoadIArith {
        imm: i64,
        di: Reg,
        op: AOp,
        d: Reg,
        a: Reg,
        b: Reg,
    },
    /// Superinstruction: `LoadI di, imm` then `Branch op a, b -> t`.
    LoadIBranch {
        imm: i64,
        di: Reg,
        op: BrOp,
        a: Reg,
        b: Reg,
        t: u32,
    },
    /// Superinstruction: `Load dl, [base+off]` then `Branch op a, b -> t`.
    LoadBranch {
        dl: Reg,
        base: Reg,
        off: u16,
        op: BrOp,
        a: Reg,
        b: Reg,
        t: u32,
    },
    /// Superinstruction: `Arith aop ad, aa, ab` then `Branch op a, b -> t`.
    ArithBranch {
        aop: AOp,
        ad: Reg,
        aa: Reg,
        ab: Reg,
        op: BrOp,
        a: Reg,
        b: Reg,
        t: u32,
    },
    /// Superinstruction: `Move d, s` then `Jump label` (tail-call
    /// argument shuffle).
    MoveJump {
        d: Reg,
        s: Reg,
        label: u32,
    },
    /// Deferral to [`Engine::step`] on the original instruction at
    /// `pc` (vector operands, runtime calls, or a branch whose target
    /// cannot be mapped into the stream).
    Slow {
        pc: u32,
    },
}

/// One block's pre-decoded stream plus the two coordinate maps between
/// original pcs and record indices.
pub(crate) struct ThreadedBlock {
    /// The handler records.
    pub(crate) code: Vec<TInstr>,
    /// `pc_map[pc]` is the record containing original instruction `pc`
    /// (length `n + 1`; `pc_map[n] == code.len()` so a fall-off-the-end
    /// pc maps to the one-past-the-end record).
    pub(crate) pc_map: Vec<u32>,
    /// `tpc_to_pc[rec]` is the original pc of record `rec`'s first
    /// constituent (length `code.len() + 1`;
    /// `tpc_to_pc[code.len()] == n`).
    pub(crate) tpc_to_pc: Vec<u32>,
}

/// A whole program's pre-decoded streams, built once per
/// [`VmInstance`].
pub(crate) struct ThreadedProgram {
    pub(crate) blocks: Vec<ThreadedBlock>,
    /// Superinstructions the peephole selector fused.
    pub(crate) fused: u64,
    /// Total handler records across all blocks.
    pub(crate) stream_len: u64,
}

/// Is `(i1, i2)` a fusable pair? Branch-consuming pairs additionally
/// require a mappable target (`target <= n`); an out-of-range target
/// must fault with the original pc, which only the slow path preserves.
fn fusable(i1: &Instr, i2: &Instr, n: usize) -> bool {
    match (i1, i2) {
        (Instr::LoadI { .. }, Instr::Arith { .. }) => true,
        (
            Instr::LoadI { .. } | Instr::Load { .. } | Instr::Arith { .. },
            Instr::Branch { target, .. },
        ) => *target as usize <= n,
        (Instr::Move { .. }, Instr::Jump { .. }) => true,
        _ => false,
    }
}

/// Translates one unfused instruction into its flat record, or
/// [`TInstr::Slow`] for the deferred set.
fn translate_single(ins: &Instr, pc: usize, pc_map: &[u32], n: usize) -> TInstr {
    match ins {
        Instr::Move { d, s } => TInstr::Move { d: *d, s: *s },
        Instr::FMove { d, s } => TInstr::FMove { d: *d, s: *s },
        Instr::LoadI { d, imm } => TInstr::LoadI { d: *d, imm: *imm },
        Instr::LoadF { d, imm } => TInstr::LoadF { d: *d, imm: *imm },
        Instr::LoadStr { d, pool } => TInstr::LoadStr { d: *d, pool: *pool },
        Instr::LoadLabel { d, label } => TInstr::LoadLabel {
            d: *d,
            label: *label,
        },
        Instr::Arith { op, d, a, b } => TInstr::Arith {
            op: *op,
            d: *d,
            a: *a,
            b: *b,
        },
        Instr::FArith { op, d, a, b } => TInstr::FArith {
            op: *op,
            d: *d,
            a: *a,
            b: *b,
        },
        Instr::FUnary { op, d, a } => TInstr::FUnary {
            op: *op,
            d: *d,
            a: *a,
        },
        Instr::Floor { d, a } => TInstr::Floor { d: *d, a: *a },
        Instr::IntToReal { d, a } => TInstr::IntToReal { d: *d, a: *a },
        Instr::Load { d, base, off } => TInstr::Load {
            d: *d,
            base: *base,
            off: *off,
        },
        Instr::Store { s, base, off } => TInstr::Store {
            s: *s,
            base: *base,
            off: *off,
        },
        Instr::StoreWB { s, base, off } => TInstr::StoreWB {
            s: *s,
            base: *base,
            off: *off,
        },
        Instr::FLoad { d, base, off } => TInstr::FLoad {
            d: *d,
            base: *base,
            off: *off,
        },
        Instr::FStore { s, base, off } => TInstr::FStore {
            s: *s,
            base: *base,
            off: *off,
        },
        Instr::LoadIdx { d, base, idx } => TInstr::LoadIdx {
            d: *d,
            base: *base,
            idx: *idx,
        },
        Instr::StoreIdx { s, base, idx } => TInstr::StoreIdx {
            s: *s,
            base: *base,
            idx: *idx,
        },
        Instr::StoreIdxWB { s, base, idx } => TInstr::StoreIdxWB {
            s: *s,
            base: *base,
            idx: *idx,
        },
        Instr::ArrLen { d, a } => TInstr::ArrLen { d: *d, a: *a },
        Instr::FBox { d, s } => TInstr::FBox { d: *d, s: *s },
        Instr::FUnbox { d, s } => TInstr::FUnbox { d: *d, s: *s },
        Instr::Branch { op, a, b, target } if *target as usize <= n => TInstr::Branch {
            op: *op,
            a: *a,
            b: *b,
            t: pc_map[*target as usize],
        },
        Instr::FBranch { op, a, b, target } if *target as usize <= n => TInstr::FBranch {
            op: *op,
            a: *a,
            b: *b,
            t: pc_map[*target as usize],
        },
        Instr::Jump { label } => TInstr::Jump { label: *label },
        Instr::JumpReg { r } => TInstr::JumpReg { r: *r },
        Instr::GetHdlr { d } => TInstr::GetHdlr { d: *d },
        Instr::SetHdlr { s } => TInstr::SetHdlr { s: *s },
        Instr::Halt { s } => TInstr::Halt { s: *s },
        Instr::Uncaught { s } => TInstr::Uncaught { s: *s },
        // Vector operands, runtime calls, and unmappable branch
        // targets defer to the decode-path `step`.
        _ => TInstr::Slow { pc: pc as u32 },
    }
}

/// Builds the fused record for a pair selected by [`fusable`].
fn translate_pair(i1: &Instr, i2: &Instr, pc_map: &[u32]) -> TInstr {
    match (i1, i2) {
        (Instr::LoadI { d: di, imm }, Instr::Arith { op, d, a, b }) => TInstr::LoadIArith {
            imm: *imm,
            di: *di,
            op: *op,
            d: *d,
            a: *a,
            b: *b,
        },
        (Instr::LoadI { d: di, imm }, Instr::Branch { op, a, b, target }) => TInstr::LoadIBranch {
            imm: *imm,
            di: *di,
            op: *op,
            a: *a,
            b: *b,
            t: pc_map[*target as usize],
        },
        (Instr::Load { d, base, off }, Instr::Branch { op, a, b, target }) => TInstr::LoadBranch {
            dl: *d,
            base: *base,
            off: *off,
            op: *op,
            a: *a,
            b: *b,
            t: pc_map[*target as usize],
        },
        (
            Instr::Arith { op: aop, d, a, b },
            Instr::Branch {
                op,
                a: ba,
                b: bb,
                target,
            },
        ) => TInstr::ArithBranch {
            aop: *aop,
            ad: *d,
            aa: *a,
            ab: *b,
            op: *op,
            a: *ba,
            b: *bb,
            t: pc_map[*target as usize],
        },
        (Instr::Move { d, s }, Instr::Jump { label }) => TInstr::MoveJump {
            d: *d,
            s: *s,
            label: *label,
        },
        _ => unreachable!("translate_pair on a pair fusable() rejected"),
    }
}

/// Pre-decodes one block: segments the instruction stream into records
/// (pass 1), then emits them with branch targets mapped into threaded
/// coordinates (pass 2).
fn predecode_block(b: &CodeBlock) -> (ThreadedBlock, u64) {
    let instrs = &b.instrs;
    let n = instrs.len();

    // Original pcs that any branch in the block may target (a target
    // beyond the block is left unmapped — the slow path preserves its
    // fault pc). A targeted pc must start a record, so it blocks
    // fusion as a second constituent.
    let mut is_target = vec![false; n + 1];
    let mut targets = Vec::new();
    for ins in instrs {
        targets.clear();
        crate::verify::branch_targets(ins, &mut targets);
        for &t in &targets {
            if t as usize <= n {
                is_target[t as usize] = true;
            }
        }
    }

    // Pass 1: segmentation. Decide which pcs fuse with their successor
    // and assign every pc its record index.
    let mut pc_map = vec![0u32; n + 1];
    let mut starts: Vec<u32> = Vec::with_capacity(n);
    let mut pair: Vec<bool> = Vec::with_capacity(n);
    let mut pc = 0usize;
    while pc < n {
        let fuse = pc + 1 < n && !is_target[pc + 1] && fusable(&instrs[pc], &instrs[pc + 1], n);
        let rec = starts.len() as u32;
        pc_map[pc] = rec;
        if fuse {
            pc_map[pc + 1] = rec;
        }
        starts.push(pc as u32);
        pair.push(fuse);
        pc += if fuse { 2 } else { 1 };
    }
    pc_map[n] = starts.len() as u32;

    // Pass 2: emission, now that every branch target's record index is
    // known.
    let mut code = Vec::with_capacity(starts.len());
    let mut fused = 0u64;
    for (rec, &start) in starts.iter().enumerate() {
        let start = start as usize;
        if pair[rec] {
            fused += 1;
            code.push(translate_pair(&instrs[start], &instrs[start + 1], &pc_map));
        } else {
            code.push(translate_single(&instrs[start], start, &pc_map, n));
        }
    }
    let mut tpc_to_pc = starts;
    tpc_to_pc.push(n as u32);
    (
        ThreadedBlock {
            code,
            pc_map,
            tpc_to_pc,
        },
        fused,
    )
}

/// Pre-decodes a whole program into threaded streams.
pub(crate) fn predecode(prog: &MachineProgram) -> ThreadedProgram {
    let mut blocks = Vec::with_capacity(prog.blocks.len());
    let mut fused = 0u64;
    let mut stream_len = 0u64;
    for b in &prog.blocks {
        let (tb, f) = predecode_block(b);
        fused += f;
        stream_len += tb.code.len() as u64;
        blocks.push(tb);
    }
    ThreadedProgram {
        blocks,
        fused,
        stream_len,
    }
}

/// Expands a record back into original-coordinate [`Instr`]s (threaded
/// branch targets mapped back through `tpc_to_pc`). Returns `None` for
/// [`TInstr::Slow`], which carries no operand copy to round-trip. Used
/// by `verify::verify_threaded`.
pub(crate) fn expand(t: &TInstr, tb: &ThreadedBlock) -> Option<Vec<Instr>> {
    let back = |t: u32| tb.tpc_to_pc[t as usize];
    Some(match *t {
        TInstr::Move { d, s } => vec![Instr::Move { d, s }],
        TInstr::FMove { d, s } => vec![Instr::FMove { d, s }],
        TInstr::LoadI { d, imm } => vec![Instr::LoadI { d, imm }],
        TInstr::LoadF { d, imm } => vec![Instr::LoadF { d, imm }],
        TInstr::LoadStr { d, pool } => vec![Instr::LoadStr { d, pool }],
        TInstr::LoadLabel { d, label } => vec![Instr::LoadLabel { d, label }],
        TInstr::Arith { op, d, a, b } => vec![Instr::Arith { op, d, a, b }],
        TInstr::FArith { op, d, a, b } => vec![Instr::FArith { op, d, a, b }],
        TInstr::FUnary { op, d, a } => vec![Instr::FUnary { op, d, a }],
        TInstr::Floor { d, a } => vec![Instr::Floor { d, a }],
        TInstr::IntToReal { d, a } => vec![Instr::IntToReal { d, a }],
        TInstr::Load { d, base, off } => vec![Instr::Load { d, base, off }],
        TInstr::Store { s, base, off } => vec![Instr::Store { s, base, off }],
        TInstr::StoreWB { s, base, off } => vec![Instr::StoreWB { s, base, off }],
        TInstr::FLoad { d, base, off } => vec![Instr::FLoad { d, base, off }],
        TInstr::FStore { s, base, off } => vec![Instr::FStore { s, base, off }],
        TInstr::LoadIdx { d, base, idx } => vec![Instr::LoadIdx { d, base, idx }],
        TInstr::StoreIdx { s, base, idx } => vec![Instr::StoreIdx { s, base, idx }],
        TInstr::StoreIdxWB { s, base, idx } => vec![Instr::StoreIdxWB { s, base, idx }],
        TInstr::ArrLen { d, a } => vec![Instr::ArrLen { d, a }],
        TInstr::FBox { d, s } => vec![Instr::FBox { d, s }],
        TInstr::FUnbox { d, s } => vec![Instr::FUnbox { d, s }],
        TInstr::Branch { op, a, b, t } => vec![Instr::Branch {
            op,
            a,
            b,
            target: back(t),
        }],
        TInstr::FBranch { op, a, b, t } => vec![Instr::FBranch {
            op,
            a,
            b,
            target: back(t),
        }],
        TInstr::Jump { label } => vec![Instr::Jump { label }],
        TInstr::JumpReg { r } => vec![Instr::JumpReg { r }],
        TInstr::GetHdlr { d } => vec![Instr::GetHdlr { d }],
        TInstr::SetHdlr { s } => vec![Instr::SetHdlr { s }],
        TInstr::Halt { s } => vec![Instr::Halt { s }],
        TInstr::Uncaught { s } => vec![Instr::Uncaught { s }],
        TInstr::LoadIArith {
            imm,
            di,
            op,
            d,
            a,
            b,
        } => vec![Instr::LoadI { d: di, imm }, Instr::Arith { op, d, a, b }],
        TInstr::LoadIBranch {
            imm,
            di,
            op,
            a,
            b,
            t,
        } => vec![
            Instr::LoadI { d: di, imm },
            Instr::Branch {
                op,
                a,
                b,
                target: back(t),
            },
        ],
        TInstr::LoadBranch {
            dl,
            base,
            off,
            op,
            a,
            b,
            t,
        } => vec![
            Instr::Load { d: dl, base, off },
            Instr::Branch {
                op,
                a,
                b,
                target: back(t),
            },
        ],
        TInstr::ArithBranch {
            aop,
            ad,
            aa,
            ab,
            op,
            a,
            b,
            t,
        } => vec![
            Instr::Arith {
                op: aop,
                d: ad,
                a: aa,
                b: ab,
            },
            Instr::Branch {
                op,
                a,
                b,
                target: back(t),
            },
        ],
        TInstr::MoveJump { d, s, label } => vec![Instr::Move { d, s }, Instr::Jump { label }],
        TInstr::Slow { .. } => return None,
    })
}

/// The threaded dispatch loop: same contract as the decode loop
/// (`VmInstance::run_slice_decode`), same [`Engine`] handlers, same
/// accounting — only the fetch/decode mechanics differ.
pub(crate) fn run_slice_threaded(vm: &mut VmInstance<'_>, quantum: u64) -> bool {
    if vm.finished.is_some() {
        return true;
    }
    let stop_at = vm.stats.cycles.saturating_add(quantum);
    let mut out: Option<VmResult> = None;
    let (block, pc) = {
        let tp = vm
            .threaded
            .as_ref()
            .expect("threaded dispatch without a pre-decoded stream");
        let mut eng = Engine {
            prog: &vm.prog,
            cfg: &vm.cfg,
            heap: &mut vm.heap,
            pool_ptrs: &vm.pool_ptrs,
            regs: &mut vm.regs,
            fregs: &mut vm.fregs,
            handler: &mut vm.handler,
            stats: &mut vm.stats,
            output: &mut vm.output,
            yield_ctr: &mut vm.yield_ctr,
            block: vm.block,
            pc: vm.pc,
        };
        // The threaded program counter, plus the original pc to report
        // if the current position has no threaded coordinate (an
        // out-of-range pc carried in from a branch or a resume).
        let mut tpc: usize;
        let mut bad_pc: Option<usize>;
        if eng.block < tp.blocks.len() {
            let tb = &tp.blocks[eng.block];
            if eng.pc < tb.pc_map.len() {
                tpc = tb.pc_map[eng.pc] as usize;
                bad_pc = None;
            } else {
                tpc = tb.code.len();
                bad_pc = Some(eng.pc);
            }
        } else {
            tpc = 0;
            bad_pc = Some(eng.pc);
        }

        // Per-constituent accounting, identical to one decode-loop
        // iteration: count, snapshot, execute, drain the read barrier,
        // attribute mutator vs. GC cycles.
        macro_rules! acct {
            ($class:expr, $e:expr) => {{
                let class = $class as usize;
                eng.stats.instrs += 1;
                eng.stats.instrs_by_class[class] += 1;
                let cycles_before = eng.stats.cycles;
                let gc_before = eng.stats.gc_cycles;
                let r = $e;
                drain_barrier(&mut *eng.heap, &mut *eng.stats);
                let gc_delta = eng.stats.gc_cycles - gc_before;
                eng.stats.cycles_by_class[class] += eng.stats.cycles - cycles_before - gc_delta;
                eng.stats.cycles_by_class[InstrClass::Gc as usize] += gc_delta;
                r
            }};
        }
        macro_rules! trapcheck {
            ($r:expr) => {
                match $r {
                    Ok(v) => v,
                    Err(end) => {
                        out = Some(end);
                        break;
                    }
                }
            };
        }
        // The decode loop checks fuel at the top of every iteration;
        // between the halves of a fused pair this reproduces that
        // check.
        macro_rules! fuelcheck {
            () => {
                if eng.stats.cycles > eng.cfg.max_cycles {
                    out = Some(VmResult::OutOfFuel);
                    break;
                }
            };
        }

        loop {
            if eng.stats.cycles > eng.cfg.max_cycles {
                out = Some(VmResult::OutOfFuel);
                break;
            }
            if eng.stats.cycles >= stop_at {
                break; // quantum spent: preempted between records
            }
            if eng.block >= tp.blocks.len() || tpc >= tp.blocks[eng.block].code.len() {
                let pc = bad_pc.unwrap_or_else(|| {
                    if eng.block < tp.blocks.len() {
                        tp.blocks[eng.block].tpc_to_pc[tpc] as usize
                    } else {
                        eng.pc
                    }
                });
                out = Some(VmResult::Fault(format!(
                    "instruction fetch out of range: block {} pc {}",
                    eng.block, pc
                )));
                break;
            }
            let tb = &tp.blocks[eng.block];
            match tb.code[tpc] {
                TInstr::Move { d, s } => {
                    acct!(InstrClass::Move, eng.m_move(d, s));
                    tpc += 1;
                }
                TInstr::FMove { d, s } => {
                    acct!(InstrClass::Move, eng.m_fmove(d, s));
                    tpc += 1;
                }
                TInstr::LoadI { d, imm } => {
                    acct!(InstrClass::Move, eng.m_loadi(d, imm));
                    tpc += 1;
                }
                TInstr::LoadF { d, imm } => {
                    acct!(InstrClass::Move, eng.m_loadf(d, imm));
                    tpc += 1;
                }
                TInstr::LoadStr { d, pool } => {
                    let r = acct!(InstrClass::Move, eng.m_loadstr(d, pool));
                    trapcheck!(r);
                    tpc += 1;
                }
                TInstr::LoadLabel { d, label } => {
                    acct!(InstrClass::Move, eng.m_loadlabel(d, label));
                    tpc += 1;
                }
                TInstr::Arith { op, d, a, b } => {
                    let r = acct!(InstrClass::IntArith, eng.m_arith(op, d, a, b));
                    trapcheck!(r);
                    tpc += 1;
                }
                TInstr::FArith { op, d, a, b } => {
                    acct!(InstrClass::FloatArith, eng.m_farith(op, d, a, b));
                    tpc += 1;
                }
                TInstr::FUnary { op, d, a } => {
                    acct!(InstrClass::FloatArith, eng.m_funary(op, d, a));
                    tpc += 1;
                }
                TInstr::Floor { d, a } => {
                    acct!(InstrClass::FloatArith, eng.m_floor(d, a));
                    tpc += 1;
                }
                TInstr::IntToReal { d, a } => {
                    acct!(InstrClass::FloatArith, eng.m_inttoreal(d, a));
                    tpc += 1;
                }
                TInstr::Load { d, base, off } => {
                    let r = acct!(InstrClass::Memory, eng.m_load(d, base, off));
                    trapcheck!(r);
                    tpc += 1;
                }
                TInstr::Store { s, base, off } => {
                    let r = acct!(InstrClass::Memory, eng.m_store(s, base, off));
                    trapcheck!(r);
                    tpc += 1;
                }
                TInstr::StoreWB { s, base, off } => {
                    let r = acct!(InstrClass::Memory, eng.m_storewb(s, base, off));
                    trapcheck!(r);
                    tpc += 1;
                }
                TInstr::FLoad { d, base, off } => {
                    let r = acct!(InstrClass::Memory, eng.m_fload(d, base, off));
                    trapcheck!(r);
                    tpc += 1;
                }
                TInstr::FStore { s, base, off } => {
                    let r = acct!(InstrClass::Memory, eng.m_fstore(s, base, off));
                    trapcheck!(r);
                    tpc += 1;
                }
                TInstr::LoadIdx { d, base, idx } => {
                    let r = acct!(InstrClass::Memory, eng.m_loadidx(d, base, idx));
                    trapcheck!(r);
                    tpc += 1;
                }
                TInstr::StoreIdx { s, base, idx } => {
                    let r = acct!(InstrClass::Memory, eng.m_storeidx(s, base, idx));
                    trapcheck!(r);
                    tpc += 1;
                }
                TInstr::StoreIdxWB { s, base, idx } => {
                    let r = acct!(InstrClass::Memory, eng.m_storeidxwb(s, base, idx));
                    trapcheck!(r);
                    tpc += 1;
                }
                TInstr::ArrLen { d, a } => {
                    let r = acct!(InstrClass::Memory, eng.m_arrlen(d, a));
                    trapcheck!(r);
                    tpc += 1;
                }
                TInstr::FBox { d, s } => {
                    let r = acct!(InstrClass::Alloc, eng.m_fbox(d, s));
                    trapcheck!(r);
                    tpc += 1;
                }
                TInstr::FUnbox { d, s } => {
                    let r = acct!(InstrClass::Memory, eng.m_funbox(d, s));
                    trapcheck!(r);
                    tpc += 1;
                }
                TInstr::Branch { op, a, b, t } => {
                    let taken = acct!(InstrClass::Branch, eng.m_branch(op, a, b));
                    tpc = if taken { tpc + 1 } else { t as usize };
                }
                TInstr::FBranch { op, a, b, t } => {
                    let taken = acct!(InstrClass::Branch, eng.m_fbranch(op, a, b));
                    tpc = if taken { tpc + 1 } else { t as usize };
                }
                TInstr::Jump { label } => {
                    acct!(InstrClass::Jump, eng.m_jump());
                    eng.block = label as usize;
                    eng.pc = 0;
                    bad_pc = None;
                    tpc = 0;
                }
                TInstr::JumpReg { r } => {
                    let r = acct!(InstrClass::Jump, eng.m_jumpreg(r));
                    let target = trapcheck!(r);
                    eng.block = target;
                    eng.pc = 0;
                    bad_pc = None;
                    tpc = 0;
                }
                TInstr::GetHdlr { d } => {
                    acct!(InstrClass::Control, eng.m_gethdlr(d));
                    tpc += 1;
                }
                TInstr::SetHdlr { s } => {
                    acct!(InstrClass::Control, eng.m_sethdlr(s));
                    tpc += 1;
                }
                TInstr::Halt { s } => {
                    let r: Result<(), VmResult> = acct!(InstrClass::Control, Err(eng.m_halt(s)));
                    trapcheck!(r);
                }
                TInstr::Uncaught { s } => {
                    let r: Result<(), VmResult> =
                        acct!(InstrClass::Control, Err(eng.m_uncaught(s)));
                    trapcheck!(r);
                }
                TInstr::LoadIArith {
                    imm,
                    di,
                    op,
                    d,
                    a,
                    b,
                } => {
                    acct!(InstrClass::Move, eng.m_loadi(di, imm));
                    fuelcheck!();
                    let r = acct!(InstrClass::IntArith, eng.m_arith(op, d, a, b));
                    trapcheck!(r);
                    tpc += 1;
                }
                TInstr::LoadIBranch {
                    imm,
                    di,
                    op,
                    a,
                    b,
                    t,
                } => {
                    acct!(InstrClass::Move, eng.m_loadi(di, imm));
                    fuelcheck!();
                    let taken = acct!(InstrClass::Branch, eng.m_branch(op, a, b));
                    tpc = if taken { tpc + 1 } else { t as usize };
                }
                TInstr::LoadBranch {
                    dl,
                    base,
                    off,
                    op,
                    a,
                    b,
                    t,
                } => {
                    let r = acct!(InstrClass::Memory, eng.m_load(dl, base, off));
                    trapcheck!(r);
                    fuelcheck!();
                    let taken = acct!(InstrClass::Branch, eng.m_branch(op, a, b));
                    tpc = if taken { tpc + 1 } else { t as usize };
                }
                TInstr::ArithBranch {
                    aop,
                    ad,
                    aa,
                    ab,
                    op,
                    a,
                    b,
                    t,
                } => {
                    let r = acct!(InstrClass::IntArith, eng.m_arith(aop, ad, aa, ab));
                    trapcheck!(r);
                    fuelcheck!();
                    let taken = acct!(InstrClass::Branch, eng.m_branch(op, a, b));
                    tpc = if taken { tpc + 1 } else { t as usize };
                }
                TInstr::MoveJump { d, s, label } => {
                    acct!(InstrClass::Move, eng.m_move(d, s));
                    fuelcheck!();
                    acct!(InstrClass::Jump, eng.m_jump());
                    eng.block = label as usize;
                    eng.pc = 0;
                    bad_pc = None;
                    tpc = 0;
                }
                TInstr::Slow { pc } => {
                    let pc = pc as usize;
                    let instr = &eng.prog.blocks[eng.block].instrs[pc];
                    eng.pc = pc + 1;
                    let r = acct!(instr.class(), eng.step(instr));
                    trapcheck!(r);
                    // `step` may have redirected `eng.pc` (Switch,
                    // string branches, an unmapped Branch); rejoin the
                    // threaded stream at the record holding it.
                    // Fall-through and every branch target land on a
                    // record boundary, so the mapping is exact.
                    let tb = &tp.blocks[eng.block];
                    if eng.pc < tb.pc_map.len() {
                        tpc = tb.pc_map[eng.pc] as usize;
                        bad_pc = None;
                    } else {
                        tpc = tb.code.len();
                        bad_pc = Some(eng.pc);
                    }
                }
            }
        }
        // Translate the exit position back into original coordinates
        // so resumption — under either engine — and fault reporting
        // agree with the decode loop.
        let pc = match bad_pc {
            Some(p) => p,
            None => {
                if eng.block < tp.blocks.len() {
                    tp.blocks[eng.block].tpc_to_pc[tpc] as usize
                } else {
                    eng.pc
                }
            }
        };
        (eng.block, pc)
    };
    vm.block = block;
    vm.pc = pc;
    vm.sync_heap_stats();
    vm.finished = out;
    vm.finished.is_some()
}
