//! The abstract machine instruction set: a MIPS-like 32-bit RISC with 32
//! general-purpose and 32 floating-point registers (DECstation 5000
//! class), plus "virtual" registers 32..63 that model spill slots (each
//! access pays an extra memory cost).
//!
//! Values are one word: tagged 31-bit integers (low bit set) or 4-byte-
//! aligned heap pointers (low bit clear). Raw IEEE doubles live in the
//! float register file and in the raw parts of heap records.

/// An integer register (0..31 hardware, 32..63 spill-modelled).
pub type Reg = u8;
/// A float register.
pub type FReg = u8;

/// Number of hardware registers; indices beyond this model spill slots.
pub const HW_REGS: u8 = 32;
/// Total addressable registers (hardware + spill-modelled).
pub const MAX_REGS: u8 = 64;

/// Integer ALU operations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum AOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

/// Float ALU operations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum FOp {
    Add,
    Sub,
    Mul,
    Div,
}

/// Float unary operations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum FUOp {
    Neg,
    Sqrt,
    Sin,
    Cos,
    Atan,
    Exp,
    Ln,
}

/// Branch comparisons on integer registers (word comparison).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum BrOp {
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    /// True when the word is a heap pointer (low bit clear).
    Boxed,
}

/// Branch comparisons on float registers.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum FBrOp {
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

/// String-runtime branch comparisons.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum SBrOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// String/miscellaneous runtime calls producing a value.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum RtOp {
    /// `d := a ^ b` (allocates).
    StrCat,
    /// `d := size a`.
    StrSize,
    /// `d := ord (sub (a, b))` (no bounds check; checked upstream).
    StrSub,
    /// `d := itos a` (allocates).
    IntToString,
    /// `d := rtos fa` (allocates) — float argument in `fa`.
    RealToString,
}

/// One machine instruction.
#[derive(Clone, Debug)]
#[allow(missing_docs)]
pub enum Instr {
    /// Register move.
    Move { d: Reg, s: Reg },
    /// Float register move.
    FMove { d: FReg, s: FReg },
    /// Load a tagged integer constant.
    LoadI { d: Reg, imm: i64 },
    /// Load a float constant.
    LoadF { d: FReg, imm: f64 },
    /// Load a pointer to a pooled string literal.
    LoadStr { d: Reg, pool: u32 },
    /// Load a code label (encoded as a tagged integer).
    LoadLabel { d: Reg, label: u32 },
    /// Integer ALU.
    Arith { op: AOp, d: Reg, a: Reg, b: Reg },
    /// Float ALU.
    FArith { op: FOp, d: FReg, a: FReg, b: FReg },
    /// Float unary.
    FUnary { op: FUOp, d: FReg, a: FReg },
    /// `d := floor fa`.
    Floor { d: Reg, a: FReg },
    /// `fd := real a`.
    IntToReal { d: FReg, a: Reg },
    /// Load a word field: `d := mem[base + off]` (word offset).
    Load { d: Reg, base: Reg, off: u16 },
    /// Store a word field.
    Store { s: Reg, base: Reg, off: u16 },
    /// Store a word field with the generational write barrier.
    StoreWB { s: Reg, base: Reg, off: u16 },
    /// Load a raw float field (two single-word loads, paper footnote 7).
    FLoad { d: FReg, base: Reg, off: u16 },
    /// Store a raw float field (two single-word stores).
    FStore { s: FReg, base: Reg, off: u16 },
    /// Indexed word load: `d := mem[base + idx]` (idx is a tagged int
    /// register).
    LoadIdx { d: Reg, base: Reg, idx: Reg },
    /// Indexed word store.
    StoreIdx { s: Reg, base: Reg, idx: Reg },
    /// Indexed word store with write barrier.
    StoreIdxWB { s: Reg, base: Reg, idx: Reg },
    /// Allocate a record: scanned word fields from `words`, raw float
    /// fields from `flts`; `d` receives the pointer.
    Alloc {
        d: Reg,
        kind: AllocKind,
        words: Vec<Reg>,
        flts: Vec<FReg>,
    },
    /// Allocate an array of `len` (tagged int register) elements, all
    /// initialized to `init`.
    AllocArr { d: Reg, len: Reg, init: Reg },
    /// `d := length of array` (from the descriptor).
    ArrLen { d: Reg, a: Reg },
    /// Box a float: allocate a 2-raw-word object.
    FBox { d: Reg, s: FReg },
    /// Unbox a float (two single-word loads).
    FUnbox { d: FReg, s: Reg },
    /// Conditional branch: if the comparison is FALSE, jump to `target`
    /// (instruction index within this block); otherwise fall through.
    Branch {
        op: BrOp,
        a: Reg,
        b: Reg,
        target: u32,
    },
    /// Float conditional branch (if false, jump).
    FBranch {
        op: FBrOp,
        a: FReg,
        b: FReg,
        target: u32,
    },
    /// String conditional branch (if false, jump); runtime compare.
    SBranch {
        op: SBrOp,
        a: Reg,
        b: Reg,
        target: u32,
    },
    /// Structural (polymorphic) equality; if UNEQUAL, jump. Runtime
    /// traversal, cost proportional to the structure visited.
    PolyEqBranch { a: Reg, b: Reg, target: u32 },
    /// Dense jump table on a tagged integer: jump to
    /// `table[value - lo]` (an instruction index within this block), or
    /// to `default` when out of range. Costs ~3 cycles.
    Switch {
        r: Reg,
        lo: i64,
        table: Vec<u32>,
        default: u32,
    },
    /// Tail jump to a known code block (arguments already placed).
    Jump { label: u32 },
    /// Indirect tail jump: code label (tagged int) in `r`.
    JumpReg { r: Reg },
    /// Runtime call producing a value.
    Rt {
        op: RtOp,
        d: Reg,
        a: Reg,
        b: Reg,
        fa: FReg,
    },
    /// Read the exception-handler register.
    GetHdlr { d: Reg },
    /// Write the exception-handler register.
    SetHdlr { s: Reg },
    /// Print the string in `s` to the output buffer.
    Print { s: Reg },
    /// Stop with the value in `s`.
    Halt { s: Reg },
    /// Stop with an uncaught exception whose packet is in `s`.
    Uncaught { s: Reg },
}

/// Coarse classification of instructions for cycle accounting (the
/// breakdown behind the paper's Figure 7 discussion: where do the
/// cycles go — arithmetic, memory traffic, allocation, or control?).
///
/// [`InstrClass::Gc`] is a pseudo-class: no instruction maps to it, but
/// the interpreter attributes collector cycles there so the per-class
/// cycle counts always sum to the total.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InstrClass {
    /// Register-to-register and constant moves.
    Move = 0,
    /// Integer ALU operations.
    IntArith = 1,
    /// Float ALU, unary float ops, and int/float conversions.
    FloatArith = 2,
    /// Loads and stores (word, float, indexed), descriptor reads.
    Memory = 3,
    /// Heap allocation (records, arrays, float boxing).
    Alloc = 4,
    /// Conditional branches, including string and polymorphic equality.
    Branch = 5,
    /// Direct and indirect jumps (inter-block control transfer).
    Jump = 6,
    /// Runtime calls (string ops, number formatting, printing).
    Runtime = 7,
    /// Handler bookkeeping and termination.
    Control = 8,
    /// Cheney-collector work (pseudo-class; see type docs).
    Gc = 9,
}

/// Number of instruction classes (the length of per-class counter
/// arrays in `RunStats`).
pub const N_INSTR_CLASSES: usize = 10;

impl InstrClass {
    /// All classes, in discriminant order.
    pub fn all() -> [InstrClass; N_INSTR_CLASSES] {
        [
            InstrClass::Move,
            InstrClass::IntArith,
            InstrClass::FloatArith,
            InstrClass::Memory,
            InstrClass::Alloc,
            InstrClass::Branch,
            InstrClass::Jump,
            InstrClass::Runtime,
            InstrClass::Control,
            InstrClass::Gc,
        ]
    }

    /// A stable kebab-case name (used as the JSON key in `--stats=json`).
    pub fn name(self) -> &'static str {
        match self {
            InstrClass::Move => "move",
            InstrClass::IntArith => "int-arith",
            InstrClass::FloatArith => "float-arith",
            InstrClass::Memory => "memory",
            InstrClass::Alloc => "alloc",
            InstrClass::Branch => "branch",
            InstrClass::Jump => "jump",
            InstrClass::Runtime => "runtime",
            InstrClass::Control => "control",
            InstrClass::Gc => "gc",
        }
    }
}

impl Instr {
    /// The accounting class of this instruction.
    pub fn class(&self) -> InstrClass {
        match self {
            Instr::Move { .. }
            | Instr::FMove { .. }
            | Instr::LoadI { .. }
            | Instr::LoadF { .. }
            | Instr::LoadStr { .. }
            | Instr::LoadLabel { .. } => InstrClass::Move,
            Instr::Arith { .. } => InstrClass::IntArith,
            Instr::FArith { .. }
            | Instr::FUnary { .. }
            | Instr::Floor { .. }
            | Instr::IntToReal { .. } => InstrClass::FloatArith,
            Instr::Load { .. }
            | Instr::Store { .. }
            | Instr::StoreWB { .. }
            | Instr::FLoad { .. }
            | Instr::FStore { .. }
            | Instr::LoadIdx { .. }
            | Instr::StoreIdx { .. }
            | Instr::StoreIdxWB { .. }
            | Instr::ArrLen { .. }
            | Instr::FUnbox { .. } => InstrClass::Memory,
            Instr::Alloc { .. } | Instr::AllocArr { .. } | Instr::FBox { .. } => InstrClass::Alloc,
            Instr::Branch { .. }
            | Instr::FBranch { .. }
            | Instr::SBranch { .. }
            | Instr::PolyEqBranch { .. }
            | Instr::Switch { .. } => InstrClass::Branch,
            Instr::Jump { .. } | Instr::JumpReg { .. } => InstrClass::Jump,
            Instr::Rt { .. } | Instr::Print { .. } => InstrClass::Runtime,
            Instr::GetHdlr { .. }
            | Instr::SetHdlr { .. }
            | Instr::Halt { .. }
            | Instr::Uncaught { .. } => InstrClass::Control,
        }
    }
}

/// What kind of object an `Alloc` creates (drives the descriptor).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AllocKind {
    /// Immutable record (possibly with raw float fields).
    Record,
    /// Mutable reference cell (1 scanned word).
    Ref,
}

/// A compiled function: a straight-line block with internal forward
/// branches, ending in jumps or halt.
#[derive(Clone, Debug, Default)]
pub struct CodeBlock {
    /// Diagnostic name.
    pub name: String,
    /// The instructions.
    pub instrs: Vec<Instr>,
}

/// A complete machine program.
#[derive(Clone, Debug, Default)]
pub struct MachineProgram {
    /// Code blocks; `Jump { label }` indexes this vector.
    pub blocks: Vec<CodeBlock>,
    /// Index of the entry block.
    pub entry: u32,
    /// String literals, pre-allocated in the immortal heap region at
    /// startup.
    pub pool: Vec<String>,
}

impl MachineProgram {
    /// Total instruction count (the paper's code-size metric).
    pub fn code_size(&self) -> usize {
        self.blocks.iter().map(|b| b.instrs.len()).sum()
    }
}
