//! Bytecode verifier.
//!
//! Statically validates a [`MachineProgram`] before it reaches the
//! interpreter: control-flow targets, register discipline, string-pool
//! references, and — tying into the generational collector — that every
//! `Alloc` describes an object layout the GC scanner can represent in a
//! descriptor word. Violations carry a stable `rule` tag and cite the
//! offending instruction by its disassembly line (`L<block> @<pc>`),
//! the same rendering `--emit asm` prints (schema in
//! `docs/VERIFY_IR.md`).
//!
//! The interpreter re-checks most of these properties dynamically and
//! faults; the verifier's value is flagging them *statically*, for all
//! paths, at compile time — including paths a given input never drives
//! the VM down.

use crate::heap::{decode, descriptor, Heap, ObjKind, MAX_RAW_WORDS, MAX_SCAN_FIELDS};
use crate::isa::{AllocKind, CodeBlock, FReg, Instr, MachineProgram, Reg, MAX_REGS};

/// A structured well-formedness violation found by [`verify_bytecode`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BytecodeViolation {
    /// Stable rule tag, e.g. `"branch-target"`.
    pub rule: &'static str,
    /// What went wrong; instruction-level violations cite the
    /// disassembly line as `L<block> @<pc>: <instr>`.
    pub detail: String,
}

impl std::fmt::Display for BytecodeViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.rule, self.detail)
    }
}

/// Work counters reported by a successful [`verify_bytecode`] run.
#[derive(Clone, Copy, Debug, Default)]
pub struct BytecodeVerifySummary {
    /// Instructions checked.
    pub instrs: u64,
    /// `Alloc` descriptors validated against the GC object layout.
    pub allocs: u64,
}

fn violation(rule: &'static str, detail: String) -> BytecodeViolation {
    BytecodeViolation { rule, detail }
}

/// True for instructions that end a block (control never falls past
/// them); codegen guarantees every block terminates in one.
fn is_terminator(i: &Instr) -> bool {
    matches!(
        i,
        Instr::Jump { .. }
            | Instr::JumpReg { .. }
            | Instr::Switch { .. }
            | Instr::Halt { .. }
            | Instr::Uncaught { .. }
    )
}

/// Collects the integer- and float-register operands of an instruction.
fn operand_regs(i: &Instr, regs: &mut Vec<Reg>, fregs: &mut Vec<FReg>) {
    match i {
        Instr::Move { d, s } => regs.extend([*d, *s]),
        Instr::FMove { d, s } => fregs.extend([*d, *s]),
        Instr::LoadI { d, .. } => regs.push(*d),
        Instr::LoadF { d, .. } => fregs.push(*d),
        Instr::LoadStr { d, .. } | Instr::LoadLabel { d, .. } => regs.push(*d),
        Instr::Arith { d, a, b, .. } => regs.extend([*d, *a, *b]),
        Instr::FArith { d, a, b, .. } => fregs.extend([*d, *a, *b]),
        Instr::FUnary { d, a, .. } => fregs.extend([*d, *a]),
        Instr::Floor { d, a } => {
            regs.push(*d);
            fregs.push(*a);
        }
        Instr::IntToReal { d, a } => {
            fregs.push(*d);
            regs.push(*a);
        }
        Instr::Load { d, base, .. } => regs.extend([*d, *base]),
        Instr::Store { s, base, .. } | Instr::StoreWB { s, base, .. } => regs.extend([*s, *base]),
        Instr::FLoad { d, base, .. } => {
            fregs.push(*d);
            regs.push(*base);
        }
        Instr::FStore { s, base, .. } => {
            fregs.push(*s);
            regs.push(*base);
        }
        Instr::LoadIdx { d, base, idx } => regs.extend([*d, *base, *idx]),
        Instr::StoreIdx { s, base, idx } | Instr::StoreIdxWB { s, base, idx } => {
            regs.extend([*s, *base, *idx])
        }
        Instr::Alloc { d, words, flts, .. } => {
            regs.push(*d);
            regs.extend(words.iter().copied());
            fregs.extend(flts.iter().copied());
        }
        Instr::AllocArr { d, len, init } => regs.extend([*d, *len, *init]),
        Instr::ArrLen { d, a } => regs.extend([*d, *a]),
        Instr::FBox { d, s } => {
            regs.push(*d);
            fregs.push(*s);
        }
        Instr::FUnbox { d, s } => {
            fregs.push(*d);
            regs.push(*s);
        }
        Instr::Branch { a, b, .. } => regs.extend([*a, *b]),
        Instr::FBranch { a, b, .. } => fregs.extend([*a, *b]),
        Instr::SBranch { a, b, .. } | Instr::PolyEqBranch { a, b, .. } => regs.extend([*a, *b]),
        Instr::Switch { r, .. } => regs.push(*r),
        Instr::Jump { .. } => {}
        Instr::JumpReg { r } => regs.push(*r),
        Instr::Rt { op, d, a, b, fa } => {
            use crate::isa::RtOp;
            regs.push(*d);
            match op {
                RtOp::StrCat | RtOp::StrSub => regs.extend([*a, *b]),
                RtOp::StrSize | RtOp::IntToString => regs.push(*a),
                RtOp::RealToString => fregs.push(*fa),
            }
        }
        Instr::GetHdlr { d } => regs.push(*d),
        Instr::SetHdlr { s } | Instr::Print { s } | Instr::Halt { s } | Instr::Uncaught { s } => {
            regs.push(*s)
        }
    }
}

/// The intra-block jump targets an instruction may transfer to (also
/// used by the threaded pre-decoder to keep branch targets on record
/// boundaries).
pub(crate) fn branch_targets(i: &Instr, targets: &mut Vec<u32>) {
    match i {
        Instr::Branch { target, .. }
        | Instr::FBranch { target, .. }
        | Instr::SBranch { target, .. }
        | Instr::PolyEqBranch { target, .. } => targets.push(*target),
        Instr::Switch { table, default, .. } => {
            targets.extend(table.iter().copied());
            targets.push(*default);
        }
        _ => {}
    }
}

fn check_instr(
    block_ix: usize,
    pc: usize,
    ins: &Instr,
    block_len: usize,
    n_blocks: usize,
    pool_len: usize,
    sum: &mut BytecodeVerifySummary,
) -> Result<(), BytecodeViolation> {
    let cite = || format!("L{block_ix} @{pc}: {ins}");

    let mut regs = Vec::new();
    let mut fregs = Vec::new();
    operand_regs(ins, &mut regs, &mut fregs);
    if let Some(r) = regs.iter().find(|&&r| r >= MAX_REGS) {
        return Err(violation(
            "reg-range",
            format!(
                "register r{r} out of range (max {}) at {}",
                MAX_REGS - 1,
                cite()
            ),
        ));
    }
    if let Some(f) = fregs.iter().find(|&&f| f >= MAX_REGS) {
        return Err(violation(
            "reg-range",
            format!(
                "float register f{f} out of range (max {}) at {}",
                MAX_REGS - 1,
                cite()
            ),
        ));
    }

    let mut targets = Vec::new();
    branch_targets(ins, &mut targets);
    if let Some(t) = targets.iter().find(|&&t| t as usize >= block_len) {
        return Err(violation(
            "branch-target",
            format!(
                "branch target @{t} outside block of {block_len} instructions at {}",
                cite()
            ),
        ));
    }

    match ins {
        Instr::Jump { label } | Instr::LoadLabel { label, .. } if *label as usize >= n_blocks => {
            return Err(violation(
                "jump-range",
                format!(
                    "label L{label} outside program of {n_blocks} blocks at {}",
                    cite()
                ),
            ));
        }
        Instr::LoadStr { pool, .. } if *pool as usize >= pool_len => {
            return Err(violation(
                "pool-range",
                format!(
                    "string pool index {pool} outside pool of {pool_len} entries at {}",
                    cite()
                ),
            ));
        }
        Instr::Alloc {
            kind, words, flts, ..
        } => {
            sum.allocs += 1;
            let obj_kind = match kind {
                AllocKind::Record => ObjKind::Record,
                AllocKind::Ref => ObjKind::Ref,
            };
            if *kind == AllocKind::Ref && (words.len() != 1 || !flts.is_empty()) {
                return Err(violation(
                    "ref-shape",
                    format!(
                        "ref cell allocated with {} scanned / {} raw fields at {}",
                        words.len(),
                        flts.len(),
                        cite()
                    ),
                ));
            }
            // Raw float fields occupy two words each, exactly as the
            // interpreter will build the descriptor.
            let nscan = words.len() as u64;
            let nraw = 2 * flts.len() as u64;
            if nscan > MAX_SCAN_FIELDS as u64 || nraw > MAX_RAW_WORDS as u64 {
                return Err(violation(
                    "alloc-descriptor",
                    format!(
                        "object layout ({nscan} scanned, {nraw} raw) exceeds descriptor \
                         capacity ({MAX_SCAN_FIELDS} scanned, {MAX_RAW_WORDS} raw) at {}",
                        cite()
                    ),
                ));
            }
            let desc = descriptor(obj_kind, nscan as u32, nraw as u32);
            if decode(desc) != (obj_kind as u32, nscan as u32, nraw as u32) {
                return Err(violation(
                    "alloc-descriptor",
                    format!("descriptor round-trip failed at {}", cite()),
                ));
            }
        }
        _ => {}
    }
    sum.instrs += 1;
    Ok(())
}

fn check_block(
    block_ix: usize,
    b: &CodeBlock,
    n_blocks: usize,
    pool_len: usize,
    sum: &mut BytecodeVerifySummary,
) -> Result<(), BytecodeViolation> {
    let Some(last) = b.instrs.last() else {
        return Err(violation(
            "block-terminator",
            format!("block L{block_ix} <{}> is empty", b.name),
        ));
    };
    if !is_terminator(last) {
        return Err(violation(
            "block-terminator",
            format!(
                "block L{block_ix} <{}> ends in non-terminator L{block_ix} @{}: {last}",
                b.name,
                b.instrs.len() - 1
            ),
        ));
    }
    for (pc, ins) in b.instrs.iter().enumerate() {
        check_instr(block_ix, pc, ins, b.instrs.len(), n_blocks, pool_len, sum)?;
    }
    Ok(())
}

/// Verifies a machine program.
///
/// Returns work counters on success and the first [`BytecodeViolation`]
/// otherwise. Never mutates the program.
pub fn verify_bytecode(prog: &MachineProgram) -> Result<BytecodeVerifySummary, BytecodeViolation> {
    let mut sum = BytecodeVerifySummary::default();
    if prog.entry as usize >= prog.blocks.len() {
        return Err(violation(
            "entry-range",
            format!(
                "entry block {} outside program of {} blocks",
                prog.entry,
                prog.blocks.len()
            ),
        ));
    }
    for (ix, s) in prog.pool.iter().enumerate() {
        if s.len() > Heap::MAX_STRING_BYTES {
            return Err(violation(
                "pool-string-size",
                format!(
                    "string pool entry {ix} is {} bytes (max {})",
                    s.len(),
                    Heap::MAX_STRING_BYTES
                ),
            ));
        }
    }
    for (ix, b) in prog.blocks.iter().enumerate() {
        check_block(ix, b, prog.blocks.len(), prog.pool.len(), &mut sum)?;
    }
    Ok(sum)
}

/// Work counters reported by a successful [`verify_threaded`] run.
#[derive(Clone, Copy, Debug, Default)]
pub struct ThreadedVerifySummary {
    /// Threaded handler records checked.
    pub tinstrs: u64,
    /// Superinstruction (fused-pair) records among them.
    pub superinstructions: u64,
}

/// Verifies the pre-decoded threaded stream the [`Dispatch::Threaded`]
/// (see [`crate::vm::Dispatch`]) engine would execute for this program:
/// the pc coordinate maps must be mutually consistent, every threaded
/// branch target must stay inside the stream, every record must
/// round-trip (expand back to exactly the original instructions,
/// compared by disassembly), and the expanded operands must respect
/// register bounds. Pre-decodes internally, so a program that passes
/// here executes identically under both engines' *static* views.
pub fn verify_threaded(prog: &MachineProgram) -> Result<ThreadedVerifySummary, BytecodeViolation> {
    use crate::threaded::{expand, predecode, TInstr};
    let tp = predecode(prog);
    let mut sum = ThreadedVerifySummary::default();
    for (ix, (b, tb)) in prog.blocks.iter().zip(&tp.blocks).enumerate() {
        let n = b.instrs.len();
        if tb.pc_map.len() != n + 1
            || tb.tpc_to_pc.len() != tb.code.len() + 1
            || tb.pc_map[n] as usize != tb.code.len()
            || tb.tpc_to_pc[tb.code.len()] as usize != n
        {
            return Err(violation(
                "threaded-pc-map",
                format!(
                    "block L{ix}: coordinate maps sized {}/{} for {} instructions / {} records",
                    tb.pc_map.len(),
                    tb.tpc_to_pc.len(),
                    n,
                    tb.code.len()
                ),
            ));
        }
        for (rec, t) in tb.code.iter().enumerate() {
            let start = tb.tpc_to_pc[rec] as usize;
            if start >= n || tb.pc_map[start] as usize != rec {
                return Err(violation(
                    "threaded-pc-map",
                    format!(
                        "block L{ix}: record {rec} claims start pc {start} but pc_map disagrees"
                    ),
                ));
            }
            if let TInstr::Branch { t, .. }
            | TInstr::FBranch { t, .. }
            | TInstr::LoadIBranch { t, .. }
            | TInstr::LoadBranch { t, .. }
            | TInstr::ArithBranch { t, .. } = t
            {
                if *t as usize > tb.code.len() {
                    return Err(violation(
                        "threaded-target",
                        format!(
                            "block L{ix}: record {rec} branches to record {t} outside stream \
                             of {} records",
                            tb.code.len()
                        ),
                    ));
                }
            }
            match expand(t, tb) {
                None => {
                    let TInstr::Slow { pc } = t else {
                        unreachable!("only Slow records decline expansion")
                    };
                    if *pc as usize != start {
                        return Err(violation(
                            "threaded-round-trip",
                            format!(
                                "block L{ix}: slow record {rec} points at pc {pc}, \
                                 expected {start}"
                            ),
                        ));
                    }
                }
                Some(expansion) => {
                    if expansion.len() == 2 {
                        sum.superinstructions += 1;
                    }
                    for (k, e) in expansion.iter().enumerate() {
                        let Some(orig) = b.instrs.get(start + k) else {
                            return Err(violation(
                                "threaded-round-trip",
                                format!(
                                    "block L{ix}: record {rec} expands past the end of the \
                                     block at pc {}",
                                    start + k
                                ),
                            ));
                        };
                        if format!("{e}") != format!("{orig}") {
                            return Err(violation(
                                "threaded-round-trip",
                                format!(
                                    "L{ix} @{}: stream decodes to `{e}` but the program \
                                     has `{orig}`",
                                    start + k
                                ),
                            ));
                        }
                        let mut regs = Vec::new();
                        let mut fregs = Vec::new();
                        operand_regs(e, &mut regs, &mut fregs);
                        if let Some(r) = regs.iter().chain(fregs.iter()).find(|&&r| r >= MAX_REGS) {
                            return Err(violation(
                                "threaded-reg-range",
                                format!(
                                    "register r{r} out of range (max {}) at L{ix} @{}: {e}",
                                    MAX_REGS - 1,
                                    start + k
                                ),
                            ));
                        }
                    }
                }
            }
            sum.tinstrs += 1;
        }
    }
    Ok(sum)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_block(instrs: Vec<Instr>) -> MachineProgram {
        MachineProgram {
            blocks: vec![CodeBlock {
                name: "main".into(),
                instrs,
            }],
            entry: 0,
            pool: Vec::new(),
        }
    }

    #[test]
    fn accepts_minimal_program() {
        let p = one_block(vec![Instr::LoadI { d: 1, imm: 42 }, Instr::Halt { s: 1 }]);
        let sum = verify_bytecode(&p).expect("well-formed");
        assert_eq!(sum.instrs, 2);
    }

    #[test]
    fn rejects_branch_past_block_end() {
        let p = one_block(vec![
            Instr::Branch {
                op: crate::isa::BrOp::Lt,
                a: 1,
                b: 2,
                target: 9,
            },
            Instr::Halt { s: 1 },
        ]);
        let v = verify_bytecode(&p).unwrap_err();
        assert_eq!(v.rule, "branch-target");
        assert!(v.detail.contains("L0 @0"), "{}", v.detail);
    }

    #[test]
    fn rejects_register_out_of_range() {
        let p = one_block(vec![Instr::LoadI { d: 200, imm: 1 }, Instr::Halt { s: 1 }]);
        assert_eq!(verify_bytecode(&p).unwrap_err().rule, "reg-range");
    }

    #[test]
    fn rejects_missing_terminator() {
        let p = one_block(vec![Instr::LoadI { d: 1, imm: 1 }]);
        assert_eq!(verify_bytecode(&p).unwrap_err().rule, "block-terminator");
    }

    #[test]
    fn rejects_ref_with_wrong_shape() {
        let p = one_block(vec![
            Instr::Alloc {
                d: 2,
                kind: AllocKind::Ref,
                words: vec![1, 1],
                flts: vec![],
            },
            Instr::Halt { s: 2 },
        ]);
        assert_eq!(verify_bytecode(&p).unwrap_err().rule, "ref-shape");
    }

    #[test]
    fn rejects_oversized_alloc_descriptor() {
        let p = one_block(vec![
            Instr::Alloc {
                d: 2,
                kind: AllocKind::Record,
                words: vec![1; MAX_SCAN_FIELDS as usize + 1],
                flts: vec![],
            },
            Instr::Halt { s: 2 },
        ]);
        assert_eq!(verify_bytecode(&p).unwrap_err().rule, "alloc-descriptor");
    }

    #[test]
    fn rejects_bad_entry() {
        let mut p = one_block(vec![Instr::Halt { s: 1 }]);
        p.entry = 5;
        assert_eq!(verify_bytecode(&p).unwrap_err().rule, "entry-range");
    }
}
