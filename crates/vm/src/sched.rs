//! Multi-tenant VM scheduling: time-slicing N concurrent
//! [`VmInstance`]s round-robin on a cycle quantum.
//!
//! Each tenant is an independent program + [`VmConfig`] pair with its
//! own heap — the per-tenant `tenured_words` ceiling *is* the heap
//! quota, and `max_cycles` is the fuel quota. The scheduler's isolation
//! guarantee is the whole point: a tenant that exhausts its quota,
//! faults, or runs out of fuel degrades **alone**
//! ([`TenantOutcome::HeapExhausted`] / [`TenantOutcome::Fault`] /
//! [`TenantOutcome::OutOfFuel`]) while every other tenant runs to
//! completion with exactly the results it would have produced running
//! solo — tenant heaps share nothing, and preemption sits between
//! instructions, so interleaving cannot change per-tenant behavior.
//!
//! Fairness is bounded, not merely statistical: in every round each
//! runnable tenant advances at most `quantum` cycles plus one bounded
//! overshoot (the cycle cost of the single instruction — or fused
//! instruction pair, for [`crate::vm::Dispatch::Threaded`] tenants —
//! or GC pause straddling the quantum edge). The largest observed overshoot is
//! reported in [`SchedStats::max_overshoot`]; with a GC pause budget
//! set ([`VmConfig::max_pause_cycles`]) the overshoot is itself
//! bounded by the pause budget plus the costliest single instruction.

use crate::isa::MachineProgram;
use crate::vm::{DispatchStats, Outcome, RunStats, VmConfig, VmInstance, VmResult};

/// How a tenant's run ended, from the scheduler's governance
/// perspective. [`VmResult::Value`] and [`VmResult::Uncaught`] are both
/// [`TenantOutcome::Done`]: an uncaught ML exception is a normal,
/// well-defined program result, not a governance event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TenantOutcome {
    /// The program ran to completion (normal halt or uncaught ML
    /// exception).
    Done,
    /// The tenant exhausted its heap quota.
    HeapExhausted,
    /// The tenant tripped a contained memory-safety / control-flow
    /// fault.
    Fault,
    /// The tenant exhausted its cycle (fuel) quota.
    OutOfFuel,
}

impl TenantOutcome {
    /// Classifies a final [`VmResult`].
    pub fn of(result: &VmResult) -> TenantOutcome {
        match result {
            VmResult::Value(_) | VmResult::Uncaught(_) => TenantOutcome::Done,
            VmResult::HeapExhausted => TenantOutcome::HeapExhausted,
            VmResult::Fault(_) => TenantOutcome::Fault,
            VmResult::OutOfFuel => TenantOutcome::OutOfFuel,
        }
    }
}

/// One tenant's final report: governance outcome plus the full
/// [`Outcome`] fields it would have produced running solo.
#[derive(Clone, Debug)]
pub struct TenantReport {
    /// Governance classification of `result`.
    pub outcome: TenantOutcome,
    /// The tenant's final result, byte-identical to a solo run.
    pub result: VmResult,
    /// Everything the tenant printed.
    pub output: String,
    /// The tenant's own counters (per-tenant `RunStats`).
    pub stats: RunStats,
    /// The tenant's execution engine and pre-decode facts.
    pub dispatch: DispatchStats,
    /// Scheduler slices this tenant consumed.
    pub slices: u64,
}

/// Scheduler-level fairness and outcome counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct SchedStats {
    /// The cycle quantum tenants were sliced on.
    pub quantum: u64,
    /// Number of tenants scheduled.
    pub tenants: u64,
    /// Round-robin passes over the runnable set.
    pub rounds: u64,
    /// Total slices handed out.
    pub slices: u64,
    /// Slices that ended by preemption (quantum expiry) rather than by
    /// the tenant finishing.
    pub preemptions: u64,
    /// Largest single-slice overshoot past the quantum, in cycles: the
    /// cost of the instruction or GC pause straddling the quantum edge.
    pub max_overshoot: u64,
    /// Tenants that finished [`TenantOutcome::Done`].
    pub done: u64,
    /// Tenants that ended [`TenantOutcome::HeapExhausted`].
    pub heap_exhausted: u64,
    /// Tenants that ended [`TenantOutcome::Fault`].
    pub fault: u64,
    /// Tenants that ended [`TenantOutcome::OutOfFuel`].
    pub out_of_fuel: u64,
}

/// A round-robin scheduler over N tenant VM instances.
///
/// ```
/// # use sml_vm::{VmConfig, VmScheduler, TenantOutcome};
/// # fn demo(prog: &sml_vm::MachineProgram) {
/// let mut sched = VmScheduler::new(10_000);
/// sched.spawn(prog, &VmConfig::default());
/// sched.spawn(prog, &VmConfig { tenured_words: 4096, ..VmConfig::default() });
/// let (reports, stats) = sched.run_all();
/// assert_eq!(reports.len(), 2);
/// assert_eq!(stats.done + stats.heap_exhausted, 2);
/// # }
/// ```
pub struct VmScheduler<'p> {
    quantum: u64,
    tenants: Vec<VmInstance<'p>>,
    slices: Vec<u64>,
}

impl<'p> VmScheduler<'p> {
    /// Creates a scheduler with the given cycle quantum per slice (at
    /// least 1; 0 is treated as 1).
    pub fn new(quantum: u64) -> VmScheduler<'p> {
        VmScheduler {
            quantum: quantum.max(1),
            tenants: Vec::new(),
            slices: Vec::new(),
        }
    }

    /// Adds a tenant: a program plus its own config (heap quota, fuel
    /// quota, GC mode, pause budget, fault injection). Returns the
    /// tenant's index, which is also its position in the
    /// [`VmScheduler::run_all`] report vector.
    pub fn spawn(&mut self, prog: &'p MachineProgram, cfg: &VmConfig) -> usize {
        self.tenants.push(VmInstance::new(prog, cfg));
        self.slices.push(0);
        self.tenants.len() - 1
    }

    /// Number of tenants spawned.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// True when no tenants have been spawned.
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    /// Runs every tenant to completion, round-robin on the quantum, and
    /// returns the per-tenant reports (indexed by spawn order) plus the
    /// scheduler's fairness counters. Deterministic: the schedule is a
    /// pure function of the tenant set and the quantum.
    pub fn run_all(mut self) -> (Vec<TenantReport>, SchedStats) {
        let mut stats = SchedStats {
            quantum: self.quantum,
            tenants: self.tenants.len() as u64,
            ..SchedStats::default()
        };
        loop {
            let mut ran_any = false;
            for (i, vm) in self.tenants.iter_mut().enumerate() {
                if vm.finished() {
                    continue;
                }
                ran_any = true;
                let before = vm.stats().cycles;
                let finished = vm.run_slice(self.quantum);
                let used = vm.stats().cycles - before;
                self.slices[i] += 1;
                stats.slices += 1;
                if !finished {
                    stats.preemptions += 1;
                }
                stats.max_overshoot = stats.max_overshoot.max(used.saturating_sub(self.quantum));
            }
            if !ran_any {
                break;
            }
            stats.rounds += 1;
        }
        let slices = std::mem::take(&mut self.slices);
        let reports: Vec<TenantReport> = self
            .tenants
            .into_iter()
            .zip(slices)
            .map(|(vm, slices)| {
                let Outcome {
                    result,
                    stats,
                    output,
                    dispatch,
                } = vm.into_outcome();
                TenantReport {
                    outcome: TenantOutcome::of(&result),
                    result,
                    output,
                    stats,
                    dispatch,
                    slices,
                }
            })
            .collect();
        for r in &reports {
            match r.outcome {
                TenantOutcome::Done => stats.done += 1,
                TenantOutcome::HeapExhausted => stats.heap_exhausted += 1,
                TenantOutcome::Fault => stats.fault += 1,
                TenantOutcome::OutOfFuel => stats.out_of_fuel += 1,
            }
        }
        (reports, stats)
    }
}
