//! Policy-driven multi-tenant VM scheduling: time-slicing N concurrent
//! [`VmInstance`]s on a cycle quantum under a pluggable [`SchedPolicy`].
//!
//! Each tenant is a [`TenantSpec`]: a shared program handle
//! (`Arc<MachineProgram>`, so N instances of one program pay one
//! compilation), its own [`VmConfig`] (the per-tenant `tenured_words`
//! ceiling *is* the heap quota, and `max_cycles` is the fuel quota),
//! and scheduling attributes (priority, deadline, an optional
//! per-tenant quantum). The scheduler's isolation guarantee is the
//! whole point: a tenant that exhausts its quota, faults, or runs out
//! of fuel degrades **alone** ([`TenantOutcome::HeapExhausted`] /
//! [`TenantOutcome::Fault`] / [`TenantOutcome::OutOfFuel`]) while every
//! other tenant runs to completion with exactly the results it would
//! have produced running solo — tenant heaps share nothing, and
//! preemption sits between instructions, so interleaving cannot change
//! per-tenant behavior. This holds under every policy and both
//! dispatch engines.
//!
//! # Policies
//!
//! * [`SchedPolicy::RoundRobin`] — each pass over the runnable set
//!   gives every tenant one slice, in admission order. Byte-identical
//!   to the pre-policy scheduler's schedule.
//! * [`SchedPolicy::Priority`] — strict priority with
//!   starvation-bounded aging: a runnable tenant is bypassed by
//!   higher-priority work for at most `priority_gap ×`
//!   [`SchedulerBuilder::aging_slices`] slices before its aged key wins.
//! * [`SchedPolicy::Deadline`] — earliest-deadline-first over each
//!   tenant's absolute deadline (`deadline_cycles` on the machine's
//!   deterministic cycle clock). A tenant that completes normally but
//!   past its deadline reports [`TenantOutcome::DeadlineMissed`]; its
//!   result, output, and stats are still solo-identical. Deadline
//!   misses are judged under *every* policy (that is what makes
//!   policies comparable); only EDF orders by them.
//!
//! The ready queue is a binary heap keyed by policy, so picking the
//! next tenant costs O(log n) per slice instead of the former O(n)
//! scan per round — the difference between 16 tenants and a
//! thousand-tenant storm. Schedules remain deterministic: keys are
//! pure functions of (policy, admission order, slices taken), never of
//! wall-clock time.
//!
//! # Admission control
//!
//! [`SchedulerBuilder::heap_capacity_words`] /
//! [`SchedulerBuilder::fuel_capacity_cycles`] cap the machine's
//! aggregate committed quotas. [`VmScheduler::admit`] rejects — with a
//! typed [`AdmissionError`], never a panic — any spec whose quota
//! would oversubscribe the remaining capacity.
//!
//! # Fairness
//!
//! Fairness is bounded, not merely statistical: each slice advances
//! one tenant at most its quantum plus one bounded overshoot (the
//! cycle cost of the single instruction — or fused instruction pair,
//! for [`crate::vm::Dispatch::Threaded`] tenants — or GC pause
//! straddling the quantum edge). Overshoot is accounted per tenant
//! against *that tenant's* quantum ([`TenantReport::max_overshoot`]);
//! the largest across tenants is [`SchedStats::max_overshoot`]. With a
//! GC pause budget set ([`VmConfig::max_pause_cycles`]) the overshoot
//! is itself bounded by the pause budget plus the costliest single
//! instruction.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;

use crate::isa::MachineProgram;
use crate::vm::{DispatchStats, Outcome, RunStats, VmConfig, VmInstance, VmResult};

/// The scheduling discipline of a [`VmScheduler`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SchedPolicy {
    /// One slice per runnable tenant per pass, in admission order.
    #[default]
    RoundRobin,
    /// Strict priority (higher [`TenantSpec::priority`] first) with
    /// starvation-bounded aging.
    Priority,
    /// Earliest-deadline-first over [`TenantSpec::deadline_cycles`];
    /// tenants without a deadline run after every deadline-bearing
    /// tenant.
    Deadline,
}

impl SchedPolicy {
    /// Stable lower-case name, also accepted by the `FromStr` parser
    /// and emitted in the `sched` metrics object.
    pub fn name(self) -> &'static str {
        match self {
            SchedPolicy::RoundRobin => "round-robin",
            SchedPolicy::Priority => "priority",
            SchedPolicy::Deadline => "deadline",
        }
    }
}

impl std::str::FromStr for SchedPolicy {
    type Err = String;
    fn from_str(s: &str) -> Result<SchedPolicy, String> {
        match s {
            "round-robin" | "rr" => Ok(SchedPolicy::RoundRobin),
            "priority" => Ok(SchedPolicy::Priority),
            "deadline" | "edf" => Ok(SchedPolicy::Deadline),
            other => Err(format!(
                "unknown scheduling policy `{other}` (expected round-robin|priority|deadline)"
            )),
        }
    }
}

/// Everything the scheduler needs to know about one tenant, as a
/// single owned value — per-tenant configuration stops being
/// positional `spawn` arguments.
///
/// The program handle is shared: spawning N tenants of one compiled
/// program clones an `Arc`, not the code.
#[derive(Clone)]
pub struct TenantSpec {
    /// The compiled program (shared code; each tenant gets a private
    /// heap and, under threaded dispatch, its own pre-decoded stream).
    pub program: Arc<MachineProgram>,
    /// The tenant's own VM config: heap quota (`tenured_words`), fuel
    /// quota (`max_cycles`), GC mode, pause budget, dispatch engine,
    /// fault injection.
    pub vm_config: VmConfig,
    /// Scheduling priority ([`SchedPolicy::Priority`]; higher runs
    /// first). Ignored by the other policies.
    pub priority: u32,
    /// Relative deadline in machine cycles from admission. Judged
    /// under every policy; orders the ready queue under
    /// [`SchedPolicy::Deadline`].
    pub deadline_cycles: Option<u64>,
    /// Per-tenant quantum override; `None` uses the scheduler's
    /// quantum. Overshoot accounting is always against the tenant's
    /// effective quantum.
    pub quantum_cycles: Option<u64>,
}

impl TenantSpec {
    /// A spec with default scheduling attributes (priority 0, no
    /// deadline, the scheduler's quantum).
    pub fn new(program: Arc<MachineProgram>, vm_config: &VmConfig) -> TenantSpec {
        TenantSpec {
            program,
            vm_config: *vm_config,
            priority: 0,
            deadline_cycles: None,
            quantum_cycles: None,
        }
    }

    /// Sets the scheduling priority (higher runs first under
    /// [`SchedPolicy::Priority`]).
    pub fn priority(mut self, priority: u32) -> TenantSpec {
        self.priority = priority;
        self
    }

    /// Sets the relative deadline, in machine cycles from admission.
    pub fn deadline_cycles(mut self, cycles: u64) -> TenantSpec {
        self.deadline_cycles = Some(cycles);
        self
    }

    /// Overrides the scheduler's quantum for this tenant.
    pub fn quantum_cycles(mut self, cycles: u64) -> TenantSpec {
        self.quantum_cycles = Some(cycles);
        self
    }
}

/// Why [`SchedulerBuilder::build`] rejected a configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SchedConfigError {
    /// A knob that must be at least 1 was 0.
    MustBeNonzero {
        /// Which builder field was zero.
        field: &'static str,
    },
}

impl std::fmt::Display for SchedConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedConfigError::MustBeNonzero { field } => {
                write!(f, "scheduler config: `{field}` must be nonzero")
            }
        }
    }
}

impl std::error::Error for SchedConfigError {}

/// Why [`VmScheduler::admit`] rejected a [`TenantSpec`]: its quota
/// would oversubscribe the machine capacity. Admission never panics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AdmissionError {
    /// The spec's heap quota (`tenured_words`) does not fit the
    /// remaining heap capacity.
    HeapOversubscribed {
        /// Heap words the spec asked for.
        requested: u64,
        /// Heap words already committed to admitted tenants.
        committed: u64,
        /// The machine's total heap capacity.
        capacity: u64,
    },
    /// The spec's fuel quota (`max_cycles`) does not fit the remaining
    /// fuel capacity.
    FuelOversubscribed {
        /// Fuel cycles the spec asked for.
        requested: u64,
        /// Fuel cycles already committed to admitted tenants.
        committed: u64,
        /// The machine's total fuel capacity.
        capacity: u64,
    },
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::HeapOversubscribed {
                requested,
                committed,
                capacity,
            } => write!(
                f,
                "admission rejected: heap quota of {requested} words oversubscribes \
                 machine capacity ({committed} of {capacity} already committed)"
            ),
            AdmissionError::FuelOversubscribed {
                requested,
                committed,
                capacity,
            } => write!(
                f,
                "admission rejected: fuel quota of {requested} cycles oversubscribes \
                 machine capacity ({committed} of {capacity} already committed)"
            ),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Builds a [`VmScheduler`], validating knobs the same way
/// `SessionBuilder` does: typed errors, no panics, no silent clamping.
///
/// ```
/// use sml_vm::{SchedPolicy, SchedulerBuilder};
/// let sched = SchedulerBuilder::new()
///     .quantum(5_000)
///     .policy(SchedPolicy::Deadline)
///     .heap_capacity_words(1 << 24)
///     .build()
///     .unwrap();
/// assert!(sched.is_empty());
/// assert!(SchedulerBuilder::new().quantum(0).build().is_err());
/// ```
#[derive(Clone, Debug)]
pub struct SchedulerBuilder {
    quantum: u64,
    policy: SchedPolicy,
    heap_capacity_words: Option<u64>,
    fuel_capacity_cycles: Option<u64>,
    aging_slices: u64,
}

impl Default for SchedulerBuilder {
    fn default() -> SchedulerBuilder {
        SchedulerBuilder::new()
    }
}

impl SchedulerBuilder {
    /// Defaults: quantum 10 000 cycles, [`SchedPolicy::RoundRobin`],
    /// unlimited capacity, aging factor 1024 slices per priority step.
    pub fn new() -> SchedulerBuilder {
        SchedulerBuilder {
            quantum: 10_000,
            policy: SchedPolicy::RoundRobin,
            heap_capacity_words: None,
            fuel_capacity_cycles: None,
            aging_slices: 1024,
        }
    }

    /// Default cycle quantum per slice (a [`TenantSpec::quantum_cycles`]
    /// overrides it per tenant). Must be nonzero.
    pub fn quantum(mut self, quantum: u64) -> SchedulerBuilder {
        self.quantum = quantum;
        self
    }

    /// The scheduling discipline.
    pub fn policy(mut self, policy: SchedPolicy) -> SchedulerBuilder {
        self.policy = policy;
        self
    }

    /// Caps the sum of admitted tenants' heap quotas
    /// (`tenured_words`). Unlimited when unset. Must be nonzero.
    pub fn heap_capacity_words(mut self, words: u64) -> SchedulerBuilder {
        self.heap_capacity_words = Some(words);
        self
    }

    /// Caps the sum of admitted tenants' fuel quotas (`max_cycles`).
    /// Unlimited when unset. Must be nonzero.
    pub fn fuel_capacity_cycles(mut self, cycles: u64) -> SchedulerBuilder {
        self.fuel_capacity_cycles = Some(cycles);
        self
    }

    /// Starvation bound for [`SchedPolicy::Priority`]: a runnable
    /// tenant yields to each step of higher priority for at most this
    /// many slices. Must be nonzero (aging is what bounds starvation).
    pub fn aging_slices(mut self, slices: u64) -> SchedulerBuilder {
        self.aging_slices = slices;
        self
    }

    /// Validates and builds the scheduler.
    pub fn build(self) -> Result<VmScheduler, SchedConfigError> {
        if self.quantum == 0 {
            return Err(SchedConfigError::MustBeNonzero { field: "quantum" });
        }
        if self.aging_slices == 0 {
            return Err(SchedConfigError::MustBeNonzero {
                field: "aging_slices",
            });
        }
        if self.heap_capacity_words == Some(0) {
            return Err(SchedConfigError::MustBeNonzero {
                field: "heap_capacity_words",
            });
        }
        if self.fuel_capacity_cycles == Some(0) {
            return Err(SchedConfigError::MustBeNonzero {
                field: "fuel_capacity_cycles",
            });
        }
        Ok(VmScheduler {
            quantum: self.quantum,
            policy: self.policy,
            heap_capacity_words: self.heap_capacity_words,
            fuel_capacity_cycles: self.fuel_capacity_cycles,
            aging_slices: self.aging_slices,
            committed_heap_words: 0,
            committed_fuel_cycles: 0,
            rejected: 0,
            tenants: Vec::new(),
        })
    }
}

/// How a tenant's run ended, from the scheduler's governance
/// perspective. [`VmResult::Value`] and [`VmResult::Uncaught`] are both
/// [`TenantOutcome::Done`]: an uncaught ML exception is a normal,
/// well-defined program result, not a governance event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TenantOutcome {
    /// The program ran to completion (normal halt or uncaught ML
    /// exception).
    Done,
    /// The tenant exhausted its heap quota.
    HeapExhausted,
    /// The tenant tripped a contained memory-safety / control-flow
    /// fault.
    Fault,
    /// The tenant exhausted its cycle (fuel) quota.
    OutOfFuel,
    /// The tenant ran to completion, but the machine's cycle clock had
    /// passed its [`TenantSpec::deadline_cycles`]. Replaces only
    /// [`TenantOutcome::Done`] — resource outcomes take precedence —
    /// and never changes the tenant's result, output, or stats.
    DeadlineMissed,
}

impl TenantOutcome {
    /// Classifies a final [`VmResult`]. Deadline misses are a
    /// scheduler-clock judgment, not a `VmResult`, so this never
    /// returns [`TenantOutcome::DeadlineMissed`].
    pub fn of(result: &VmResult) -> TenantOutcome {
        match result {
            VmResult::Value(_) | VmResult::Uncaught(_) => TenantOutcome::Done,
            VmResult::HeapExhausted => TenantOutcome::HeapExhausted,
            VmResult::Fault(_) => TenantOutcome::Fault,
            VmResult::OutOfFuel => TenantOutcome::OutOfFuel,
        }
    }
}

/// One tenant's final report: governance outcome plus the full
/// [`Outcome`] fields it would have produced running solo.
#[derive(Clone, Debug)]
pub struct TenantReport {
    /// Governance classification of `result` (plus the deadline
    /// judgment — see [`TenantOutcome::DeadlineMissed`]).
    pub outcome: TenantOutcome,
    /// The tenant's final result, byte-identical to a solo run.
    pub result: VmResult,
    /// Everything the tenant printed.
    pub output: String,
    /// The tenant's own counters (per-tenant `RunStats`).
    pub stats: RunStats,
    /// The tenant's execution engine and pre-decode facts.
    pub dispatch: DispatchStats,
    /// Scheduler slices this tenant consumed.
    pub slices: u64,
    /// Largest single-slice overshoot past *this tenant's* quantum.
    pub max_overshoot: u64,
    /// Global slice index at which the tenant first ran (`None` if it
    /// finished before ever being scheduled, e.g. a pre-run fault).
    /// The starvation bound is an assertion about this number.
    pub first_slice: Option<u64>,
}

/// Scheduler-level fairness, admission, and outcome counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct SchedStats {
    /// The scheduling discipline that produced this schedule.
    pub policy: SchedPolicy,
    /// The default cycle quantum tenants were sliced on.
    pub quantum: u64,
    /// Number of tenants admitted and scheduled.
    pub tenants: u64,
    /// Specs rejected by admission control.
    pub rejected: u64,
    /// Scheduling passes: the maximum number of slices any one tenant
    /// consumed (for round-robin, exactly the passes over the runnable
    /// set).
    pub rounds: u64,
    /// Total slices handed out.
    pub slices: u64,
    /// Slices that ended by preemption (quantum expiry) rather than by
    /// the tenant finishing.
    pub preemptions: u64,
    /// Largest single-slice overshoot past the preempted tenant's own
    /// quantum, in cycles: the cost of the instruction or GC pause
    /// straddling the quantum edge.
    pub max_overshoot: u64,
    /// Peak depth of the ready queue (bounds the O(log n) heap cost).
    pub ready_peak: u64,
    /// Tenants that finished [`TenantOutcome::Done`] (in time, when
    /// they carried a deadline). The five outcome tallies partition
    /// `tenants`.
    pub done: u64,
    /// Tenants that ended [`TenantOutcome::HeapExhausted`].
    pub heap_exhausted: u64,
    /// Tenants that ended [`TenantOutcome::Fault`].
    pub fault: u64,
    /// Tenants that ended [`TenantOutcome::OutOfFuel`].
    pub out_of_fuel: u64,
    /// Tenants that completed past their deadline
    /// ([`TenantOutcome::DeadlineMissed`]).
    pub deadline_missed: u64,
}

/// One admitted tenant: the live instance plus its scheduling
/// attributes and per-tenant counters.
struct Tenant {
    vm: VmInstance<'static>,
    quantum: u64,
    priority: u32,
    /// Absolute deadline on the machine cycle clock.
    deadline: Option<u64>,
    slices: u64,
    max_overshoot: u64,
    first_slice: Option<u64>,
    /// Machine clock when the tenant's final slice ended.
    finished_at: u64,
}

/// Min-ordered ready-queue entry ([`BinaryHeap`] is a max-heap, so the
/// `Ord` impl is reversed). Keys are policy-specific; ties break on
/// admission index, keeping every schedule deterministic.
#[derive(PartialEq, Eq)]
struct Ready {
    key: u64,
    idx: usize,
}

impl Ord for Ready {
    fn cmp(&self, other: &Ready) -> Ordering {
        other
            .key
            .cmp(&self.key)
            .then_with(|| other.idx.cmp(&self.idx))
    }
}

impl PartialOrd for Ready {
    fn partial_cmp(&self, other: &Ready) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A policy-driven scheduler over N tenant VM instances.
///
/// ```
/// # use std::sync::Arc;
/// # use sml_vm::{SchedulerBuilder, TenantSpec, TenantOutcome, VmConfig};
/// # fn demo(prog: Arc<sml_vm::MachineProgram>) {
/// let mut sched = SchedulerBuilder::new().quantum(10_000).build().unwrap();
/// sched.admit(TenantSpec::new(prog.clone(), &VmConfig::default())).unwrap();
/// sched.admit(TenantSpec::new(prog, &VmConfig { tenured_words: 4096, ..VmConfig::default() })).unwrap();
/// let (reports, stats) = sched.run_all();
/// assert_eq!(reports.len(), 2);
/// assert_eq!(stats.done + stats.heap_exhausted, 2);
/// # }
/// ```
pub struct VmScheduler {
    quantum: u64,
    policy: SchedPolicy,
    heap_capacity_words: Option<u64>,
    fuel_capacity_cycles: Option<u64>,
    aging_slices: u64,
    committed_heap_words: u64,
    committed_fuel_cycles: u64,
    rejected: u64,
    tenants: Vec<Tenant>,
}

impl VmScheduler {
    /// Creates a round-robin scheduler with the given cycle quantum
    /// per slice (at least 1; 0 is treated as 1).
    #[deprecated(note = "use `SchedulerBuilder` (policy, capacity, validated knobs) instead")]
    pub fn new(quantum: u64) -> VmScheduler {
        SchedulerBuilder::new()
            .quantum(quantum.max(1))
            .build()
            .expect("a nonzero quantum with unlimited capacity always validates")
    }

    /// Adds a tenant by cloning the program into a shared handle.
    #[deprecated(
        note = "use `VmScheduler::admit` with a `TenantSpec` (shares the program \
                         instead of cloning it, and reports admission errors)"
    )]
    pub fn spawn(&mut self, prog: &MachineProgram, cfg: &VmConfig) -> usize {
        self.admit(TenantSpec::new(Arc::new(prog.clone()), cfg))
            .expect("unlimited capacity admits every tenant")
    }

    /// Admits a tenant, or rejects it (typed error, never a panic) if
    /// its heap/fuel quota would oversubscribe the machine capacity.
    /// Returns the tenant's index, which is also its position in the
    /// [`VmScheduler::run_all`] report vector.
    pub fn admit(&mut self, spec: TenantSpec) -> Result<usize, AdmissionError> {
        let heap_req = spec.vm_config.tenured_words as u64;
        let fuel_req = spec.vm_config.max_cycles;
        if let Some(cap) = self.heap_capacity_words {
            if self.committed_heap_words.saturating_add(heap_req) > cap {
                self.rejected += 1;
                return Err(AdmissionError::HeapOversubscribed {
                    requested: heap_req,
                    committed: self.committed_heap_words,
                    capacity: cap,
                });
            }
        }
        if let Some(cap) = self.fuel_capacity_cycles {
            if self.committed_fuel_cycles.saturating_add(fuel_req) > cap {
                self.rejected += 1;
                return Err(AdmissionError::FuelOversubscribed {
                    requested: fuel_req,
                    committed: self.committed_fuel_cycles,
                    capacity: cap,
                });
            }
        }
        self.committed_heap_words = self.committed_heap_words.saturating_add(heap_req);
        self.committed_fuel_cycles = self.committed_fuel_cycles.saturating_add(fuel_req);
        self.tenants.push(Tenant {
            vm: VmInstance::shared(spec.program, &spec.vm_config),
            quantum: spec.quantum_cycles.unwrap_or(self.quantum).max(1),
            priority: spec.priority,
            deadline: spec.deadline_cycles,
            slices: 0,
            max_overshoot: 0,
            first_slice: None,
            finished_at: 0,
        });
        Ok(self.tenants.len() - 1)
    }

    /// Number of tenants admitted.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// True when no tenants have been admitted.
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    /// The ready-queue key for tenant `idx`, given how many slices it
    /// has already taken and the global enqueue sequence number.
    fn key_for(&self, idx: usize, seq: u64) -> u64 {
        let t = &self.tenants[idx];
        match self.policy {
            // Pass count: every unfinished tenant takes exactly one
            // slice per pass, in admission order — the pre-policy
            // round-robin schedule, now in O(log n) per slice.
            SchedPolicy::RoundRobin => t.slices,
            // Virtual time: each priority step ages away
            // `aging_slices` enqueues, so strict priority holds until
            // a starving tenant's seniority wins. The bias keeps the
            // subtraction from saturating at low sequence numbers
            // (which would erase priority for the first slices);
            // priorities beyond `bias / aging_slices` saturate
            // together.
            SchedPolicy::Priority => {
                const PRIORITY_BIAS: u64 = 1 << 32;
                PRIORITY_BIAS
                    .saturating_add(seq)
                    .saturating_sub((t.priority as u64).saturating_mul(self.aging_slices))
            }
            // EDF on the absolute deadline; deadline-free tenants sort
            // last.
            SchedPolicy::Deadline => t.deadline.unwrap_or(u64::MAX),
        }
    }

    /// Runs every tenant to completion under the configured policy and
    /// returns the per-tenant reports (indexed by admission order)
    /// plus the scheduler's counters. Deterministic: the schedule is a
    /// pure function of the tenant set, the policy, and the quanta.
    pub fn run_all(mut self) -> (Vec<TenantReport>, SchedStats) {
        let mut stats = SchedStats {
            policy: self.policy,
            quantum: self.quantum,
            tenants: self.tenants.len() as u64,
            rejected: self.rejected,
            ..SchedStats::default()
        };
        // The machine's deterministic cycle clock: total cycles
        // executed across all tenants. Deadlines are judged against it.
        let mut clock: u64 = 0;
        let mut seq: u64 = 0;
        let mut ready = BinaryHeap::with_capacity(self.tenants.len());
        for idx in 0..self.tenants.len() {
            if !self.tenants[idx].vm.finished() {
                ready.push(Ready {
                    key: self.key_for(idx, seq),
                    idx,
                });
                seq += 1;
            }
        }
        stats.ready_peak = ready.len() as u64;
        while let Some(Ready { idx, .. }) = ready.pop() {
            let quantum = self.tenants[idx].quantum;
            let t = &mut self.tenants[idx];
            if t.first_slice.is_none() {
                t.first_slice = Some(stats.slices);
            }
            let before = t.vm.stats().cycles;
            let finished = t.vm.run_slice(quantum);
            let used = t.vm.stats().cycles - before;
            clock += used;
            t.slices += 1;
            stats.slices += 1;
            stats.rounds = stats.rounds.max(t.slices);
            let overshoot = used.saturating_sub(quantum);
            t.max_overshoot = t.max_overshoot.max(overshoot);
            stats.max_overshoot = stats.max_overshoot.max(overshoot);
            if finished {
                self.tenants[idx].finished_at = clock;
            } else {
                stats.preemptions += 1;
                ready.push(Ready {
                    key: self.key_for(idx, seq),
                    idx,
                });
                seq += 1;
                stats.ready_peak = stats.ready_peak.max(ready.len() as u64);
            }
        }
        let reports: Vec<TenantReport> = self
            .tenants
            .into_iter()
            .map(|t| {
                let Tenant {
                    vm,
                    deadline,
                    slices,
                    max_overshoot,
                    first_slice,
                    finished_at,
                    ..
                } = t;
                let Outcome {
                    result,
                    stats,
                    output,
                    dispatch,
                } = vm.into_outcome();
                let mut outcome = TenantOutcome::of(&result);
                if outcome == TenantOutcome::Done {
                    if let Some(d) = deadline {
                        if finished_at > d {
                            outcome = TenantOutcome::DeadlineMissed;
                        }
                    }
                }
                TenantReport {
                    outcome,
                    result,
                    output,
                    stats,
                    dispatch,
                    slices,
                    max_overshoot,
                    first_slice,
                }
            })
            .collect();
        for r in &reports {
            match r.outcome {
                TenantOutcome::Done => stats.done += 1,
                TenantOutcome::HeapExhausted => stats.heap_exhausted += 1,
                TenantOutcome::Fault => stats.fault += 1,
                TenantOutcome::OutOfFuel => stats.out_of_fuel += 1,
                TenantOutcome::DeadlineMissed => stats.deadline_missed += 1,
            }
        }
        (reports, stats)
    }
}
