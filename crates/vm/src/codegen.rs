//! Code generation: first-order CPS → abstract machine code.
//!
//! Each closed function becomes one code block. CPS variables are
//! assigned to registers greedily along the (tree-shaped) function body,
//! releasing registers as soon as a variable is no longer live in the
//! remaining subtree; pressure beyond the 32 hardware registers flows
//! into spill-modelled registers (32..63), whose accesses the VM charges
//! extra memory cycles for (the register-spilling phase of the paper's
//! Figure 3, folded into assignment). Calls use a fixed convention: word
//! arguments in `r1..`, float arguments in `f0..`, placed by a parallel
//! move with scratch-register cycle breaking.

use crate::isa::*;
use sml_cps::{
    AllocOp, BranchOp, CVar, Cexp, ClosedProgram, Cty, FunDef, LookOp, PureOp, SetOp, Value,
};
use std::collections::{HashMap, HashSet};

/// Maximum word parameters before trailing parameters are packed into a
/// record (the spill-record transformation).
const MAX_WORD_PARAMS: usize = 20;
/// Scratch register reserved for parallel-move cycle breaking.
const SCRATCH: Reg = 31;
/// Scratch register reserved for saving a clobbered callee address.
const CSCRATCH: Reg = 30;
const FSCRATCH: FReg = 31;

/// Compiles a closed CPS program to machine code.
pub fn codegen(prog: &ClosedProgram) -> MachineProgram {
    let mut prog = limit_params(prog);
    let mut pool: Vec<String> = Vec::new();
    let mut pool_ix: HashMap<String, u32> = HashMap::new();

    // Label numbering: function name -> block index. Entry gets block 0,
    // the uncaught-exception stub block 1.
    let mut label_of: HashMap<CVar, u32> = HashMap::new();
    for (i, f) in prog.funs.iter().enumerate() {
        label_of.insert(f.name, (i + 2) as u32);
    }
    // Parameter CTYs per label (for call-site argument placement).
    let mut params_of: HashMap<u32, Vec<Cty>> = HashMap::new();
    for f in &prog.funs {
        params_of.insert(
            label_of[&f.name],
            f.params.iter().map(|(_, c)| *c).collect(),
        );
    }

    let mut blocks = Vec::new();

    // Block 0: entry. Prologue installs the uncaught-exception handler
    // closure, then runs the program body.
    {
        let mut g = Gen {
            label_of: &label_of,
            params_of: &params_of,
            pool: &mut pool,
            pool_ix: &mut pool_ix,
            instrs: Vec::new(),
            loc: HashMap::new(),
            free_r: (SCRATCH + 1..MAX_REGS)
                .rev()
                .chain((1..CSCRATCH).rev())
                .collect(),
            free_f: (FSCRATCH + 1..MAX_REGS)
                .rev()
                .chain((0..FSCRATCH).rev())
                .collect(),
        };
        // handler closure = [label(uncaught)]
        g.instrs.push(Instr::LoadLabel { d: 1, label: 1 });
        g.instrs.push(Instr::Alloc {
            d: 2,
            kind: AllocKind::Record,
            words: vec![1],
            flts: vec![],
        });
        g.instrs.push(Instr::SetHdlr { s: 2 });
        let entry = std::mem::replace(&mut prog.entry, Cexp::Halt { v: Value::Int(0) });
        g.gen(entry);
        blocks.push(CodeBlock {
            name: "entry".into(),
            instrs: g.instrs,
        });
    }

    // Block 1: uncaught-exception stub. Convention: packet arrives in r2
    // (args after the closure in r1).
    blocks.push(CodeBlock {
        name: "uncaught".into(),
        instrs: vec![Instr::Uncaught { s: 2 }],
    });

    for f in &prog.funs {
        let mut g = Gen {
            label_of: &label_of,
            params_of: &params_of,
            pool: &mut pool,
            pool_ix: &mut pool_ix,
            instrs: Vec::new(),
            loc: HashMap::new(),
            free_r: Vec::new(),
            free_f: Vec::new(),
        };
        // Assign parameters per convention.
        let mut next_r: Reg = 1;
        let mut next_f: FReg = 0;
        let mut used_r = HashSet::new();
        let mut used_f = HashSet::new();
        for (p, c) in &f.params {
            if c.is_word() {
                g.loc.insert(*p, Loc::R(next_r));
                used_r.insert(next_r);
                next_r += 1;
            } else {
                g.loc.insert(*p, Loc::F(next_f));
                used_f.insert(next_f);
                next_f += 1;
            }
        }
        g.free_r = (SCRATCH + 1..MAX_REGS)
            .rev()
            .chain((1..CSCRATCH).rev())
            .filter(|r| !used_r.contains(r))
            .collect();
        g.free_f = (FSCRATCH + 1..MAX_REGS)
            .rev()
            .chain((0..FSCRATCH).rev())
            .filter(|r| !used_f.contains(r))
            .collect();
        g.gen((*f.body).clone());
        blocks.push(CodeBlock {
            name: format!("f{}", f.name),
            instrs: g.instrs,
        });
    }

    MachineProgram {
        blocks,
        entry: 0,
        pool,
    }
}

/// Packs trailing parameters of over-wide functions into records.
fn limit_params(prog: &ClosedProgram) -> ClosedProgram {
    let mut packed: HashMap<CVar, usize> = HashMap::new();
    for f in &prog.funs {
        let words = f.params.iter().filter(|(_, c)| c.is_word()).count();
        if words > MAX_WORD_PARAMS || f.params.len() > 24 {
            packed.insert(f.name, MAX_WORD_PARAMS.min(f.params.len() - 1));
        }
    }
    if packed.is_empty() {
        return ClosedProgram {
            funs: prog.funs.clone(),
            entry: prog.entry.clone(),
            next_var: prog.next_var,
        };
    }
    let mut next = prog.next_var;
    let funs = prog
        .funs
        .iter()
        .map(|f| {
            let Some(&keep) = packed.get(&f.name) else {
                let mut f2 = f.clone();
                *f2.body = rewrite_calls(&f.body, &packed, &mut next);
                return f2;
            };
            let kept: Vec<(CVar, Cty)> = f.params[..keep].to_vec();
            let rest: Vec<(CVar, Cty)> = f.params[keep..].to_vec();
            let pk = next;
            next += 1;
            let mut body = rewrite_calls(&f.body, &packed, &mut next);
            // Unpack: words first, then floats (record physical layout).
            let words: Vec<&(CVar, Cty)> = rest.iter().filter(|(_, c)| c.is_word()).collect();
            let floats: Vec<&(CVar, Cty)> = rest.iter().filter(|(_, c)| !c.is_word()).collect();
            for (j, (v, _)) in floats.iter().enumerate().rev() {
                body = Cexp::Select {
                    rec: Value::Var(pk),
                    word_off: words.len() + 2 * j,
                    flt: true,
                    dst: *v,
                    cty: Cty::Flt,
                    rest: Box::new(body),
                };
            }
            for (i, (v, c)) in words.iter().enumerate().rev() {
                body = Cexp::Select {
                    rec: Value::Var(pk),
                    word_off: i,
                    flt: false,
                    dst: *v,
                    cty: *c,
                    rest: Box::new(body),
                };
            }
            let mut params = kept;
            params.push((pk, Cty::Ptr(None)));
            FunDef {
                kind: f.kind,
                name: f.name,
                params,
                body: Box::new(body),
            }
        })
        .collect();
    let entry = rewrite_calls(&prog.entry, &packed, &mut next);
    ClosedProgram {
        funs,
        entry,
        next_var: next,
    }
}

fn rewrite_calls(e: &Cexp, packed: &HashMap<CVar, usize>, next: &mut u32) -> Cexp {
    match e {
        Cexp::App { f, args } => {
            if let Value::Label(l) | Value::Var(l) = f {
                if let Some(&keep) = packed.get(l) {
                    let kept = args[..keep].to_vec();
                    let rest = &args[keep..];
                    // We do not know CTYs of values here; treat Real
                    // constants as floats, everything else as words
                    // (variables were split by the callee the same way
                    // because CTYs agree by convention).
                    let words: Vec<Value> = rest
                        .iter()
                        .filter(|v| !matches!(v, Value::Real(_)))
                        .cloned()
                        .collect();
                    let floats: Vec<Value> = rest
                        .iter()
                        .filter(|v| matches!(v, Value::Real(_)))
                        .cloned()
                        .collect();
                    let mut fields: Vec<(Value, Cty)> =
                        words.into_iter().map(|v| (v, Cty::Ptr(None))).collect();
                    let nflt = floats.len();
                    fields.extend(floats.into_iter().map(|v| (v, Cty::Flt)));
                    let pk = *next;
                    *next += 1;
                    let mut new_args = kept;
                    new_args.push(Value::Var(pk));
                    return Cexp::Record {
                        fields,
                        nflt,
                        dst: pk,
                        rest: Box::new(Cexp::App {
                            f: f.clone(),
                            args: new_args,
                        }),
                    };
                }
            }
            e.clone()
        }
        Cexp::Record {
            fields,
            nflt,
            dst,
            rest,
        } => Cexp::Record {
            fields: fields.clone(),
            nflt: *nflt,
            dst: *dst,
            rest: Box::new(rewrite_calls(rest, packed, next)),
        },
        Cexp::Select {
            rec,
            word_off,
            flt,
            dst,
            cty,
            rest,
        } => Cexp::Select {
            rec: rec.clone(),
            word_off: *word_off,
            flt: *flt,
            dst: *dst,
            cty: *cty,
            rest: Box::new(rewrite_calls(rest, packed, next)),
        },
        Cexp::Pure {
            op,
            args,
            dst,
            cty,
            rest,
        } => Cexp::Pure {
            op: *op,
            args: args.clone(),
            dst: *dst,
            cty: *cty,
            rest: Box::new(rewrite_calls(rest, packed, next)),
        },
        Cexp::Alloc {
            op,
            args,
            dst,
            rest,
        } => Cexp::Alloc {
            op: *op,
            args: args.clone(),
            dst: *dst,
            rest: Box::new(rewrite_calls(rest, packed, next)),
        },
        Cexp::Look {
            op,
            args,
            dst,
            cty,
            rest,
        } => Cexp::Look {
            op: *op,
            args: args.clone(),
            dst: *dst,
            cty: *cty,
            rest: Box::new(rewrite_calls(rest, packed, next)),
        },
        Cexp::Set { op, args, rest } => Cexp::Set {
            op: *op,
            args: args.clone(),
            rest: Box::new(rewrite_calls(rest, packed, next)),
        },
        Cexp::Switch {
            v,
            lo,
            arms,
            default,
        } => Cexp::Switch {
            v: v.clone(),
            lo: *lo,
            arms: arms
                .iter()
                .map(|a| rewrite_calls(a, packed, next))
                .collect(),
            default: Box::new(rewrite_calls(default, packed, next)),
        },
        Cexp::Branch { op, args, tru, fls } => Cexp::Branch {
            op: *op,
            args: args.clone(),
            tru: Box::new(rewrite_calls(tru, packed, next)),
            fls: Box::new(rewrite_calls(fls, packed, next)),
        },
        Cexp::Fix { .. } => unreachable!("closure conversion removed Fix"),
        Cexp::Halt { v } => Cexp::Halt { v: v.clone() },
    }
}

/// Where a CPS variable lives.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Loc {
    R(Reg),
    F(FReg),
}

struct Gen<'a> {
    label_of: &'a HashMap<CVar, u32>,
    #[allow(dead_code)]
    params_of: &'a HashMap<u32, Vec<Cty>>,
    pool: &'a mut Vec<String>,
    pool_ix: &'a mut HashMap<String, u32>,
    instrs: Vec<Instr>,
    loc: HashMap<CVar, Loc>,
    free_r: Vec<Reg>,
    free_f: Vec<FReg>,
}

impl Gen<'_> {
    fn alloc_r(&mut self) -> Reg {
        self.free_r
            .pop()
            .expect("out of integer registers (including spill slots)")
    }

    fn alloc_f(&mut self) -> FReg {
        self.free_f
            .pop()
            .expect("out of float registers (including spill slots)")
    }

    fn release(&mut self, v: CVar) {
        if let Some(l) = self.loc.remove(&v) {
            match l {
                Loc::R(r) => self.free_r.push(r),
                Loc::F(f) => self.free_f.push(f),
            }
        }
    }

    /// Releases every variable not live in `live`.
    ///
    /// Dead variables are released in sorted order: `loc` is a hash map,
    /// and releasing in its iteration order would push registers onto the
    /// free lists in a run-dependent order, making spill decisions — and
    /// therefore code size and cycle counts — nondeterministic.
    fn prune(&mut self, live: &HashSet<CVar>) {
        let mut dead: Vec<CVar> = self
            .loc
            .keys()
            .copied()
            .filter(|v| !live.contains(v))
            .collect();
        dead.sort_unstable();
        for v in dead {
            self.release(v);
        }
    }

    fn pool_id(&mut self, s: &str) -> u32 {
        if let Some(&i) = self.pool_ix.get(s) {
            return i;
        }
        let i = self.pool.len() as u32;
        self.pool.push(s.to_owned());
        self.pool_ix.insert(s.to_owned(), i);
        i
    }

    /// Materializes a word value into a register; returns (reg, temp?).
    fn word_reg(&mut self, v: &Value) -> (Reg, Option<Reg>) {
        match v {
            Value::Var(x) => match self.loc.get(x) {
                Some(Loc::R(r)) => (*r, None),
                other => panic!("v{x} not in an int register: {other:?}"),
            },
            Value::Int(n) => {
                let r = self.alloc_r();
                self.instrs.push(Instr::LoadI { d: r, imm: *n });
                (r, Some(r))
            }
            Value::Label(l) => {
                let r = self.alloc_r();
                let label = self.label_of[l];
                self.instrs.push(Instr::LoadLabel { d: r, label });
                (r, Some(r))
            }
            Value::Str(s) => {
                let r = self.alloc_r();
                let p = self.pool_id(s);
                self.instrs.push(Instr::LoadStr { d: r, pool: p });
                (r, Some(r))
            }
            Value::Real(_) => panic!("float value in word context"),
        }
    }

    fn float_reg(&mut self, v: &Value) -> (FReg, Option<FReg>) {
        match v {
            Value::Var(x) => match self.loc.get(x) {
                Some(Loc::F(f)) => (*f, None),
                other => panic!("v{x} not in a float register: {other:?}"),
            },
            Value::Real(x) => {
                let f = self.alloc_f();
                self.instrs.push(Instr::LoadF { d: f, imm: *x });
                (f, Some(f))
            }
            other => panic!("word value {other:?} in float context"),
        }
    }

    fn free_temp(&mut self, t: Option<Reg>) {
        if let Some(r) = t {
            self.free_r.push(r);
        }
    }

    fn free_ftemp(&mut self, t: Option<FReg>) {
        if let Some(f) = t {
            self.free_f.push(f);
        }
    }

    fn bind_r(&mut self, v: CVar) -> Reg {
        let r = self.alloc_r();
        self.loc.insert(v, Loc::R(r));
        r
    }

    fn bind_f(&mut self, v: CVar) -> FReg {
        let f = self.alloc_f();
        self.loc.insert(v, Loc::F(f));
        f
    }

    fn gen(&mut self, e: Cexp) {
        let live = free_vars(&e);
        self.prune(&live);
        match e {
            Cexp::Record {
                fields,
                nflt,
                dst,
                rest,
            } => {
                let _ = nflt;
                let mut words = Vec::new();
                let mut flts = Vec::new();
                let mut temps = Vec::new();
                let mut ftemps = Vec::new();
                for (v, c) in &fields {
                    if c.is_word() {
                        let (r, t) = self.word_reg(v);
                        words.push(r);
                        temps.push(t);
                    } else {
                        let (f, t) = self.float_reg(v);
                        flts.push(f);
                        ftemps.push(t);
                    }
                }
                for t in temps {
                    self.free_temp(t);
                }
                for t in ftemps {
                    self.free_ftemp(t);
                }
                let d = self.bind_r(dst);
                self.instrs.push(Instr::Alloc {
                    d,
                    kind: AllocKind::Record,
                    words,
                    flts,
                });
                self.gen(*rest);
            }
            Cexp::Select {
                rec,
                word_off,
                flt,
                dst,
                cty,
                rest,
            } => {
                let (base, t) = self.word_reg(&rec);
                self.free_temp(t);
                let _ = cty;
                if flt {
                    let d = self.bind_f(dst);
                    self.instrs.push(Instr::FLoad {
                        d,
                        base,
                        off: word_off as u16,
                    });
                } else {
                    let d = self.bind_r(dst);
                    self.instrs.push(Instr::Load {
                        d,
                        base,
                        off: word_off as u16,
                    });
                }
                self.gen(*rest);
            }
            Cexp::Pure {
                op,
                args,
                dst,
                cty,
                rest,
            } => {
                self.gen_pure(op, &args, dst, cty);
                self.gen(*rest);
            }
            Cexp::Alloc {
                op,
                args,
                dst,
                rest,
            } => {
                match op {
                    AllocOp::MakeRef => {
                        let (s, t) = self.word_reg(&args[0]);
                        self.free_temp(t);
                        let d = self.bind_r(dst);
                        self.instrs.push(Instr::Alloc {
                            d,
                            kind: AllocKind::Ref,
                            words: vec![s],
                            flts: vec![],
                        });
                    }
                    AllocOp::ArrayMake => {
                        let (len, t1) = self.word_reg(&args[0]);
                        let (init, t2) = self.word_reg(&args[1]);
                        self.free_temp(t1);
                        self.free_temp(t2);
                        let d = self.bind_r(dst);
                        self.instrs.push(Instr::AllocArr { d, len, init });
                    }
                }
                self.gen(*rest);
            }
            Cexp::Look {
                op,
                args,
                dst,
                cty,
                rest,
            } => {
                let _ = cty;
                match op {
                    LookOp::Deref => {
                        let (base, t) = self.word_reg(&args[0]);
                        self.free_temp(t);
                        let d = self.bind_r(dst);
                        self.instrs.push(Instr::Load { d, base, off: 0 });
                    }
                    LookOp::ArraySub => {
                        let (base, t1) = self.word_reg(&args[0]);
                        let (idx, t2) = self.word_reg(&args[1]);
                        self.free_temp(t1);
                        self.free_temp(t2);
                        let d = self.bind_r(dst);
                        self.instrs.push(Instr::LoadIdx { d, base, idx });
                    }
                    LookOp::GetHandler => {
                        let d = self.bind_r(dst);
                        self.instrs.push(Instr::GetHdlr { d });
                    }
                }
                self.gen(*rest);
            }
            Cexp::Set { op, args, rest } => {
                match op {
                    SetOp::Assign | SetOp::UnboxedAssign => {
                        let (base, t1) = self.word_reg(&args[0]);
                        let (s, t2) = self.word_reg(&args[1]);
                        self.free_temp(t1);
                        self.free_temp(t2);
                        if op == SetOp::Assign {
                            self.instrs.push(Instr::StoreWB { s, base, off: 0 });
                        } else {
                            self.instrs.push(Instr::Store { s, base, off: 0 });
                        }
                    }
                    SetOp::ArrayUpdate | SetOp::UnboxedArrayUpdate => {
                        let (base, t1) = self.word_reg(&args[0]);
                        let (idx, t2) = self.word_reg(&args[1]);
                        let (s, t3) = self.word_reg(&args[2]);
                        self.free_temp(t1);
                        self.free_temp(t2);
                        self.free_temp(t3);
                        if op == SetOp::ArrayUpdate {
                            self.instrs.push(Instr::StoreIdxWB { s, base, idx });
                        } else {
                            self.instrs.push(Instr::StoreIdx { s, base, idx });
                        }
                    }
                    SetOp::Print => {
                        let (s, t) = self.word_reg(&args[0]);
                        self.free_temp(t);
                        self.instrs.push(Instr::Print { s });
                    }
                    SetOp::SetHandler => {
                        let (s, t) = self.word_reg(&args[0]);
                        self.free_temp(t);
                        self.instrs.push(Instr::SetHdlr { s });
                    }
                }
                self.gen(*rest);
            }
            Cexp::Switch {
                v,
                lo,
                arms,
                default,
            } => {
                let (r, t) = self.word_reg(&v);
                self.free_temp(t);
                let sw_at = self.instrs.len();
                self.instrs.push(Instr::Switch {
                    r,
                    lo,
                    table: vec![0; arms.len()],
                    default: 0,
                });
                let saved_loc = self.loc.clone();
                let saved_r = self.free_r.clone();
                let saved_f = self.free_f.clone();
                let mut starts = Vec::with_capacity(arms.len());
                for a in arms {
                    starts.push(self.instrs.len() as u32);
                    self.loc = saved_loc.clone();
                    self.free_r = saved_r.clone();
                    self.free_f = saved_f.clone();
                    self.gen(a);
                }
                let dstart = self.instrs.len() as u32;
                self.loc = saved_loc;
                self.free_r = saved_r;
                self.free_f = saved_f;
                self.gen(*default);
                if let Instr::Switch { table, default, .. } = &mut self.instrs[sw_at] {
                    *table = starts;
                    *default = dstart;
                }
            }
            Cexp::Branch { op, args, tru, fls } => {
                let patch_at = self.gen_branch_test(op, &args);
                // True branch with a cloned allocator state.
                let saved_loc = self.loc.clone();
                let saved_r = self.free_r.clone();
                let saved_f = self.free_f.clone();
                self.gen(*tru);
                self.loc = saved_loc;
                self.free_r = saved_r;
                self.free_f = saved_f;
                let here = self.instrs.len() as u32;
                self.patch(patch_at, here);
                self.gen(*fls);
            }
            Cexp::App { f, args } => self.gen_app(f, args),
            Cexp::Halt { v } => {
                let (r, _) = self.word_reg(&v);
                self.instrs.push(Instr::Halt { s: r });
            }
            Cexp::Fix { .. } => unreachable!("closure conversion removed Fix"),
        }
    }

    fn gen_pure(&mut self, op: PureOp, args: &[Value], dst: CVar, _cty: Cty) {
        use PureOp::*;
        match op {
            IAdd | ISub | IMul | IDiv | IMod => {
                let (a, t1) = self.word_reg(&args[0]);
                let (b, t2) = self.word_reg(&args[1]);
                self.free_temp(t1);
                self.free_temp(t2);
                let d = self.bind_r(dst);
                let aop = match op {
                    IAdd => AOp::Add,
                    ISub => AOp::Sub,
                    IMul => AOp::Mul,
                    IDiv => AOp::Div,
                    _ => AOp::Mod,
                };
                self.instrs.push(Instr::Arith { op: aop, d, a, b });
            }
            INeg => {
                let (a, t) = self.word_reg(&args[0]);
                self.free_temp(t);
                let zero = self.alloc_r();
                self.instrs.push(Instr::LoadI { d: zero, imm: 0 });
                let d = self.bind_r(dst);
                self.instrs.push(Instr::Arith {
                    op: AOp::Sub,
                    d,
                    a: zero,
                    b: a,
                });
                self.free_r.push(zero);
            }
            FAdd | FSub | FMul | FDiv => {
                let (a, t1) = self.float_reg(&args[0]);
                let (b, t2) = self.float_reg(&args[1]);
                self.free_ftemp(t1);
                self.free_ftemp(t2);
                let d = self.bind_f(dst);
                let fop = match op {
                    FAdd => FOp::Add,
                    FSub => FOp::Sub,
                    FMul => FOp::Mul,
                    _ => FOp::Div,
                };
                self.instrs.push(Instr::FArith { op: fop, d, a, b });
            }
            FNeg | FSqrt | FSin | FCos | FAtan | FExp | FLn => {
                let (a, t) = self.float_reg(&args[0]);
                self.free_ftemp(t);
                let d = self.bind_f(dst);
                let u = match op {
                    FNeg => FUOp::Neg,
                    FSqrt => FUOp::Sqrt,
                    FSin => FUOp::Sin,
                    FCos => FUOp::Cos,
                    FAtan => FUOp::Atan,
                    FExp => FUOp::Exp,
                    _ => FUOp::Ln,
                };
                self.instrs.push(Instr::FUnary { op: u, d, a });
            }
            Floor => {
                let (a, t) = self.float_reg(&args[0]);
                self.free_ftemp(t);
                let d = self.bind_r(dst);
                self.instrs.push(Instr::Floor { d, a });
            }
            IntToReal => {
                let (a, t) = self.word_reg(&args[0]);
                self.free_temp(t);
                let d = self.bind_f(dst);
                self.instrs.push(Instr::IntToReal { d, a });
            }
            FWrap => {
                let (s, t) = self.float_reg(&args[0]);
                self.free_ftemp(t);
                let d = self.bind_r(dst);
                self.instrs.push(Instr::FBox { d, s });
            }
            FUnwrap => {
                let (s, t) = self.word_reg(&args[0]);
                self.free_temp(t);
                let d = self.bind_f(dst);
                self.instrs.push(Instr::FUnbox { d, s });
            }
            IWrap | IUnwrap | PWrap | PUnwrap => {
                // Runtime no-ops with tagged integers: a register move
                // (most such pairs were already cancelled by the
                // optimizer).
                let (s, t) = self.word_reg(&args[0]);
                self.free_temp(t);
                let d = self.bind_r(dst);
                self.instrs.push(Instr::Move { d, s });
            }
            StrSize => {
                let (a, t) = self.word_reg(&args[0]);
                self.free_temp(t);
                let d = self.bind_r(dst);
                self.instrs.push(Instr::Rt {
                    op: RtOp::StrSize,
                    d,
                    a,
                    b: 0,
                    fa: 0,
                });
            }
            StrSub => {
                let (a, t1) = self.word_reg(&args[0]);
                let (b, t2) = self.word_reg(&args[1]);
                self.free_temp(t1);
                self.free_temp(t2);
                let d = self.bind_r(dst);
                self.instrs.push(Instr::Rt {
                    op: RtOp::StrSub,
                    d,
                    a,
                    b,
                    fa: 0,
                });
            }
            StrCat => {
                let (a, t1) = self.word_reg(&args[0]);
                let (b, t2) = self.word_reg(&args[1]);
                self.free_temp(t1);
                self.free_temp(t2);
                let d = self.bind_r(dst);
                self.instrs.push(Instr::Rt {
                    op: RtOp::StrCat,
                    d,
                    a,
                    b,
                    fa: 0,
                });
            }
            IntToString => {
                let (a, t) = self.word_reg(&args[0]);
                self.free_temp(t);
                let d = self.bind_r(dst);
                self.instrs.push(Instr::Rt {
                    op: RtOp::IntToString,
                    d,
                    a,
                    b: 0,
                    fa: 0,
                });
            }
            RealToString => {
                let (fa, t) = self.float_reg(&args[0]);
                self.free_ftemp(t);
                let d = self.bind_r(dst);
                self.instrs.push(Instr::Rt {
                    op: RtOp::RealToString,
                    d,
                    a: 0,
                    b: 0,
                    fa,
                });
            }
            ArrayLength => {
                let (a, t) = self.word_reg(&args[0]);
                self.free_temp(t);
                let d = self.bind_r(dst);
                self.instrs.push(Instr::ArrLen { d, a });
            }
        }
    }

    /// Emits the branch test; returns the index of the instruction whose
    /// target must be patched to the false-branch position.
    fn gen_branch_test(&mut self, op: BranchOp, args: &[Value]) -> usize {
        use BranchOp::*;

        match op {
            ILt | ILe | IGt | IGe | IEq | INe | PtrEq => {
                let (a, t1) = self.word_reg(&args[0]);
                let (b, t2) = self.word_reg(&args[1]);
                self.free_temp(t1);
                self.free_temp(t2);
                let bop = match op {
                    ILt => BrOp::Lt,
                    ILe => BrOp::Le,
                    IGt => BrOp::Gt,
                    IGe => BrOp::Ge,
                    INe => BrOp::Ne,
                    _ => BrOp::Eq,
                };
                self.instrs.push(Instr::Branch {
                    op: bop,
                    a,
                    b,
                    target: 0,
                });
                self.instrs.len() - 1
            }
            IsBoxed => {
                let (a, t) = self.word_reg(&args[0]);
                self.free_temp(t);
                self.instrs.push(Instr::Branch {
                    op: BrOp::Boxed,
                    a,
                    b: a,
                    target: 0,
                });
                self.instrs.len() - 1
            }
            FLt | FLe | FGt | FGe | FEq | FNe => {
                let (a, t1) = self.float_reg(&args[0]);
                let (b, t2) = self.float_reg(&args[1]);
                self.free_ftemp(t1);
                self.free_ftemp(t2);
                let fop = match op {
                    FLt => FBrOp::Lt,
                    FLe => FBrOp::Le,
                    FGt => FBrOp::Gt,
                    FGe => FBrOp::Ge,
                    FEq => FBrOp::Eq,
                    _ => FBrOp::Ne,
                };
                self.instrs.push(Instr::FBranch {
                    op: fop,
                    a,
                    b,
                    target: 0,
                });
                self.instrs.len() - 1
            }
            StrEq | StrNe | StrLt | StrLe | StrGt | StrGe => {
                let (a, t1) = self.word_reg(&args[0]);
                let (b, t2) = self.word_reg(&args[1]);
                self.free_temp(t1);
                self.free_temp(t2);
                let sop = match op {
                    StrEq => SBrOp::Eq,
                    StrNe => SBrOp::Ne,
                    StrLt => SBrOp::Lt,
                    StrLe => SBrOp::Le,
                    StrGt => SBrOp::Gt,
                    _ => SBrOp::Ge,
                };
                self.instrs.push(Instr::SBranch {
                    op: sop,
                    a,
                    b,
                    target: 0,
                });
                self.instrs.len() - 1
            }
            PolyEq => {
                let (a, t1) = self.word_reg(&args[0]);
                let (b, t2) = self.word_reg(&args[1]);
                self.free_temp(t1);
                self.free_temp(t2);
                self.instrs.push(Instr::PolyEqBranch { a, b, target: 0 });
                self.instrs.len() - 1
            }
        }
    }

    fn patch(&mut self, at: usize, target: u32) {
        match &mut self.instrs[at] {
            Instr::Branch { target: t, .. }
            | Instr::FBranch { target: t, .. }
            | Instr::SBranch { target: t, .. }
            | Instr::PolyEqBranch { target: t, .. } => *t = target,
            other => panic!("patching non-branch {other:?}"),
        }
    }

    fn gen_app(&mut self, f: Value, args: Vec<Value>) {
        // If the callee's register would be clobbered by argument moves,
        // save it to scratch first.
        let callee_reg: Option<Reg> = if let Value::Var(x) = &f {
            if let Some(Loc::R(r)) = self.loc.get(x) {
                let n_word_args = args
                    .iter()
                    .filter(|a| match a {
                        Value::Real(_) => false,
                        Value::Var(y) => !matches!(self.loc.get(y), Some(Loc::F(_))),
                        _ => true,
                    })
                    .count() as u8;
                if *r >= 1 && *r <= n_word_args {
                    self.instrs.push(Instr::Move { d: CSCRATCH, s: *r });
                    Some(CSCRATCH)
                } else {
                    Some(*r)
                }
            } else {
                None
            }
        } else {
            None
        };
        // Destination registers by convention.
        let mut dest_words: Vec<(Value, Reg)> = Vec::new();
        let mut dest_flts: Vec<(Value, FReg)> = Vec::new();
        let mut next_r: Reg = 1;
        let mut next_f: FReg = 0;
        for a in &args {
            let is_flt = match a {
                Value::Real(_) => true,
                Value::Var(x) => matches!(self.loc.get(x), Some(Loc::F(_))),
                _ => false,
            };
            if is_flt {
                dest_flts.push((a.clone(), next_f));
                next_f += 1;
            } else {
                dest_words.push((a.clone(), next_r));
                next_r += 1;
            }
        }
        // Parallel move of word registers: build src->dst list.
        let mut moves: Vec<(Reg, Reg)> = Vec::new();
        let mut consts: Vec<(Value, Reg)> = Vec::new();
        for (v, d) in &dest_words {
            match v {
                Value::Var(x) => {
                    let Some(Loc::R(s)) = self.loc.get(x).copied() else {
                        panic!(
                            "call argument v{x} not in an int register ({:?})",
                            self.loc.get(x)
                        )
                    };
                    if s != *d {
                        moves.push((s, *d));
                    }
                }
                other => consts.push((other.clone(), *d)),
            }
        }
        self.parallel_move(moves);
        for (v, d) in consts {
            match v {
                Value::Int(n) => self.instrs.push(Instr::LoadI { d, imm: n }),
                Value::Label(l) => {
                    let label = self.label_of[&l];
                    self.instrs.push(Instr::LoadLabel { d, label });
                }
                Value::Str(s) => {
                    let p = self.pool_id(&s);
                    self.instrs.push(Instr::LoadStr { d, pool: p });
                }
                _ => unreachable!(),
            }
        }
        // Float moves.
        let mut fmoves: Vec<(FReg, FReg)> = Vec::new();
        let mut fconsts: Vec<(f64, FReg)> = Vec::new();
        for (v, d) in &dest_flts {
            match v {
                Value::Var(x) => {
                    let Loc::F(s) = self.loc[x] else {
                        panic!("cty mismatch")
                    };
                    if s != *d {
                        fmoves.push((s, *d));
                    }
                }
                Value::Real(x) => fconsts.push((*x, *d)),
                _ => unreachable!(),
            }
        }
        self.parallel_fmove(fmoves);
        for (x, d) in fconsts {
            self.instrs.push(Instr::LoadF { d, imm: x });
        }
        // Transfer.
        match f {
            Value::Label(l) => {
                let label = self.label_of[&l];
                self.instrs.push(Instr::Jump { label });
            }
            Value::Var(x) => match callee_reg {
                Some(r) => self.instrs.push(Instr::JumpReg { r }),
                None => match self.loc[&x] {
                    Loc::R(r) => self.instrs.push(Instr::JumpReg { r }),
                    Loc::F(_) => panic!("calling a float"),
                },
            },
            other => panic!("calling constant {other:?}"),
        }
    }

    fn parallel_move(&mut self, mut moves: Vec<(Reg, Reg)>) {
        // Repeatedly emit moves whose destination is not a pending
        // source; break cycles with the scratch register.
        while !moves.is_empty() {
            let mut progressed = false;
            let mut i = 0;
            while i < moves.len() {
                let (_s, d) = moves[i];
                if moves.iter().all(|(s2, _)| *s2 != d) {
                    let (s, d) = moves.remove(i);
                    self.instrs.push(Instr::Move { d, s });
                    progressed = true;
                } else {
                    i += 1;
                }
            }
            if !progressed {
                // Cycle: save the destination (a pending source) in the
                // scratch register, retarget its readers, then emit.
                let (s, d) = moves.remove(0);
                self.instrs.push(Instr::Move { d: SCRATCH, s: d });
                for m in &mut moves {
                    if m.0 == d {
                        m.0 = SCRATCH;
                    }
                }
                self.instrs.push(Instr::Move { d, s });
            }
        }
    }

    fn parallel_fmove(&mut self, mut moves: Vec<(FReg, FReg)>) {
        while !moves.is_empty() {
            let mut progressed = false;
            let mut i = 0;
            while i < moves.len() {
                let (_s, d) = moves[i];
                if moves.iter().all(|(s2, _)| *s2 != d) {
                    let (s, d) = moves.remove(i);
                    self.instrs.push(Instr::FMove { d, s });
                    progressed = true;
                } else {
                    i += 1;
                }
            }
            if !progressed {
                let (s, d) = moves.remove(0);
                self.instrs.push(Instr::FMove { d: FSCRATCH, s: d });
                for m in &mut moves {
                    if m.0 == d {
                        m.0 = FSCRATCH;
                    }
                }
                self.instrs.push(Instr::FMove { d, s });
            }
        }
    }
}

/// Free variables of a CPS expression (no binders escape their subtree).
fn free_vars(e: &Cexp) -> HashSet<CVar> {
    fn go(e: &Cexp, bound: &mut HashSet<CVar>, free: &mut HashSet<CVar>) {
        let val = |v: &Value, bound: &HashSet<CVar>, free: &mut HashSet<CVar>| {
            if let Value::Var(x) = v {
                if !bound.contains(x) {
                    free.insert(*x);
                }
            }
        };
        match e {
            Cexp::Record {
                fields, dst, rest, ..
            } => {
                fields.iter().for_each(|(v, _)| val(v, bound, free));
                bound.insert(*dst);
                go(rest, bound, free);
            }
            Cexp::Select { rec, dst, rest, .. } => {
                val(rec, bound, free);
                bound.insert(*dst);
                go(rest, bound, free);
            }
            Cexp::Pure {
                args, dst, rest, ..
            }
            | Cexp::Alloc {
                args, dst, rest, ..
            }
            | Cexp::Look {
                args, dst, rest, ..
            } => {
                args.iter().for_each(|v| val(v, bound, free));
                bound.insert(*dst);
                go(rest, bound, free);
            }
            Cexp::Set { args, rest, .. } => {
                args.iter().for_each(|v| val(v, bound, free));
                go(rest, bound, free);
            }
            Cexp::Switch {
                v, arms, default, ..
            } => {
                val(v, bound, free);
                arms.iter().for_each(|a| go(a, &mut bound.clone(), free));
                go(default, &mut bound.clone(), free);
            }
            Cexp::Branch { args, tru, fls, .. } => {
                args.iter().for_each(|v| val(v, bound, free));
                go(tru, &mut bound.clone(), free);
                go(fls, &mut bound.clone(), free);
            }
            Cexp::Fix { funs, rest } => {
                for f in funs {
                    bound.insert(f.name);
                }
                for f in funs {
                    let mut b2 = bound.clone();
                    b2.extend(f.params.iter().map(|(p, _)| *p));
                    go(&f.body, &mut b2, free);
                }
                go(rest, bound, free);
            }
            Cexp::App { f, args } => {
                val(f, bound, free);
                args.iter().for_each(|v| val(v, bound, free));
            }
            Cexp::Halt { v } => val(v, bound, free),
        }
    }
    let mut free = HashSet::new();
    go(e, &mut HashSet::new(), &mut free);
    free
}
