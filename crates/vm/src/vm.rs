//! The abstract machine interpreter with a DECstation-5000-class cost
//! model.
//!
//! Cycle costs (documented in DESIGN.md): ALU and moves are 1 cycle;
//! loads/stores 2; raw float loads/stores 4 (two single-word memory
//! operations, paper footnote 7); float add/sub 2, mul 4, div 12,
//! transcendental 20; allocation is 1 + one cycle per word written;
//! write-barriered stores pay 2 extra cycles; the copying collector pays
//! 3 cycles per word copied on top of a fixed pause (150 cycles for a
//! minor collection plus 1 per remembered-set slot scanned, 200 for a
//! major or semispace collection). Accesses to spill-modelled registers
//! (32..63) pay 2 extra cycles each, approximating spill loads/stores.
//!
//! # Fault containment
//!
//! The interpreter never panics on program behavior: every memory access
//! is bounds-checked against the target object's descriptor and traps as
//! [`VmResult::Fault`] on violation, heap exhaustion (a collection that
//! still leaves no room) traps as [`VmResult::HeapExhausted`], and the
//! cycle budget traps as [`VmResult::OutOfFuel`]. All exit paths —
//! normal and trapping — finalize the heap counters in [`RunStats`], so
//! `cycles_by_class` sums to `cycles` and allocation totals are accurate
//! no matter how the run ended. [`FaultInject`] exposes the trap paths
//! to tests deterministically.

use crate::heap::{
    decode, is_ptr, tag_int, untag_int, GcKind, GcMode, Heap, HeapConfig, ObjKind, SliceOutcome,
};
use crate::isa::*;

/// VM configuration.
#[derive(Clone, Copy, Debug)]
pub struct VmConfig {
    /// Model the three floating-point callee-save registers of `sml.fp3`:
    /// every inter-function control transfer pays 3 extra float moves.
    pub fp3_overhead: bool,
    /// Collector selection (see [`GcMode`]); generational by default.
    pub gc_mode: GcMode,
    /// Nursery semispace size in words (generational mode); in
    /// [`GcMode::Semispace`], the allocation interval between
    /// collections.
    pub nursery_words: usize,
    /// Cycle budget; exceeded runs trap with [`VmResult::OutOfFuel`].
    pub max_cycles: u64,
    /// Tenured semispace size in words — the heap ceiling. When a major
    /// collection still leaves no room for an allocation, the run traps
    /// with [`VmResult::HeapExhausted`] instead of aborting the process.
    pub tenured_words: usize,
    /// Minor collections an object must survive before promotion into
    /// tenured space (generational mode; at least 1).
    pub promote_after: u32,
    /// GC pause budget in cycles; `0` means unbounded, i.e. today's
    /// stop-the-world major collections. When nonzero, major
    /// collections run as incremental slices sized to the budget and
    /// the nursery is clamped so minor pauses fit it too. The invariant
    /// is mutator-visible: no recorded pause exceeds the budget except
    /// for a single oversized object (or an outsized remembered set),
    /// which is *reported* in [`RunStats::pause_overruns`] rather than
    /// silently violated.
    pub max_pause_cycles: u64,
    /// Fault-injection knobs for robustness testing.
    pub fault: FaultInject,
}

impl Default for VmConfig {
    fn default() -> VmConfig {
        VmConfig {
            fp3_overhead: false,
            gc_mode: GcMode::Generational,
            nursery_words: 64 * 1024,
            max_cycles: 20_000_000_000,
            tenured_words: 8 << 20,
            promote_after: 2,
            max_pause_cycles: 0,
            fault: FaultInject::default(),
        }
    }
}

/// Deterministic fault-injection surface (see `docs/ROBUSTNESS.md`).
///
/// Together with a shrunken `max_cycles` or `tenured_words`, these knobs
/// let tests drive the VM down every trap path and assert that the
/// [`RunStats`] counters stay internally consistent.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultInject {
    /// Simulate allocation failure at the Nth object allocation
    /// (1-based): that allocation traps [`VmResult::HeapExhausted`].
    pub fail_alloc_at: Option<u64>,
    /// Force a collection before every kth object allocation, stressing
    /// GC root handling far beyond what the nursery schedule would.
    /// While an incremental major is active this pumps one slice batch
    /// instead (minors are forbidden mid-major).
    pub gc_every_n_allocs: Option<u64>,
    /// Yield control back to the mutator after every Nth
    /// incremental-major slice (when the pending allocation already
    /// fits), instead of pumping slices back-to-back to completion.
    /// This deterministically forces allocation, loads, and stores to
    /// interleave with an active major — the test hook for the
    /// read-barrier, black-allocation, and write-during-slice paths.
    pub yield_every_n_slices: Option<u64>,
}

/// How a run ended.
#[derive(Clone, Debug, PartialEq)]
pub enum VmResult {
    /// Normal halt with a final word value.
    Value(i64),
    /// An exception reached the top level; the payload is the exception
    /// name.
    Uncaught(String),
    /// The cycle budget was exhausted.
    OutOfFuel,
    /// The heap ceiling was reached: after a major collection — the
    /// final attempt — there was still no room for the requested
    /// allocation (or allocation failure was injected via
    /// [`FaultInject::fail_alloc_at`]).
    HeapExhausted,
    /// A memory-safety or control-flow violation was contained: the
    /// payload says what was attempted (out-of-bounds load/store, jump
    /// through a non-label, oversized object, ...).
    Fault(String),
}

/// Counters from a run.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunStats {
    /// Modelled machine cycles (the execution-time metric).
    pub cycles: u64,
    /// Instructions executed.
    pub instrs: u64,
    /// Words allocated (the heap-allocation metric).
    pub alloc_words: u64,
    /// Objects allocated (each `Alloc`/`AllocArr`/`FBox`/string alloc).
    pub n_allocs: u64,
    /// Words copied by the collector (minor plus major).
    pub gc_copied_words: u64,
    /// Number of collections (minor plus major).
    pub n_gcs: u64,
    /// Minor (nursery) collections.
    pub n_minor_gcs: u64,
    /// Major (full) collections, including every collection in
    /// [`GcMode::Semispace`].
    pub n_major_gcs: u64,
    /// Words moved from the nursery into tenured space.
    pub promoted_words: u64,
    /// High-water mark of the remembered set, in slots.
    pub remembered_peak: u64,
    /// Cycles spent inside the collector (minor plus major; also
    /// mirrored in `cycles_by_class[InstrClass::Gc]`).
    pub gc_cycles: u64,
    /// Cycles spent in minor collections.
    pub minor_gc_cycles: u64,
    /// Cycles spent in major collections.
    pub major_gc_cycles: u64,
    /// Longest single minor-collection pause, in cycles.
    pub max_minor_pause: u64,
    /// Longest single major-collection pause, in cycles. With a pause
    /// budget set this is the longest *slice*, not the whole major.
    pub max_major_pause: u64,
    /// Major-collection slices run (a stop-the-world major counts as
    /// one slice, so without a budget this equals `n_major_gcs`).
    pub major_slices: u64,
    /// Words copied by the incremental-major read barrier during
    /// mutator time. Charged to GC cycles but to no recorded pause —
    /// this is the smeared-out copy work that bounded pauses buy.
    pub barrier_words: u64,
    /// Recorded pauses that exceeded the configured pause budget
    /// (always 0 when no budget is set). Overruns can only come from a
    /// single oversized object or an outsized remembered set; they are
    /// reported here rather than silently violating the bound.
    pub pause_overruns: u64,
    /// Histogram of minor-collection pause lengths; bucket `i` counts
    /// pauses below [`PAUSE_BUCKET_LIMITS`]`[i]` cycles (last bucket
    /// unbounded).
    pub pause_hist_minor: [u64; N_PAUSE_BUCKETS],
    /// Histogram of major-collection pause lengths (per slice when
    /// incremental), bucketed like `pause_hist_minor`.
    pub pause_hist_major: [u64; N_PAUSE_BUCKETS],
    /// Cycle breakdown indexed by [`InstrClass`] discriminant; sums to
    /// `cycles` on every exit path, normal or trapping.
    pub cycles_by_class: [u64; crate::isa::N_INSTR_CLASSES],
    /// Executed-instruction breakdown indexed by [`InstrClass`]
    /// discriminant; the `Gc` pseudo-class entry stays zero.
    pub instrs_by_class: [u64; crate::isa::N_INSTR_CLASSES],
}

/// Number of buckets in the GC pause histograms.
pub const N_PAUSE_BUCKETS: usize = 8;

/// Exclusive upper bounds of the first seven pause-histogram buckets,
/// in cycles; the eighth bucket is unbounded.
pub const PAUSE_BUCKET_LIMITS: [u64; N_PAUSE_BUCKETS - 1] =
    [256, 1_024, 4_096, 16_384, 65_536, 262_144, 1_048_576];

/// The histogram bucket a pause of the given length falls into.
pub fn pause_bucket(cycles: u64) -> usize {
    PAUSE_BUCKET_LIMITS
        .iter()
        .position(|&lim| cycles < lim)
        .unwrap_or(N_PAUSE_BUCKETS - 1)
}

/// The outcome of running a program.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// Result value or failure.
    pub result: VmResult,
    /// Performance counters.
    pub stats: RunStats,
    /// Everything `print`ed.
    pub output: String,
}

/// Extracts the exception name from an uncaught-exception packet,
/// defensively: any malformed link in the chain yields `"?"` rather
/// than an out-of-bounds access.
fn uncaught_name(heap: &Heap, pkt: u32) -> String {
    // The packet is either a constant-exception tag record `[name]` or a
    // carrying packet `[tag, v]` with `tag = [name]`. Every pointer is
    // resolved first: mid-incremental-major (or after an overflow
    // finalization) a link may still be a from-space forwarding stub.
    let pkt = heap.resolve(pkt);
    if heap.check_access(pkt, 0, 1).is_err() {
        return "?".into();
    }
    let f0 = heap.resolve(heap.load(pkt, 0));
    if heap.check_access(f0, 0, 1).is_err() {
        return "?".into();
    }
    let (k, _, _) = decode(heap.desc(f0));
    if k == ObjKind::Str as u32 {
        return heap.read_string(f0);
    }
    let inner = heap.resolve(heap.load(f0, 0));
    if heap.check_string(inner).is_ok() {
        heap.read_string(inner)
    } else {
        "?".into()
    }
}

/// Runs a machine program to completion. Never panics on program
/// behavior: abnormal executions end in a trapping [`VmResult`].
pub fn run(prog: &MachineProgram, cfg: &VmConfig) -> Outcome {
    let mut vm = VmInstance::new(prog, cfg);
    while !vm.run_slice(u64::MAX) {}
    vm.into_outcome()
}

/// A resumable VM instance: one tenant's program, heap, registers, and
/// counters. [`run`] drives one to completion in a single call; the
/// [`VmScheduler`](crate::sched::VmScheduler) time-slices many of them
/// on a cycle quantum, each against its own heap quota.
pub struct VmInstance<'p> {
    prog: &'p MachineProgram,
    cfg: VmConfig,
    heap: Heap,
    pool_ptrs: Vec<u32>,
    regs: [u32; MAX_REGS as usize],
    fregs: [f64; MAX_REGS as usize],
    handler: u32,
    stats: RunStats,
    output: String,
    block: usize,
    pc: usize,
    /// Incremental-major slices run since the last fault-injected
    /// yield (drives [`FaultInject::yield_every_n_slices`]).
    yield_ctr: u64,
    finished: Option<VmResult>,
}

impl<'p> VmInstance<'p> {
    /// Prepares a run: builds the heap (sizing the immortal region to
    /// the literal pool so pool loading can never exhaust it) and loads
    /// the literals. A literal the descriptor cannot encode marks the
    /// instance finished with a `Fault` before the first step.
    pub fn new(prog: &'p MachineProgram, cfg: &VmConfig) -> VmInstance<'p> {
        let static_need: usize = prog
            .pool
            .iter()
            .map(|s| s.len().div_ceil(4).max(1) + 1)
            .sum::<usize>()
            + 1;
        let finished = prog
            .pool
            .iter()
            .find(|s| s.len() > Heap::MAX_STRING_BYTES)
            .map(|s| {
                VmResult::Fault(format!(
                    "string literal of {} bytes exceeds the descriptor limit of {}",
                    s.len(),
                    Heap::MAX_STRING_BYTES
                ))
            });
        let mut heap = Heap::new(&HeapConfig {
            mode: cfg.gc_mode,
            nursery_words: cfg.nursery_words,
            tenured_words: cfg.tenured_words,
            promote_after: cfg.promote_after,
            static_words: static_need.max(64 * 1024),
            max_pause_cycles: cfg.max_pause_cycles,
        });
        let mut pool_ptrs = Vec::with_capacity(prog.pool.len());
        if finished.is_none() {
            for s in &prog.pool {
                pool_ptrs.push(heap.alloc_static_string(s));
            }
        }
        VmInstance {
            prog,
            cfg: *cfg,
            heap,
            pool_ptrs,
            regs: [tag_int(0); MAX_REGS as usize],
            fregs: [0.0f64; MAX_REGS as usize],
            handler: tag_int(0),
            stats: RunStats::default(),
            output: String::new(),
            block: prog.entry as usize,
            pc: 0,
            yield_ctr: 0,
            finished,
        }
    }

    /// True once the run has ended (normally or by trap).
    pub fn finished(&self) -> bool {
        self.finished.is_some()
    }

    /// The final result, once finished.
    pub fn result(&self) -> Option<&VmResult> {
        self.finished.as_ref()
    }

    /// Counters so far (heap counters are synced at every slice exit).
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// Everything printed so far.
    pub fn output(&self) -> &str {
        &self.output
    }

    /// The instance's heap (tests use this to assert consistency on
    /// trap paths).
    pub fn heap(&self) -> &Heap {
        &self.heap
    }

    /// Consumes a finished instance into an [`Outcome`].
    ///
    /// # Panics
    ///
    /// Panics if the run has not finished.
    pub fn into_outcome(self) -> Outcome {
        Outcome {
            result: self.finished.expect("VM instance still running"),
            stats: self.stats,
            output: self.output,
        }
    }

    /// Executes until roughly `quantum` more cycles have been charged
    /// (preemption is checked between instructions, so a slice overruns
    /// by at most one instruction's cost — including its GC pause,
    /// which a pause budget keeps bounded) or the run ends. Returns
    /// `true` when the run is finished, `false` when preempted.
    pub fn run_slice(&mut self, quantum: u64) -> bool {
        if self.finished.is_some() {
            return true;
        }
        let stop_at = self.stats.cycles.saturating_add(quantum);
        // Split borrows: block/pc/handler are copied into locals (the
        // hot interpreter state) and written back at every exit.
        let prog = self.prog;
        let cfg = &self.cfg;
        let heap = &mut self.heap;
        let pool_ptrs = &self.pool_ptrs;
        let regs = &mut self.regs;
        let fregs = &mut self.fregs;
        let stats = &mut self.stats;
        let output = &mut self.output;
        let yield_ctr = &mut self.yield_ctr;
        let mut block = self.block;
        let mut pc = self.pc;
        let mut handler = self.handler;
        // `None` = preempted mid-run; `Some` = the run ended.
        let mut out: Option<VmResult> = None;

        macro_rules! spillcost {
            ($($r:expr),*) => {
                $( if $r >= HW_REGS { stats.cycles += 2; } )*
            };
        }

        loop {
            if stats.cycles > cfg.max_cycles {
                out = Some(VmResult::OutOfFuel);
                break;
            }
            if stats.cycles >= stop_at {
                break; // quantum spent: preempted between instructions
            }
            if block >= prog.blocks.len() || pc >= prog.blocks[block].instrs.len() {
                out = Some(VmResult::Fault(format!(
                    "instruction fetch out of range: block {block} pc {pc}"
                )));
                break;
            }
            let instr = &prog.blocks[block].instrs[pc];
            pc += 1;
            stats.instrs += 1;
            // Per-class accounting: everything the match arm adds to
            // `cycles` lands in the instruction's class, except collector
            // work (`gc` bumps `gc_cycles`), which lands in the Gc
            // pseudo-class so the breakdown still sums to `cycles`.
            let class = instr.class() as usize;
            stats.instrs_by_class[class] += 1;
            let cycles_before = stats.cycles;
            let gc_cycles_before = stats.gc_cycles;

            // Ends the run mid-instruction: attributes the cycles this
            // instruction accrued so far to its class (keeping the
            // by-class breakdown summing to `cycles`) and breaks out.
            macro_rules! trap {
                ($result:expr) => {{
                    drain_barrier(heap, stats);
                    let gc_delta = stats.gc_cycles - gc_cycles_before;
                    stats.cycles_by_class[class] += stats.cycles - cycles_before - gc_delta;
                    stats.cycles_by_class[InstrClass::Gc as usize] += gc_delta;
                    out = Some($result);
                    break;
                }};
            }
            // Bounds-checks one object access; traps as a Fault on
            // violation.
            macro_rules! mem {
                ($ptr:expr, $off:expr, $n:expr) => {
                    if let Err(why) = heap.check_access($ptr, $off, $n) {
                        trap!(VmResult::Fault(why));
                    }
                };
            }
            // Validates a string operand; traps as a Fault on violation.
            macro_rules! strchk {
                ($ptr:expr) => {
                    if let Err(why) = heap.check_string($ptr) {
                        trap!(VmResult::Fault(why));
                    }
                };
            }
            // Runs the allocation protocol for `want` body words:
            // injected failure, forced or scheduled minor collection
            // (or slice pumping while an incremental major is active),
            // then a major collection — pumped to completion unless a
            // fault-injected yield interleaves the mutator — as the
            // final attempt before the HeapExhausted trap.
            macro_rules! alloc_guard {
                ($want:expr) => {{
                    let want: usize = $want;
                    if cfg.fault.fail_alloc_at == Some(heap.n_allocs + 1) {
                        trap!(VmResult::HeapExhausted);
                    }
                    if heap.is_exhausted() {
                        trap!(VmResult::HeapExhausted);
                    }
                    let forced = cfg
                        .fault
                        .gc_every_n_allocs
                        .is_some_and(|k| k > 0 && (heap.n_allocs + 1) % k == 0);
                    // `true` once a full major has finished in this
                    // guard: if room is still short after that, the
                    // heap is genuinely exhausted.
                    let mut major_done = false;
                    if heap.major_active() {
                        // Resume the yielded incremental major.
                        match pump_major(
                            heap,
                            &mut regs[..],
                            &mut handler,
                            stats,
                            cfg,
                            yield_ctr,
                            want,
                        ) {
                            Pump::Overflow => trap!(VmResult::HeapExhausted),
                            Pump::Done => major_done = true,
                            Pump::Yielded => {}
                        }
                    } else if forced || heap.needs_gc(want) {
                        if heap.is_generational() || cfg.max_pause_cycles == 0 {
                            gc(
                                heap,
                                &mut regs[..],
                                &mut handler,
                                stats,
                                GcKind::Minor,
                                cfg.max_pause_cycles,
                            );
                        } else {
                            // Semispace with a pause budget: the
                            // scheduled full collection is sliced too.
                            match pump_major(
                                heap,
                                &mut regs[..],
                                &mut handler,
                                stats,
                                cfg,
                                yield_ctr,
                                want,
                            ) {
                                Pump::Overflow => trap!(VmResult::HeapExhausted),
                                Pump::Done => major_done = true,
                                Pump::Yielded => {}
                            }
                        }
                    }
                    if !heap.has_room(want) {
                        if major_done {
                            trap!(VmResult::HeapExhausted);
                        }
                        match pump_major(
                            heap,
                            &mut regs[..],
                            &mut handler,
                            stats,
                            cfg,
                            yield_ctr,
                            want,
                        ) {
                            Pump::Overflow => trap!(VmResult::HeapExhausted),
                            _ => {}
                        }
                        if !heap.has_room(want) {
                            trap!(VmResult::HeapExhausted);
                        }
                    }
                }};
            }

            match instr {
                Instr::Move { d, s } => {
                    spillcost!(*d, *s);
                    stats.cycles += 1;
                    regs[*d as usize] = regs[*s as usize];
                }
                Instr::FMove { d, s } => {
                    spillcost!(*d, *s);
                    stats.cycles += 1;
                    fregs[*d as usize] = fregs[*s as usize];
                }
                Instr::LoadI { d, imm } => {
                    spillcost!(*d);
                    stats.cycles += 1;
                    regs[*d as usize] = tag_int(*imm);
                }
                Instr::LoadF { d, imm } => {
                    spillcost!(*d);
                    stats.cycles += 2;
                    fregs[*d as usize] = *imm;
                }
                Instr::LoadStr { d, pool } => {
                    spillcost!(*d);
                    stats.cycles += 1;
                    if *pool as usize >= pool_ptrs.len() {
                        trap!(VmResult::Fault(format!(
                            "string pool index {pool} out of range"
                        )));
                    }
                    regs[*d as usize] = pool_ptrs[*pool as usize];
                }
                Instr::LoadLabel { d, label } => {
                    spillcost!(*d);
                    stats.cycles += 1;
                    regs[*d as usize] = tag_int(*label as i64);
                }
                Instr::Arith { op, d, a, b } => {
                    spillcost!(*d, *a, *b);
                    let x = untag_int(regs[*a as usize]);
                    let y = untag_int(regs[*b as usize]);
                    let (v, cost) = match op {
                        AOp::Add => (x.wrapping_add(y), 1),
                        AOp::Sub => (x.wrapping_sub(y), 1),
                        AOp::Mul => (x.wrapping_mul(y), 4),
                        AOp::Div => (if y == 0 { 0 } else { x.wrapping_div(y) }, 12),
                        AOp::Mod => (if y == 0 { 0 } else { x.rem_euclid(y) }, 12),
                    };
                    stats.cycles += cost;
                    regs[*d as usize] = tag_int(v);
                }
                Instr::FArith { op, d, a, b } => {
                    spillcost!(*d, *a, *b);
                    let x = fregs[*a as usize];
                    let y = fregs[*b as usize];
                    let (v, cost) = match op {
                        FOp::Add => (x + y, 2),
                        FOp::Sub => (x - y, 2),
                        FOp::Mul => (x * y, 4),
                        FOp::Div => (x / y, 12),
                    };
                    stats.cycles += cost;
                    fregs[*d as usize] = v;
                }
                Instr::FUnary { op, d, a } => {
                    spillcost!(*d, *a);
                    let x = fregs[*a as usize];
                    let (v, cost) = match op {
                        FUOp::Neg => (-x, 2),
                        FUOp::Sqrt => (x.sqrt(), 20),
                        FUOp::Sin => (x.sin(), 20),
                        FUOp::Cos => (x.cos(), 20),
                        FUOp::Atan => (x.atan(), 20),
                        FUOp::Exp => (x.exp(), 20),
                        FUOp::Ln => (x.ln(), 20),
                    };
                    stats.cycles += cost;
                    fregs[*d as usize] = v;
                }
                Instr::Floor { d, a } => {
                    spillcost!(*d, *a);
                    stats.cycles += 3;
                    regs[*d as usize] = tag_int(fregs[*a as usize].floor() as i64);
                }
                Instr::IntToReal { d, a } => {
                    spillcost!(*d, *a);
                    stats.cycles += 3;
                    fregs[*d as usize] = untag_int(regs[*a as usize]) as f64;
                }
                Instr::Load { d, base, off } => {
                    spillcost!(*d, *base);
                    stats.cycles += 2;
                    mem!(regs[*base as usize], *off as usize, 1);
                    // Through the read barrier: during an active
                    // incremental major a from-space target is evacuated
                    // and the slot healed, so registers only ever hold
                    // to-space pointers.
                    regs[*d as usize] = heap.load_healed(regs[*base as usize], *off as usize);
                }
                Instr::Store { s, base, off } => {
                    spillcost!(*s, *base);
                    stats.cycles += 2;
                    mem!(regs[*base as usize], *off as usize, 1);
                    // Unboxed stores skip the barrier; the compiler must
                    // prove the value is a non-pointer (paper §4.4).
                    debug_assert!(
                        !heap.would_need_barrier(regs[*base as usize], regs[*s as usize]),
                        "unbarriered Store created a tenured→nursery pointer"
                    );
                    heap.store(regs[*base as usize], *off as usize, regs[*s as usize]);
                }
                Instr::StoreWB { s, base, off } => {
                    spillcost!(*s, *base);
                    stats.cycles += 4; // store + generational bookkeeping
                    mem!(regs[*base as usize], *off as usize, 1);
                    heap.store_barriered(regs[*base as usize], *off as usize, regs[*s as usize]);
                }
                Instr::FLoad { d, base, off } => {
                    spillcost!(*d, *base);
                    stats.cycles += 4; // two single-word loads
                    mem!(regs[*base as usize], *off as usize, 2);
                    fregs[*d as usize] = heap.load_f64(regs[*base as usize], *off as usize);
                }
                Instr::FStore { s, base, off } => {
                    spillcost!(*s, *base);
                    stats.cycles += 4;
                    mem!(regs[*base as usize], *off as usize, 2);
                    heap.store_f64(regs[*base as usize], *off as usize, fregs[*s as usize]);
                }
                Instr::LoadIdx { d, base, idx } => {
                    spillcost!(*d, *base, *idx);
                    stats.cycles += 3;
                    let i = untag_int(regs[*idx as usize]);
                    if i < 0 {
                        trap!(VmResult::Fault(format!("negative index {i}")));
                    }
                    mem!(regs[*base as usize], i as usize, 1);
                    regs[*d as usize] = heap.load_healed(regs[*base as usize], i as usize);
                }
                Instr::StoreIdx { s, base, idx } => {
                    spillcost!(*s, *base, *idx);
                    stats.cycles += 3;
                    let i = untag_int(regs[*idx as usize]);
                    if i < 0 {
                        trap!(VmResult::Fault(format!("negative index {i}")));
                    }
                    mem!(regs[*base as usize], i as usize, 1);
                    debug_assert!(
                        !heap.would_need_barrier(regs[*base as usize], regs[*s as usize]),
                        "unbarriered StoreIdx created a tenured→nursery pointer"
                    );
                    heap.store(regs[*base as usize], i as usize, regs[*s as usize]);
                }
                Instr::StoreIdxWB { s, base, idx } => {
                    spillcost!(*s, *base, *idx);
                    stats.cycles += 5;
                    let i = untag_int(regs[*idx as usize]);
                    if i < 0 {
                        trap!(VmResult::Fault(format!("negative index {i}")));
                    }
                    mem!(regs[*base as usize], i as usize, 1);
                    heap.store_barriered(regs[*base as usize], i as usize, regs[*s as usize]);
                }
                Instr::Alloc {
                    d,
                    kind,
                    words,
                    flts,
                } => {
                    spillcost!(*d);
                    let total = words.len() + 2 * flts.len();
                    alloc_guard!(total);
                    let k = match kind {
                        AllocKind::Record => ObjKind::Record,
                        AllocKind::Ref => ObjKind::Ref,
                    };
                    let Some(p) = heap.alloc(k, words.len() as u32, flts.len() as u32) else {
                        trap!(VmResult::HeapExhausted);
                    };
                    // Initializing stores go through the barrier too: large
                    // objects allocate directly in tenured space and may be
                    // initialized with nursery pointers.
                    for (i, r) in words.iter().enumerate() {
                        heap.store_barriered(p, i, regs[*r as usize]);
                    }
                    for (j, f) in flts.iter().enumerate() {
                        heap.store_f64(p, words.len() + 2 * j, fregs[*f as usize]);
                    }
                    stats.cycles += 1 + total as u64 + 2 * flts.len() as u64;
                    regs[*d as usize] = p;
                }
                Instr::AllocArr { d, len, init } => {
                    spillcost!(*d, *len, *init);
                    let n = untag_int(regs[*len as usize]).max(0) as usize;
                    if n > Heap::MAX_ARRAY_LEN {
                        trap!(VmResult::Fault(format!(
                            "array of {n} elements exceeds the descriptor limit of {}",
                            Heap::MAX_ARRAY_LEN
                        )));
                    }
                    alloc_guard!(n);
                    let Some(p) = heap.alloc(ObjKind::Array, n as u32, 0) else {
                        trap!(VmResult::HeapExhausted);
                    };
                    let v = regs[*init as usize];
                    for i in 0..n {
                        heap.store_barriered(p, i, v);
                    }
                    stats.cycles += 1 + n as u64;
                    regs[*d as usize] = p;
                }
                Instr::ArrLen { d, a } => {
                    spillcost!(*d, *a);
                    stats.cycles += 2;
                    mem!(regs[*a as usize], 0, 0);
                    let (_, nscan, _) = crate::heap::decode(heap.desc(regs[*a as usize]));
                    regs[*d as usize] = tag_int(nscan as i64);
                }
                Instr::FBox { d, s } => {
                    spillcost!(*d, *s);
                    alloc_guard!(2);
                    let Some(p) = heap.alloc(ObjKind::BoxedFloat, 0, 1) else {
                        trap!(VmResult::HeapExhausted);
                    };
                    heap.store_f64(p, 0, fregs[*s as usize]);
                    stats.cycles += 1 + 2 + 4; // descriptor+bump, then two stores
                    regs[*d as usize] = p;
                }
                Instr::FUnbox { d, s } => {
                    spillcost!(*d, *s);
                    stats.cycles += 4;
                    mem!(regs[*s as usize], 0, 2);
                    fregs[*d as usize] = heap.load_f64(regs[*s as usize], 0);
                }
                Instr::Branch { op, a, b, target } => {
                    spillcost!(*a, *b);
                    stats.cycles += 1;
                    let x = regs[*a as usize];
                    let y = regs[*b as usize];
                    let taken = match op {
                        BrOp::Lt => untag_int(x) < untag_int(y),
                        BrOp::Le => untag_int(x) <= untag_int(y),
                        BrOp::Gt => untag_int(x) > untag_int(y),
                        BrOp::Ge => untag_int(x) >= untag_int(y),
                        BrOp::Eq => x == y,
                        BrOp::Ne => x != y,
                        BrOp::Boxed => is_ptr(x),
                    };
                    if !taken {
                        pc = *target as usize;
                    }
                }
                Instr::FBranch { op, a, b, target } => {
                    spillcost!(*a, *b);
                    stats.cycles += 2;
                    let x = fregs[*a as usize];
                    let y = fregs[*b as usize];
                    let taken = match op {
                        FBrOp::Lt => x < y,
                        FBrOp::Le => x <= y,
                        FBrOp::Gt => x > y,
                        FBrOp::Ge => x >= y,
                        FBrOp::Eq => x == y,
                        FBrOp::Ne => x != y,
                    };
                    if !taken {
                        pc = *target as usize;
                    }
                }
                Instr::SBranch { op, a, b, target } => {
                    spillcost!(*a, *b);
                    strchk!(regs[*a as usize]);
                    strchk!(regs[*b as usize]);
                    let sa = heap.read_string(regs[*a as usize]);
                    let sb = heap.read_string(regs[*b as usize]);
                    stats.cycles += 3 + (sa.len().min(sb.len()) as u64) / 4;
                    let taken = match op {
                        SBrOp::Eq => sa == sb,
                        SBrOp::Ne => sa != sb,
                        SBrOp::Lt => sa < sb,
                        SBrOp::Le => sa <= sb,
                        SBrOp::Gt => sa > sb,
                        SBrOp::Ge => sa >= sb,
                    };
                    if !taken {
                        pc = *target as usize;
                    }
                }
                Instr::PolyEqBranch { a, b, target } => {
                    spillcost!(*a, *b);
                    let (wa, wb) = (regs[*a as usize], regs[*b as usize]);
                    if is_ptr(wa) {
                        mem!(wa, 0, 0);
                    }
                    if is_ptr(wb) {
                        mem!(wb, 0, 0);
                    }
                    let (eq, cost) = heap.poly_eq(wa, wb);
                    // Runtime-call overhead (save/restore, dispatch on the
                    // descriptor) plus the traversal.
                    stats.cycles += 15 + 3 * cost;
                    if !eq {
                        pc = *target as usize;
                    }
                }
                Instr::Switch {
                    r,
                    lo,
                    table,
                    default,
                } => {
                    spillcost!(*r);
                    stats.cycles += 3; // bounds check + table load + indirect jump
                    let n = untag_int(regs[*r as usize]);
                    let idx = n - lo;
                    pc = if idx >= 0 && (idx as usize) < table.len() {
                        table[idx as usize] as usize
                    } else {
                        *default as usize
                    };
                }
                Instr::Jump { label } => {
                    stats.cycles += 1;
                    if cfg.fp3_overhead {
                        stats.cycles += 1;
                    }
                    block = *label as usize;
                    pc = 0;
                }
                Instr::JumpReg { r } => {
                    spillcost!(*r);
                    stats.cycles += 2;
                    if cfg.fp3_overhead {
                        stats.cycles += 1;
                    }
                    let w = regs[*r as usize];
                    if is_ptr(w) {
                        trap!(VmResult::Fault(format!(
                            "jump through non-label {w:#x} from block {} ({})",
                            block, prog.blocks[block].name
                        )));
                    }
                    let target = untag_int(w);
                    if target < 0 || target as usize >= prog.blocks.len() {
                        trap!(VmResult::Fault(format!(
                            "jump target {target} out of range from block {} ({})",
                            block, prog.blocks[block].name
                        )));
                    }
                    block = target as usize;
                    pc = 0;
                }
                Instr::Rt { op, d, a, b, fa } => {
                    spillcost!(*d, *a, *b);
                    match op {
                        RtOp::StrCat => {
                            strchk!(regs[*a as usize]);
                            strchk!(regs[*b as usize]);
                            let sa = heap.read_string(regs[*a as usize]);
                            let sb = heap.read_string(regs[*b as usize]);
                            let joined = sa + &sb;
                            if joined.len() > Heap::MAX_STRING_BYTES {
                                trap!(VmResult::Fault(format!(
                                    "string of {} bytes exceeds the descriptor limit of {}",
                                    joined.len(),
                                    Heap::MAX_STRING_BYTES
                                )));
                            }
                            let words = joined.len().div_ceil(4);
                            alloc_guard!(words);
                            stats.cycles += 5 + words as u64;
                            let Some(p) = heap.alloc_string(&joined) else {
                                trap!(VmResult::HeapExhausted);
                            };
                            regs[*d as usize] = p;
                        }
                        RtOp::StrSize => {
                            stats.cycles += 2;
                            strchk!(regs[*a as usize]);
                            regs[*d as usize] = tag_int(heap.string_len(regs[*a as usize]) as i64);
                        }
                        RtOp::StrSub => {
                            stats.cycles += 3;
                            strchk!(regs[*a as usize]);
                            let i = untag_int(regs[*b as usize]);
                            let len = heap.string_len(regs[*a as usize]);
                            if i < 0 || i as usize >= len {
                                trap!(VmResult::Fault(format!(
                                    "string index {i} out of bounds for length {len}"
                                )));
                            }
                            regs[*d as usize] =
                                tag_int(heap.string_byte(regs[*a as usize], i as usize) as i64);
                        }
                        RtOp::IntToString => {
                            let s = untag_int(regs[*a as usize]).to_string();
                            let words = s.len().div_ceil(4);
                            alloc_guard!(words);
                            stats.cycles += 20;
                            let Some(p) = heap.alloc_string(&s) else {
                                trap!(VmResult::HeapExhausted);
                            };
                            regs[*d as usize] = p;
                        }
                        RtOp::RealToString => {
                            let s = format!("{:?}", fregs[*fa as usize]);
                            let words = s.len().div_ceil(4);
                            alloc_guard!(words);
                            stats.cycles += 40;
                            let Some(p) = heap.alloc_string(&s) else {
                                trap!(VmResult::HeapExhausted);
                            };
                            regs[*d as usize] = p;
                        }
                    }
                }
                Instr::GetHdlr { d } => {
                    spillcost!(*d);
                    stats.cycles += 1;
                    regs[*d as usize] = handler;
                }
                Instr::SetHdlr { s } => {
                    spillcost!(*s);
                    stats.cycles += 1;
                    handler = regs[*s as usize];
                }
                Instr::Print { s } => {
                    strchk!(regs[*s as usize]);
                    let txt = heap.read_string(regs[*s as usize]);
                    stats.cycles += 5 + txt.len() as u64 / 4;
                    output.push_str(&txt);
                }
                Instr::Halt { s } => {
                    // Resolve so a pointer-valued result is reported at its
                    // canonical address (identity outside an active major).
                    let w = heap.resolve(regs[*s as usize]);
                    let v = if is_ptr(w) { w as i64 } else { untag_int(w) };
                    trap!(VmResult::Value(v));
                }
                Instr::Uncaught { s } => {
                    let name = uncaught_name(heap, regs[*s as usize]);
                    trap!(VmResult::Uncaught(name));
                }
            }
            // Mutator-time barrier copies (if any) land in the Gc
            // pseudo-class via the same delta mechanism as pauses.
            drain_barrier(heap, stats);
            let gc_delta = stats.gc_cycles - gc_cycles_before;
            stats.cycles_by_class[class] += stats.cycles - cycles_before - gc_delta;
            stats.cycles_by_class[InstrClass::Gc as usize] += gc_delta;
        }

        // Common exit: persist the interpreter state and sync the
        // heap's lifetime counters so the stats are accurate whether
        // the run ended or was merely preempted.
        self.block = block;
        self.pc = pc;
        self.handler = handler;
        self.stats.alloc_words = self.heap.alloc_words;
        self.stats.n_allocs = self.heap.n_allocs;
        self.stats.gc_copied_words = self.heap.copied_words;
        self.stats.n_gcs = self.heap.n_gcs;
        self.stats.n_minor_gcs = self.heap.n_minor_gcs;
        self.stats.n_major_gcs = self.heap.n_major_gcs;
        self.stats.promoted_words = self.heap.promoted_words;
        self.stats.remembered_peak = self.heap.rs_peak;
        self.finished = out;
        self.finished.is_some()
    }
}

/// How a [`pump_major`] call ended.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Pump {
    /// The major collection completed.
    Done,
    /// A fault-injected yield handed control back to the mutator with
    /// the collection still active (only when the pending allocation
    /// already fits).
    Yielded,
    /// To-space overflow: the heap is finalized exhausted.
    Overflow,
}

/// Flips into a major collection (if one is not already active) and
/// pumps slices. Without a pause budget this is the stop-the-world
/// collector: flip plus one unbounded slice under a single recorded
/// pause, byte-for-byte the pre-incremental behavior. With a budget,
/// the flip and every slice are separate recorded pauses sized by
/// [`Heap::slice_words`]; slices run back-to-back (identical copy order
/// and placement to stop-the-world) unless
/// [`FaultInject::yield_every_n_slices`] interleaves the mutator.
fn pump_major(
    heap: &mut Heap,
    regs: &mut [u32],
    handler: &mut u32,
    stats: &mut RunStats,
    cfg: &VmConfig,
    yield_ctr: &mut u64,
    want: usize,
) -> Pump {
    let budget = cfg.max_pause_cycles;
    let slice_words = Heap::slice_words(budget);
    if !heap.major_active() {
        if budget == 0 {
            let before = heap.copied_words;
            let ok = begin_with_roots(heap, regs, handler)
                && heap.major_slice(u64::MAX) == SliceOutcome::Done;
            stats.major_slices += 1;
            record_pause(stats, false, 200 + 3 * (heap.copied_words - before), budget);
            return if ok { Pump::Done } else { Pump::Overflow };
        }
        // The flip (root forwarding) is the one atomic step and its own
        // recorded pause; roots are few, so it only overruns the budget
        // on a genuinely oversized root object (reported, not hidden).
        let before = heap.copied_words;
        let ok = begin_with_roots(heap, regs, handler);
        record_pause(stats, false, 200 + 3 * (heap.copied_words - before), budget);
        if !ok {
            return Pump::Overflow;
        }
    }
    loop {
        let before = heap.copied_words;
        let outcome = heap.major_slice(slice_words);
        stats.major_slices += 1;
        record_pause(stats, false, 200 + 3 * (heap.copied_words - before), budget);
        match outcome {
            SliceOutcome::Done => return Pump::Done,
            SliceOutcome::Overflow => return Pump::Overflow,
            SliceOutcome::More => {
                *yield_ctr += 1;
                if let Some(n) = cfg.fault.yield_every_n_slices {
                    if n > 0 && (*yield_ctr).is_multiple_of(n) && heap.has_room(want) {
                        return Pump::Yielded;
                    }
                }
            }
        }
    }
}

/// Forwards all VM roots (registers plus the handler) into a fresh
/// major collection.
fn begin_with_roots(heap: &mut Heap, regs: &mut [u32], handler: &mut u32) -> bool {
    let mut roots: Vec<&mut u32> = Vec::with_capacity(regs.len() + 1);
    for r in regs.iter_mut() {
        roots.push(r);
    }
    roots.push(handler);
    heap.begin_major(&mut roots)
}

/// Charges one recorded GC pause: total and per-class cycle counters,
/// the max-pause watermark, the pause histogram, and — when a budget is
/// set — the overrun counter for pauses that exceed it.
fn record_pause(stats: &mut RunStats, minor: bool, cost: u64, budget: u64) {
    stats.cycles += cost;
    stats.gc_cycles += cost;
    if minor {
        stats.minor_gc_cycles += cost;
        stats.max_minor_pause = stats.max_minor_pause.max(cost);
        stats.pause_hist_minor[pause_bucket(cost)] += 1;
    } else {
        stats.major_gc_cycles += cost;
        stats.max_major_pause = stats.max_major_pause.max(cost);
        stats.pause_hist_major[pause_bucket(cost)] += 1;
    }
    if budget > 0 && cost > budget {
        stats.pause_overruns += 1;
    }
}

/// Charges read-barrier copy work accumulated since the last drain to
/// GC time (it belongs to no recorded pause — that is the point of the
/// barrier: the copy happens during mutator time).
fn drain_barrier(heap: &mut Heap, stats: &mut RunStats) {
    let words = heap.take_barrier_words();
    if words > 0 {
        let cost = 3 * words;
        stats.cycles += cost;
        stats.gc_cycles += cost;
        stats.major_gc_cycles += cost;
        stats.barrier_words += words;
    }
}

/// Runs one stop-the-world collection with the VM roots (all registers
/// plus the handler), charges the pause to the stats, and reports
/// whether the collection completed (`false` only when a major
/// collection overflowed: live data exceeds one tenured semispace).
fn gc(
    heap: &mut Heap,
    regs: &mut [u32],
    handler: &mut u32,
    stats: &mut RunStats,
    kind: GcKind,
    budget: u64,
) -> bool {
    let before = heap.copied_words;
    let rs_slots = heap.remembered_len() as u64;
    let complete = {
        let mut roots: Vec<&mut u32> = Vec::with_capacity(regs.len() + 1);
        let mut iter = regs.iter_mut();
        for r in &mut iter {
            roots.push(r);
        }
        roots.push(handler);
        heap.collect(&mut roots, kind)
    };
    let copied = heap.copied_words - before;
    // In semispace mode every collection is a full one and pays the
    // major-pause cost.
    let minor_ran = kind == GcKind::Minor && heap.is_generational();
    let cost = if minor_ran {
        150 + 3 * copied + rs_slots
    } else {
        200 + 3 * copied
    };
    if !minor_ran {
        stats.major_slices += 1;
    }
    record_pause(stats, minor_ran, cost, budget);
    complete
}
