//! The abstract machine interpreter with a DECstation-5000-class cost
//! model.
//!
//! Cycle costs (documented in DESIGN.md): ALU and moves are 1 cycle;
//! loads/stores 2; raw float loads/stores 4 (two single-word memory
//! operations, paper footnote 7); float add/sub 2, mul 4, div 12,
//! transcendental 20; allocation is 1 + one cycle per word written;
//! write-barriered stores pay 2 extra cycles; the copying collector pays
//! 3 cycles per word copied. Accesses to spill-modelled registers
//! (32..63) pay 2 extra cycles each, approximating spill loads/stores.

use crate::heap::{is_ptr, tag_int, untag_int, Heap, ObjKind};
use crate::isa::*;

/// VM configuration.
#[derive(Clone, Copy, Debug)]
pub struct VmConfig {
    /// Model the three floating-point callee-save registers of `sml.fp3`:
    /// every inter-function control transfer pays 3 extra float moves.
    pub fp3_overhead: bool,
    /// Simulated nursery size (words): a collection runs each time this
    /// much has been allocated.
    pub nursery_words: usize,
    /// Cycle budget; exceeded runs abort with [`VmResult::OutOfFuel`].
    pub max_cycles: u64,
}

impl Default for VmConfig {
    fn default() -> VmConfig {
        VmConfig {
            fp3_overhead: false,
            nursery_words: 64 * 1024,
            max_cycles: 20_000_000_000,
        }
    }
}

/// How a run ended.
#[derive(Clone, Debug, PartialEq)]
pub enum VmResult {
    /// Normal halt with a final word value.
    Value(i64),
    /// An exception reached the top level; the payload is the exception
    /// name.
    Uncaught(String),
    /// The cycle budget was exhausted.
    OutOfFuel,
}

/// Counters from a run.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunStats {
    /// Modelled machine cycles (the execution-time metric).
    pub cycles: u64,
    /// Instructions executed.
    pub instrs: u64,
    /// Words allocated (the heap-allocation metric).
    pub alloc_words: u64,
    /// Objects allocated (each `Alloc`/`AllocArr`/`FBox`/string alloc).
    pub n_allocs: u64,
    /// Words copied by the collector.
    pub gc_copied_words: u64,
    /// Number of collections.
    pub n_gcs: u64,
    /// Cycles spent inside the Cheney collector (also mirrored in
    /// `cycles_by_class[InstrClass::Gc]`).
    pub gc_cycles: u64,
    /// Cycle breakdown indexed by [`InstrClass`] discriminant; sums to
    /// `cycles`.
    pub cycles_by_class: [u64; crate::isa::N_INSTR_CLASSES],
    /// Executed-instruction breakdown indexed by [`InstrClass`]
    /// discriminant; the `Gc` pseudo-class entry stays zero.
    pub instrs_by_class: [u64; crate::isa::N_INSTR_CLASSES],
}

/// The outcome of running a program.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// Result value or failure.
    pub result: VmResult,
    /// Performance counters.
    pub stats: RunStats,
    /// Everything `print`ed.
    pub output: String,
}

/// Runs a machine program to completion.
pub fn run(prog: &MachineProgram, cfg: &VmConfig) -> Outcome {
    let mut heap = Heap::new(8 << 20, 64 * 1024);
    heap.nursery_words = cfg.nursery_words;
    let mut pool_ptrs = Vec::with_capacity(prog.pool.len());
    for s in &prog.pool {
        pool_ptrs.push(heap.alloc_static_string(s));
    }

    let mut regs = [tag_int(0); MAX_REGS as usize];
    let mut fregs = [0.0f64; MAX_REGS as usize];
    let mut handler = tag_int(0);
    let mut stats = RunStats::default();
    let mut output = String::new();

    let mut block = prog.entry as usize;
    let mut pc = 0usize;

    macro_rules! spillcost {
        ($($r:expr),*) => {
            $( if $r >= HW_REGS { stats.cycles += 2; } )*
        };
    }

    loop {
        if stats.cycles > cfg.max_cycles {
            return Outcome {
                result: VmResult::OutOfFuel,
                stats,
                output,
            };
        }
        let instr = &prog.blocks[block].instrs[pc];
        pc += 1;
        stats.instrs += 1;
        // Per-class accounting: everything the match arm adds to
        // `cycles` lands in the instruction's class, except collector
        // work (`gc` bumps `gc_cycles`), which lands in the Gc
        // pseudo-class so the breakdown still sums to `cycles`.
        let class = instr.class() as usize;
        stats.instrs_by_class[class] += 1;
        let cycles_before = stats.cycles;
        let gc_cycles_before = stats.gc_cycles;
        match instr {
            Instr::Move { d, s } => {
                spillcost!(*d, *s);
                stats.cycles += 1;
                regs[*d as usize] = regs[*s as usize];
            }
            Instr::FMove { d, s } => {
                spillcost!(*d, *s);
                stats.cycles += 1;
                fregs[*d as usize] = fregs[*s as usize];
            }
            Instr::LoadI { d, imm } => {
                spillcost!(*d);
                stats.cycles += 1;
                regs[*d as usize] = tag_int(*imm);
            }
            Instr::LoadF { d, imm } => {
                spillcost!(*d);
                stats.cycles += 2;
                fregs[*d as usize] = *imm;
            }
            Instr::LoadStr { d, pool } => {
                spillcost!(*d);
                stats.cycles += 1;
                regs[*d as usize] = pool_ptrs[*pool as usize];
            }
            Instr::LoadLabel { d, label } => {
                spillcost!(*d);
                stats.cycles += 1;
                regs[*d as usize] = tag_int(*label as i64);
            }
            Instr::Arith { op, d, a, b } => {
                spillcost!(*d, *a, *b);
                let x = untag_int(regs[*a as usize]);
                let y = untag_int(regs[*b as usize]);
                let (v, cost) = match op {
                    AOp::Add => (x.wrapping_add(y), 1),
                    AOp::Sub => (x.wrapping_sub(y), 1),
                    AOp::Mul => (x.wrapping_mul(y), 4),
                    AOp::Div => (if y == 0 { 0 } else { x.wrapping_div(y) }, 12),
                    AOp::Mod => (if y == 0 { 0 } else { x.rem_euclid(y) }, 12),
                };
                stats.cycles += cost;
                regs[*d as usize] = tag_int(v);
            }
            Instr::FArith { op, d, a, b } => {
                spillcost!(*d, *a, *b);
                let x = fregs[*a as usize];
                let y = fregs[*b as usize];
                let (v, cost) = match op {
                    FOp::Add => (x + y, 2),
                    FOp::Sub => (x - y, 2),
                    FOp::Mul => (x * y, 4),
                    FOp::Div => (x / y, 12),
                };
                stats.cycles += cost;
                fregs[*d as usize] = v;
            }
            Instr::FUnary { op, d, a } => {
                spillcost!(*d, *a);
                let x = fregs[*a as usize];
                let (v, cost) = match op {
                    FUOp::Neg => (-x, 2),
                    FUOp::Sqrt => (x.sqrt(), 20),
                    FUOp::Sin => (x.sin(), 20),
                    FUOp::Cos => (x.cos(), 20),
                    FUOp::Atan => (x.atan(), 20),
                    FUOp::Exp => (x.exp(), 20),
                    FUOp::Ln => (x.ln(), 20),
                };
                stats.cycles += cost;
                fregs[*d as usize] = v;
            }
            Instr::Floor { d, a } => {
                spillcost!(*d, *a);
                stats.cycles += 3;
                regs[*d as usize] = tag_int(fregs[*a as usize].floor() as i64);
            }
            Instr::IntToReal { d, a } => {
                spillcost!(*d, *a);
                stats.cycles += 3;
                fregs[*d as usize] = untag_int(regs[*a as usize]) as f64;
            }
            Instr::Load { d, base, off } => {
                spillcost!(*d, *base);
                stats.cycles += 2;
                regs[*d as usize] = heap.load(regs[*base as usize], *off as usize);
            }
            Instr::Store { s, base, off } => {
                spillcost!(*s, *base);
                stats.cycles += 2;
                heap.store(regs[*base as usize], *off as usize, regs[*s as usize]);
            }
            Instr::StoreWB { s, base, off } => {
                spillcost!(*s, *base);
                stats.cycles += 4; // store + generational bookkeeping
                heap.store(regs[*base as usize], *off as usize, regs[*s as usize]);
            }
            Instr::FLoad { d, base, off } => {
                spillcost!(*d, *base);
                stats.cycles += 4; // two single-word loads
                fregs[*d as usize] = heap.load_f64(regs[*base as usize], *off as usize);
            }
            Instr::FStore { s, base, off } => {
                spillcost!(*s, *base);
                stats.cycles += 4;
                heap.store_f64(regs[*base as usize], *off as usize, fregs[*s as usize]);
            }
            Instr::LoadIdx { d, base, idx } => {
                spillcost!(*d, *base, *idx);
                stats.cycles += 3;
                let i = untag_int(regs[*idx as usize]) as usize;
                regs[*d as usize] = heap.load(regs[*base as usize], i);
            }
            Instr::StoreIdx { s, base, idx } => {
                spillcost!(*s, *base, *idx);
                stats.cycles += 3;
                let i = untag_int(regs[*idx as usize]) as usize;
                heap.store(regs[*base as usize], i, regs[*s as usize]);
            }
            Instr::StoreIdxWB { s, base, idx } => {
                spillcost!(*s, *base, *idx);
                stats.cycles += 5;
                let i = untag_int(regs[*idx as usize]) as usize;
                heap.store(regs[*base as usize], i, regs[*s as usize]);
            }
            Instr::Alloc {
                d,
                kind,
                words,
                flts,
            } => {
                spillcost!(*d);
                let total = words.len() + 2 * flts.len();
                if heap.needs_gc(total) {
                    gc(&mut heap, &mut regs, &mut handler, &mut stats);
                }
                let k = match kind {
                    AllocKind::Record => ObjKind::Record,
                    AllocKind::Ref => ObjKind::Ref,
                };
                let p = heap.alloc(k, words.len() as u32, flts.len() as u32);
                for (i, r) in words.iter().enumerate() {
                    heap.store(p, i, regs[*r as usize]);
                }
                for (j, f) in flts.iter().enumerate() {
                    heap.store_f64(p, words.len() + 2 * j, fregs[*f as usize]);
                }
                stats.cycles += 1 + total as u64 + 2 * flts.len() as u64;
                regs[*d as usize] = p;
            }
            Instr::AllocArr { d, len, init } => {
                spillcost!(*d, *len, *init);
                let n = untag_int(regs[*len as usize]).max(0) as usize;
                if heap.needs_gc(n) {
                    gc(&mut heap, &mut regs, &mut handler, &mut stats);
                }
                let p = heap.alloc(ObjKind::Array, n as u32, 0);
                let v = regs[*init as usize];
                for i in 0..n {
                    heap.store(p, i, v);
                }
                stats.cycles += 1 + n as u64;
                regs[*d as usize] = p;
            }
            Instr::ArrLen { d, a } => {
                spillcost!(*d, *a);
                stats.cycles += 2;
                let (_, nscan, _) = crate::heap::decode(heap.desc(regs[*a as usize]));
                regs[*d as usize] = tag_int(nscan as i64);
            }
            Instr::FBox { d, s } => {
                spillcost!(*d, *s);
                if heap.needs_gc(2) {
                    gc(&mut heap, &mut regs, &mut handler, &mut stats);
                }
                let p = heap.alloc(ObjKind::BoxedFloat, 0, 1);
                heap.store_f64(p, 0, fregs[*s as usize]);
                stats.cycles += 1 + 2 + 4; // descriptor+bump, then two stores
                regs[*d as usize] = p;
            }
            Instr::FUnbox { d, s } => {
                spillcost!(*d, *s);
                stats.cycles += 4;
                fregs[*d as usize] = heap.load_f64(regs[*s as usize], 0);
            }
            Instr::Branch { op, a, b, target } => {
                spillcost!(*a, *b);
                stats.cycles += 1;
                let x = regs[*a as usize];
                let y = regs[*b as usize];
                let taken = match op {
                    BrOp::Lt => untag_int(x) < untag_int(y),
                    BrOp::Le => untag_int(x) <= untag_int(y),
                    BrOp::Gt => untag_int(x) > untag_int(y),
                    BrOp::Ge => untag_int(x) >= untag_int(y),
                    BrOp::Eq => x == y,
                    BrOp::Ne => x != y,
                    BrOp::Boxed => is_ptr(x),
                };
                if !taken {
                    pc = *target as usize;
                }
            }
            Instr::FBranch { op, a, b, target } => {
                spillcost!(*a, *b);
                stats.cycles += 2;
                let x = fregs[*a as usize];
                let y = fregs[*b as usize];
                let taken = match op {
                    FBrOp::Lt => x < y,
                    FBrOp::Le => x <= y,
                    FBrOp::Gt => x > y,
                    FBrOp::Ge => x >= y,
                    FBrOp::Eq => x == y,
                    FBrOp::Ne => x != y,
                };
                if !taken {
                    pc = *target as usize;
                }
            }
            Instr::SBranch { op, a, b, target } => {
                spillcost!(*a, *b);
                let sa = heap.read_string(regs[*a as usize]);
                let sb = heap.read_string(regs[*b as usize]);
                stats.cycles += 3 + (sa.len().min(sb.len()) as u64) / 4;
                let taken = match op {
                    SBrOp::Eq => sa == sb,
                    SBrOp::Ne => sa != sb,
                    SBrOp::Lt => sa < sb,
                    SBrOp::Le => sa <= sb,
                    SBrOp::Gt => sa > sb,
                    SBrOp::Ge => sa >= sb,
                };
                if !taken {
                    pc = *target as usize;
                }
            }
            Instr::PolyEqBranch { a, b, target } => {
                spillcost!(*a, *b);
                let (eq, cost) = heap.poly_eq(regs[*a as usize], regs[*b as usize]);
                // Runtime-call overhead (save/restore, dispatch on the
                // descriptor) plus the traversal.
                stats.cycles += 15 + 3 * cost;
                if !eq {
                    pc = *target as usize;
                }
            }
            Instr::Switch {
                r,
                lo,
                table,
                default,
            } => {
                spillcost!(*r);
                stats.cycles += 3; // bounds check + table load + indirect jump
                let n = untag_int(regs[*r as usize]);
                let idx = n - lo;
                pc = if idx >= 0 && (idx as usize) < table.len() {
                    table[idx as usize] as usize
                } else {
                    *default as usize
                };
            }
            Instr::Jump { label } => {
                stats.cycles += 1;
                if cfg.fp3_overhead {
                    stats.cycles += 1;
                }
                block = *label as usize;
                pc = 0;
            }
            Instr::JumpReg { r } => {
                spillcost!(*r);
                stats.cycles += 2;
                if cfg.fp3_overhead {
                    stats.cycles += 1;
                }
                let w = regs[*r as usize];
                assert!(
                    !is_ptr(w),
                    "JumpReg to non-label {w:#x} from block {} ({}) pc {}",
                    block,
                    prog.blocks[block].name,
                    pc - 1
                );
                block = untag_int(w) as usize;
                assert!(
                    block < prog.blocks.len(),
                    "JumpReg out of range {block} from {}",
                    prog.blocks[block.min(prog.blocks.len() - 1)].name
                );
                pc = 0;
            }
            Instr::Rt { op, d, a, b, fa } => {
                spillcost!(*d, *a, *b);
                match op {
                    RtOp::StrCat => {
                        let sa = heap.read_string(regs[*a as usize]);
                        let sb = heap.read_string(regs[*b as usize]);
                        let joined = sa + &sb;
                        let words = joined.len().div_ceil(4);
                        if heap.needs_gc(words) {
                            gc(&mut heap, &mut regs, &mut handler, &mut stats);
                        }
                        stats.cycles += 5 + words as u64;
                        regs[*d as usize] = heap.alloc_string(&joined);
                    }
                    RtOp::StrSize => {
                        stats.cycles += 2;
                        regs[*d as usize] = tag_int(heap.string_len(regs[*a as usize]) as i64);
                    }
                    RtOp::StrSub => {
                        stats.cycles += 3;
                        let i = untag_int(regs[*b as usize]) as usize;
                        regs[*d as usize] = tag_int(heap.string_byte(regs[*a as usize], i) as i64);
                    }
                    RtOp::IntToString => {
                        let s = untag_int(regs[*a as usize]).to_string();
                        let words = s.len().div_ceil(4);
                        if heap.needs_gc(words) {
                            gc(&mut heap, &mut regs, &mut handler, &mut stats);
                        }
                        stats.cycles += 20;
                        regs[*d as usize] = heap.alloc_string(&s);
                    }
                    RtOp::RealToString => {
                        let s = format!("{:?}", fregs[*fa as usize]);
                        let words = s.len().div_ceil(4);
                        if heap.needs_gc(words) {
                            gc(&mut heap, &mut regs, &mut handler, &mut stats);
                        }
                        stats.cycles += 40;
                        regs[*d as usize] = heap.alloc_string(&s);
                    }
                }
            }
            Instr::GetHdlr { d } => {
                spillcost!(*d);
                stats.cycles += 1;
                regs[*d as usize] = handler;
            }
            Instr::SetHdlr { s } => {
                spillcost!(*s);
                stats.cycles += 1;
                handler = regs[*s as usize];
            }
            Instr::Print { s } => {
                let txt = heap.read_string(regs[*s as usize]);
                stats.cycles += 5 + txt.len() as u64 / 4;
                output.push_str(&txt);
            }
            Instr::Halt { s } => {
                stats.alloc_words = heap.alloc_words;
                stats.n_allocs = heap.n_allocs;
                stats.gc_copied_words = heap.copied_words;
                stats.n_gcs = heap.n_gcs;
                let w = regs[*s as usize];
                let v = if is_ptr(w) { w as i64 } else { untag_int(w) };
                return Outcome {
                    result: VmResult::Value(v),
                    stats,
                    output,
                };
            }
            Instr::Uncaught { s } => {
                stats.alloc_words = heap.alloc_words;
                stats.n_allocs = heap.n_allocs;
                stats.gc_copied_words = heap.copied_words;
                stats.n_gcs = heap.n_gcs;
                // The packet is either a constant-exception tag record
                // `[name]` or a carrying packet `[tag, v]` with
                // `tag = [name]`.
                let pkt = regs[*s as usize];
                let name = if is_ptr(pkt) {
                    let f0 = heap.load(pkt, 0);
                    if is_ptr(f0) {
                        let (k, _, _) = crate::heap::decode(heap.desc(f0));
                        if k == ObjKind::Str as u32 {
                            heap.read_string(f0)
                        } else {
                            let inner = heap.load(f0, 0);
                            if is_ptr(inner) {
                                heap.read_string(inner)
                            } else {
                                "?".into()
                            }
                        }
                    } else {
                        "?".into()
                    }
                } else {
                    "?".into()
                };
                return Outcome {
                    result: VmResult::Uncaught(name),
                    stats,
                    output,
                };
            }
        }
        let gc_delta = stats.gc_cycles - gc_cycles_before;
        stats.cycles_by_class[class] += stats.cycles - cycles_before - gc_delta;
        stats.cycles_by_class[InstrClass::Gc as usize] += gc_delta;
    }
}

fn gc(heap: &mut Heap, regs: &mut [u32], handler: &mut u32, stats: &mut RunStats) {
    let before = heap.copied_words;
    {
        let mut roots: Vec<&mut u32> = Vec::with_capacity(regs.len() + 1);
        let mut iter = regs.iter_mut();
        for r in &mut iter {
            roots.push(r);
        }
        roots.push(handler);
        heap.collect(&mut roots);
    }
    let cost = 200 + 3 * (heap.copied_words - before);
    stats.cycles += cost;
    stats.gc_cycles += cost;
}
