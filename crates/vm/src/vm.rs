//! The abstract machine interpreter with a DECstation-5000-class cost
//! model.
//!
//! Cycle costs (documented in DESIGN.md): ALU and moves are 1 cycle;
//! loads/stores 2; raw float loads/stores 4 (two single-word memory
//! operations, paper footnote 7); float add/sub 2, mul 4, div 12,
//! transcendental 20; allocation is 1 + one cycle per word written;
//! write-barriered stores pay 2 extra cycles; the copying collector pays
//! 3 cycles per word copied on top of a fixed pause (150 cycles for a
//! minor collection plus 1 per remembered-set slot scanned, 200 for a
//! major or semispace collection). Accesses to spill-modelled registers
//! (32..63) pay 2 extra cycles each, approximating spill loads/stores.
//!
//! Integer `div`/`mod` use SML floor semantics ([`sml_cps::floor_div`] /
//! [`sml_cps::floor_mod`]): the quotient rounds toward negative
//! infinity, the remainder takes the divisor's sign, and the
//! quotient–remainder law `a = b*(a div b) + a mod b` holds for every
//! sign combination. A zero divisor traps as [`VmResult::Fault`] (the
//! compiler guards source-level `div`/`mod` with an explicit zero test
//! that raises the `Div` exception first, so this trap is only
//! reachable from hand-built bytecode).
//!
//! # Execution engines
//!
//! Two dispatch engines share these semantics, selected by
//! [`VmConfig::dispatch`]:
//!
//! * [`Dispatch::Decode`] — the classic fetch/decode `match` loop over
//!   [`Instr`].
//! * [`Dispatch::Threaded`] — the [`Instr`] stream is pre-decoded into a
//!   flat threaded stream of compact handler records, with a peephole
//!   selector fusing hot pairs (`LoadI`+`Arith`, load/compare+branch,
//!   `Move`+`Jump`) into superinstructions (see `threaded.rs`).
//!
//! Both engines call the same `#[inline(always)]` per-instruction
//! handlers on [`Engine`], so results, output, and every [`RunStats`]
//! counter are identical between them; only wall-clock time differs.
//!
//! # Fault containment
//!
//! The interpreter never panics on program behavior: every memory access
//! is bounds-checked against the target object's descriptor and traps as
//! [`VmResult::Fault`] on violation, heap exhaustion (a collection that
//! still leaves no room) traps as [`VmResult::HeapExhausted`], and the
//! cycle budget traps as [`VmResult::OutOfFuel`]. All exit paths —
//! normal and trapping — finalize the heap counters in [`RunStats`], so
//! `cycles_by_class` sums to `cycles` and allocation totals are accurate
//! no matter how the run ended. [`FaultInject`] exposes the trap paths
//! to tests deterministically.

use crate::heap::{
    decode, is_ptr, tag_int, untag_int, GcKind, GcMode, Heap, HeapConfig, ObjKind, SliceOutcome,
};
use crate::isa::*;
use crate::threaded::ThreadedProgram;
use sml_cps::{floor_div, floor_mod};

/// Which execution engine runs the program (see the module docs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Dispatch {
    /// The classic decode-dispatch interpreter loop.
    #[default]
    Decode,
    /// Pre-decoded threaded dispatch with peephole superinstructions.
    Threaded,
}

impl Dispatch {
    /// Stable lowercase name (the `--dispatch=` spelling and the JSON
    /// `engine` value).
    pub fn name(self) -> &'static str {
        match self {
            Dispatch::Decode => "decode",
            Dispatch::Threaded => "threaded",
        }
    }
}

impl std::str::FromStr for Dispatch {
    type Err = String;

    fn from_str(s: &str) -> Result<Dispatch, String> {
        match s {
            "decode" => Ok(Dispatch::Decode),
            "threaded" => Ok(Dispatch::Threaded),
            other => Err(format!(
                "unknown dispatch engine '{other}' (expected decode|threaded)"
            )),
        }
    }
}

/// Static facts about the execution engine a run used: which engine,
/// and — for [`Dispatch::Threaded`] — how the pre-decoder did. These
/// are properties of the (program, engine) pair, not runtime counters,
/// so they live beside [`RunStats`] rather than inside it and are
/// identical across runs of the same program.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DispatchStats {
    /// The engine that executed the program.
    pub engine: Dispatch,
    /// Superinstructions the peephole selector fused (0 under
    /// [`Dispatch::Decode`]).
    pub superinstructions: u64,
    /// Total length of the pre-decoded threaded stream, in handler
    /// records (0 under [`Dispatch::Decode`] — nothing is pre-decoded).
    pub stream_len: u64,
}

/// VM configuration.
#[derive(Clone, Copy, Debug)]
pub struct VmConfig {
    /// Model the three floating-point callee-save registers of `sml.fp3`:
    /// every inter-function control transfer pays 3 extra float moves.
    pub fp3_overhead: bool,
    /// Collector selection (see [`GcMode`]); generational by default.
    pub gc_mode: GcMode,
    /// Nursery semispace size in words (generational mode); in
    /// [`GcMode::Semispace`], the allocation interval between
    /// collections.
    pub nursery_words: usize,
    /// Cycle budget; exceeded runs trap with [`VmResult::OutOfFuel`].
    pub max_cycles: u64,
    /// Tenured semispace size in words — the heap ceiling. When a major
    /// collection still leaves no room for an allocation, the run traps
    /// with [`VmResult::HeapExhausted`] instead of aborting the process.
    pub tenured_words: usize,
    /// Minor collections an object must survive before promotion into
    /// tenured space (generational mode; at least 1).
    pub promote_after: u32,
    /// GC pause budget in cycles; `0` means unbounded, i.e. today's
    /// stop-the-world major collections. When nonzero, major
    /// collections run as incremental slices sized to the budget and
    /// the nursery is clamped so minor pauses fit it too. The invariant
    /// is mutator-visible: no recorded pause exceeds the budget except
    /// for a single oversized object (or an outsized remembered set),
    /// which is *reported* in [`RunStats::pause_overruns`] rather than
    /// silently violated.
    pub max_pause_cycles: u64,
    /// Execution engine (see [`Dispatch`]); decode-dispatch by default.
    /// Engine choice never changes results or [`RunStats`] counters —
    /// only wall-clock speed.
    pub dispatch: Dispatch,
    /// Fault-injection knobs for robustness testing.
    pub fault: FaultInject,
}

impl Default for VmConfig {
    fn default() -> VmConfig {
        VmConfig {
            fp3_overhead: false,
            gc_mode: GcMode::Generational,
            nursery_words: 64 * 1024,
            max_cycles: 20_000_000_000,
            tenured_words: 8 << 20,
            promote_after: 2,
            max_pause_cycles: 0,
            dispatch: Dispatch::Decode,
            fault: FaultInject::default(),
        }
    }
}

/// Deterministic fault-injection surface (see `docs/ROBUSTNESS.md`).
///
/// Together with a shrunken `max_cycles` or `tenured_words`, these knobs
/// let tests drive the VM down every trap path and assert that the
/// [`RunStats`] counters stay internally consistent.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultInject {
    /// Simulate allocation failure at the Nth object allocation
    /// (1-based): that allocation traps [`VmResult::HeapExhausted`].
    pub fail_alloc_at: Option<u64>,
    /// Force a collection before every kth object allocation, stressing
    /// GC root handling far beyond what the nursery schedule would.
    /// While an incremental major is active this pumps one slice batch
    /// instead (minors are forbidden mid-major).
    pub gc_every_n_allocs: Option<u64>,
    /// Yield control back to the mutator after every Nth
    /// incremental-major slice (when the pending allocation already
    /// fits), instead of pumping slices back-to-back to completion.
    /// This deterministically forces allocation, loads, and stores to
    /// interleave with an active major — the test hook for the
    /// read-barrier, black-allocation, and write-during-slice paths.
    pub yield_every_n_slices: Option<u64>,
}

/// How a run ended.
#[derive(Clone, Debug, PartialEq)]
pub enum VmResult {
    /// Normal halt with a final word value.
    Value(i64),
    /// An exception reached the top level; the payload is the exception
    /// name.
    Uncaught(String),
    /// The cycle budget was exhausted.
    OutOfFuel,
    /// The heap ceiling was reached: after a major collection — the
    /// final attempt — there was still no room for the requested
    /// allocation (or allocation failure was injected via
    /// [`FaultInject::fail_alloc_at`]).
    HeapExhausted,
    /// A memory-safety or control-flow violation was contained: the
    /// payload says what was attempted (out-of-bounds load/store, jump
    /// through a non-label, division by zero, oversized object, ...).
    Fault(String),
}

/// Counters from a run. Fully deterministic — a program run twice (or
/// under both [`Dispatch`] engines) produces equal `RunStats`, which is
/// what the `PartialEq` derive is for.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Modelled machine cycles (the execution-time metric).
    pub cycles: u64,
    /// Instructions executed.
    pub instrs: u64,
    /// Words allocated (the heap-allocation metric).
    pub alloc_words: u64,
    /// Objects allocated (each `Alloc`/`AllocArr`/`FBox`/string alloc).
    pub n_allocs: u64,
    /// Words copied by the collector (minor plus major).
    pub gc_copied_words: u64,
    /// Number of collections (minor plus major).
    pub n_gcs: u64,
    /// Minor (nursery) collections.
    pub n_minor_gcs: u64,
    /// Major (full) collections, including every collection in
    /// [`GcMode::Semispace`].
    pub n_major_gcs: u64,
    /// Words moved from the nursery into tenured space.
    pub promoted_words: u64,
    /// High-water mark of the remembered set, in slots.
    pub remembered_peak: u64,
    /// Cycles spent inside the collector (minor plus major; also
    /// mirrored in `cycles_by_class[InstrClass::Gc]`).
    pub gc_cycles: u64,
    /// Cycles spent in minor collections.
    pub minor_gc_cycles: u64,
    /// Cycles spent in major collections.
    pub major_gc_cycles: u64,
    /// Longest single minor-collection pause, in cycles.
    pub max_minor_pause: u64,
    /// Longest single major-collection pause, in cycles. With a pause
    /// budget set this is the longest *slice*, not the whole major.
    pub max_major_pause: u64,
    /// Major-collection slices run (a stop-the-world major counts as
    /// one slice, so without a budget this equals `n_major_gcs`).
    pub major_slices: u64,
    /// Words copied by the incremental-major read barrier during
    /// mutator time. Charged to GC cycles but to no recorded pause —
    /// this is the smeared-out copy work that bounded pauses buy.
    pub barrier_words: u64,
    /// Recorded pauses that exceeded the configured pause budget
    /// (always 0 when no budget is set). Overruns can only come from a
    /// single oversized object or an outsized remembered set; they are
    /// reported here rather than silently violating the bound.
    pub pause_overruns: u64,
    /// Histogram of minor-collection pause lengths; bucket `i` counts
    /// pauses below [`PAUSE_BUCKET_LIMITS`]`[i]` cycles (last bucket
    /// unbounded).
    pub pause_hist_minor: [u64; N_PAUSE_BUCKETS],
    /// Histogram of major-collection pause lengths (per slice when
    /// incremental), bucketed like `pause_hist_minor`.
    pub pause_hist_major: [u64; N_PAUSE_BUCKETS],
    /// Cycle breakdown indexed by [`InstrClass`] discriminant; sums to
    /// `cycles` on every exit path, normal or trapping.
    pub cycles_by_class: [u64; crate::isa::N_INSTR_CLASSES],
    /// Executed-instruction breakdown indexed by [`InstrClass`]
    /// discriminant; the `Gc` pseudo-class entry stays zero.
    pub instrs_by_class: [u64; crate::isa::N_INSTR_CLASSES],
}

/// Number of buckets in the GC pause histograms.
pub const N_PAUSE_BUCKETS: usize = 8;

/// Exclusive upper bounds of the first seven pause-histogram buckets,
/// in cycles; the eighth bucket is unbounded.
pub const PAUSE_BUCKET_LIMITS: [u64; N_PAUSE_BUCKETS - 1] =
    [256, 1_024, 4_096, 16_384, 65_536, 262_144, 1_048_576];

/// The histogram bucket a pause of the given length falls into.
pub fn pause_bucket(cycles: u64) -> usize {
    PAUSE_BUCKET_LIMITS
        .iter()
        .position(|&lim| cycles < lim)
        .unwrap_or(N_PAUSE_BUCKETS - 1)
}

/// The outcome of running a program.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// Result value or failure.
    pub result: VmResult,
    /// Performance counters.
    pub stats: RunStats,
    /// Everything `print`ed.
    pub output: String,
    /// Which engine ran, and what its pre-decoder did.
    pub dispatch: DispatchStats,
}

/// Extracts the exception name from an uncaught-exception packet,
/// defensively: any malformed link in the chain yields `"?"` rather
/// than an out-of-bounds access.
fn uncaught_name(heap: &Heap, pkt: u32) -> String {
    // The packet is either a constant-exception tag record `[name]` or a
    // carrying packet `[tag, v]` with `tag = [name]`. Every pointer is
    // resolved first: mid-incremental-major (or after an overflow
    // finalization) a link may still be a from-space forwarding stub.
    let pkt = heap.resolve(pkt);
    if heap.check_access(pkt, 0, 1).is_err() {
        return "?".into();
    }
    let f0 = heap.resolve(heap.load(pkt, 0));
    if heap.check_access(f0, 0, 1).is_err() {
        return "?".into();
    }
    let (k, _, _) = decode(heap.desc(f0));
    if k == ObjKind::Str as u32 {
        return heap.read_string(f0);
    }
    let inner = heap.resolve(heap.load(f0, 0));
    if heap.check_string(inner).is_ok() {
        heap.read_string(inner)
    } else {
        "?".into()
    }
}

/// Runs a machine program to completion. Never panics on program
/// behavior: abnormal executions end in a trapping [`VmResult`].
pub fn run(prog: &MachineProgram, cfg: &VmConfig) -> Outcome {
    let mut vm = VmInstance::new(prog, cfg);
    while !vm.run_slice(u64::MAX) {}
    vm.into_outcome()
}

/// How a [`VmInstance`] holds its program: borrowed for solo runs
/// (zero-copy, the [`run`] path), or shared for scheduler tenants so N
/// instances of one program keep a single [`MachineProgram`] alive
/// without a lifetime tying them to the caller's stack.
pub(crate) enum ProgRef<'p> {
    Borrowed(&'p MachineProgram),
    Shared(std::sync::Arc<MachineProgram>),
}

impl std::ops::Deref for ProgRef<'_> {
    type Target = MachineProgram;
    #[inline]
    fn deref(&self) -> &MachineProgram {
        match self {
            ProgRef::Borrowed(p) => p,
            ProgRef::Shared(p) => p,
        }
    }
}

/// A resumable VM instance: one tenant's program, heap, registers, and
/// counters. [`run`] drives one to completion in a single call; the
/// [`VmScheduler`](crate::sched::VmScheduler) time-slices many of them
/// on a cycle quantum, each against its own heap quota.
pub struct VmInstance<'p> {
    pub(crate) prog: ProgRef<'p>,
    pub(crate) cfg: VmConfig,
    pub(crate) heap: Heap,
    pub(crate) pool_ptrs: Vec<u32>,
    pub(crate) regs: [u32; MAX_REGS as usize],
    pub(crate) fregs: [f64; MAX_REGS as usize],
    pub(crate) handler: u32,
    pub(crate) stats: RunStats,
    pub(crate) output: String,
    pub(crate) block: usize,
    pub(crate) pc: usize,
    /// Incremental-major slices run since the last fault-injected
    /// yield (drives [`FaultInject::yield_every_n_slices`]).
    pub(crate) yield_ctr: u64,
    /// The pre-decoded threaded stream; built once at instance creation
    /// when [`VmConfig::dispatch`] is [`Dispatch::Threaded`].
    pub(crate) threaded: Option<ThreadedProgram>,
    pub(crate) finished: Option<VmResult>,
}

impl<'p> VmInstance<'p> {
    /// Prepares a run: builds the heap (sizing the immortal region to
    /// the literal pool so pool loading can never exhaust it), loads
    /// the literals, and — under [`Dispatch::Threaded`] — pre-decodes
    /// the instruction stream. A literal the descriptor cannot encode
    /// marks the instance finished with a `Fault` before the first
    /// step.
    pub fn new(prog: &'p MachineProgram, cfg: &VmConfig) -> VmInstance<'p> {
        VmInstance::with_prog(ProgRef::Borrowed(prog), cfg)
    }

    /// Like [`VmInstance::new`] but holding a shared, owned program
    /// handle: N tenants of one program pay one compilation (and one
    /// threaded pre-decode *each* — the stream is per-instance, the
    /// code is not). The `'static` lifetime frees the instance from
    /// the caller's stack, which is what lets the scheduler own its
    /// tenants.
    pub fn shared(prog: std::sync::Arc<MachineProgram>, cfg: &VmConfig) -> VmInstance<'static> {
        VmInstance::with_prog(ProgRef::Shared(prog), cfg)
    }

    fn with_prog(prog: ProgRef<'p>, cfg: &VmConfig) -> VmInstance<'p> {
        let static_need: usize = prog
            .pool
            .iter()
            .map(|s| s.len().div_ceil(4).max(1) + 1)
            .sum::<usize>()
            + 1;
        let finished = prog
            .pool
            .iter()
            .find(|s| s.len() > Heap::MAX_STRING_BYTES)
            .map(|s| {
                VmResult::Fault(format!(
                    "string literal of {} bytes exceeds the descriptor limit of {}",
                    s.len(),
                    Heap::MAX_STRING_BYTES
                ))
            });
        let mut heap = Heap::new(&HeapConfig {
            mode: cfg.gc_mode,
            nursery_words: cfg.nursery_words,
            tenured_words: cfg.tenured_words,
            promote_after: cfg.promote_after,
            static_words: static_need.max(64 * 1024),
            max_pause_cycles: cfg.max_pause_cycles,
        });
        let mut pool_ptrs = Vec::with_capacity(prog.pool.len());
        if finished.is_none() {
            for s in &prog.pool {
                pool_ptrs.push(heap.alloc_static_string(s));
            }
        }
        let threaded = match cfg.dispatch {
            Dispatch::Decode => None,
            Dispatch::Threaded => Some(crate::threaded::predecode(&prog)),
        };
        let entry = prog.entry as usize;
        VmInstance {
            prog,
            cfg: *cfg,
            heap,
            pool_ptrs,
            regs: [tag_int(0); MAX_REGS as usize],
            fregs: [0.0f64; MAX_REGS as usize],
            handler: tag_int(0),
            stats: RunStats::default(),
            output: String::new(),
            block: entry,
            pc: 0,
            yield_ctr: 0,
            threaded,
            finished,
        }
    }

    /// True once the run has ended (normally or by trap).
    pub fn finished(&self) -> bool {
        self.finished.is_some()
    }

    /// The final result, once finished.
    pub fn result(&self) -> Option<&VmResult> {
        self.finished.as_ref()
    }

    /// Counters so far (heap counters are synced at every slice exit).
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// Everything printed so far.
    pub fn output(&self) -> &str {
        &self.output
    }

    /// The instance's heap (tests use this to assert consistency on
    /// trap paths).
    pub fn heap(&self) -> &Heap {
        &self.heap
    }

    /// Which engine this instance runs on, and what its pre-decoder
    /// did (all zeros under [`Dispatch::Decode`]).
    pub fn dispatch_stats(&self) -> DispatchStats {
        match &self.threaded {
            Some(tp) => DispatchStats {
                engine: Dispatch::Threaded,
                superinstructions: tp.fused,
                stream_len: tp.stream_len,
            },
            None => DispatchStats {
                engine: Dispatch::Decode,
                superinstructions: 0,
                stream_len: 0,
            },
        }
    }

    /// Consumes a finished instance into an [`Outcome`].
    ///
    /// # Panics
    ///
    /// Panics if the run has not finished.
    pub fn into_outcome(self) -> Outcome {
        let dispatch = self.dispatch_stats();
        Outcome {
            result: self.finished.expect("VM instance still running"),
            stats: self.stats,
            output: self.output,
            dispatch,
        }
    }

    /// Executes until roughly `quantum` more cycles have been charged
    /// (preemption is checked between instructions, so a slice overruns
    /// by at most one instruction's cost — two for a threaded
    /// superinstruction pair, which never splits across slices —
    /// including its GC pause, which a pause budget keeps bounded) or
    /// the run ends. Returns `true` when the run is finished, `false`
    /// when preempted.
    pub fn run_slice(&mut self, quantum: u64) -> bool {
        match self.cfg.dispatch {
            Dispatch::Decode => self.run_slice_decode(quantum),
            Dispatch::Threaded => crate::threaded::run_slice_threaded(self, quantum),
        }
    }

    /// Mirrors the heap's lifetime counters into [`RunStats`]; called
    /// at every slice exit so the stats are accurate whether the run
    /// ended or was merely preempted.
    pub(crate) fn sync_heap_stats(&mut self) {
        self.stats.alloc_words = self.heap.alloc_words;
        self.stats.n_allocs = self.heap.n_allocs;
        self.stats.gc_copied_words = self.heap.copied_words;
        self.stats.n_gcs = self.heap.n_gcs;
        self.stats.n_minor_gcs = self.heap.n_minor_gcs;
        self.stats.n_major_gcs = self.heap.n_major_gcs;
        self.stats.promoted_words = self.heap.promoted_words;
        self.stats.remembered_peak = self.heap.rs_peak;
    }

    /// The decode-dispatch loop: fetch, account, execute via
    /// [`Engine::step`], attribute.
    fn run_slice_decode(&mut self, quantum: u64) -> bool {
        if self.finished.is_some() {
            return true;
        }
        let stop_at = self.stats.cycles.saturating_add(quantum);
        let mut out: Option<VmResult> = None;
        let (block, pc) = {
            let mut eng = Engine {
                prog: &self.prog,
                cfg: &self.cfg,
                heap: &mut self.heap,
                pool_ptrs: &self.pool_ptrs,
                regs: &mut self.regs,
                fregs: &mut self.fregs,
                handler: &mut self.handler,
                stats: &mut self.stats,
                output: &mut self.output,
                yield_ctr: &mut self.yield_ctr,
                block: self.block,
                pc: self.pc,
            };
            let prog = eng.prog;
            loop {
                if eng.stats.cycles > eng.cfg.max_cycles {
                    out = Some(VmResult::OutOfFuel);
                    break;
                }
                if eng.stats.cycles >= stop_at {
                    break; // quantum spent: preempted between instructions
                }
                if eng.block >= prog.blocks.len() || eng.pc >= prog.blocks[eng.block].instrs.len() {
                    out = Some(VmResult::Fault(format!(
                        "instruction fetch out of range: block {} pc {}",
                        eng.block, eng.pc
                    )));
                    break;
                }
                let instr = &prog.blocks[eng.block].instrs[eng.pc];
                eng.pc += 1;
                // Per-class accounting: everything the handler adds to
                // `cycles` lands in the instruction's class, except
                // collector work (which bumps `gc_cycles`); that lands
                // in the Gc pseudo-class so the breakdown still sums to
                // `cycles` — on trap exits too.
                let class = instr.class() as usize;
                eng.stats.instrs += 1;
                eng.stats.instrs_by_class[class] += 1;
                let cycles_before = eng.stats.cycles;
                let gc_before = eng.stats.gc_cycles;
                let r = eng.step(instr);
                drain_barrier(&mut *eng.heap, &mut *eng.stats);
                let gc_delta = eng.stats.gc_cycles - gc_before;
                eng.stats.cycles_by_class[class] += eng.stats.cycles - cycles_before - gc_delta;
                eng.stats.cycles_by_class[InstrClass::Gc as usize] += gc_delta;
                if let Err(end) = r {
                    out = Some(end);
                    break;
                }
            }
            (eng.block, eng.pc)
        };
        // Common exit: persist the interpreter state and sync the
        // heap's lifetime counters.
        self.block = block;
        self.pc = pc;
        self.sync_heap_stats();
        self.finished = out;
        self.finished.is_some()
    }
}

/// The per-instruction execution core shared by both dispatch engines:
/// split borrows of one [`VmInstance`]'s state plus the mobile
/// block/pc. Every handler is `#[inline(always)]` so each engine's
/// loop compiles to direct code; a handler returning `Err` ends the
/// run (normal halts travel that path too, exactly like traps, so the
/// loops have a single exit protocol).
pub(crate) struct Engine<'a, 'p> {
    pub(crate) prog: &'p MachineProgram,
    pub(crate) cfg: &'a VmConfig,
    pub(crate) heap: &'a mut Heap,
    pub(crate) pool_ptrs: &'a [u32],
    pub(crate) regs: &'a mut [u32; MAX_REGS as usize],
    pub(crate) fregs: &'a mut [f64; MAX_REGS as usize],
    pub(crate) handler: &'a mut u32,
    pub(crate) stats: &'a mut RunStats,
    pub(crate) output: &'a mut String,
    pub(crate) yield_ctr: &'a mut u64,
    pub(crate) block: usize,
    pub(crate) pc: usize,
}

impl<'p> Engine<'_, 'p> {
    /// Charges the spill cost for each named register above the
    /// hardware file.
    #[inline(always)]
    fn spill<const N: usize>(&mut self, rs: [u8; N]) {
        for r in rs {
            if r >= HW_REGS {
                self.stats.cycles += 2;
            }
        }
    }

    /// Bounds-checks one object access; `Err` is a Fault trap.
    #[inline(always)]
    fn mem(&mut self, ptr: u32, off: usize, n: usize) -> Result<(), VmResult> {
        self.heap.check_access(ptr, off, n).map_err(VmResult::Fault)
    }

    /// Validates a string operand; `Err` is a Fault trap.
    #[inline(always)]
    fn strchk(&mut self, ptr: u32) -> Result<(), VmResult> {
        self.heap.check_string(ptr).map_err(VmResult::Fault)
    }

    /// Runs the allocation protocol for `want` body words: injected
    /// failure, forced or scheduled minor collection (or slice pumping
    /// while an incremental major is active), then a major collection —
    /// pumped to completion unless a fault-injected yield interleaves
    /// the mutator — as the final attempt before the HeapExhausted
    /// trap.
    #[inline(always)]
    fn alloc_guard(&mut self, want: usize) -> Result<(), VmResult> {
        if self.cfg.fault.fail_alloc_at == Some(self.heap.n_allocs + 1) {
            return Err(VmResult::HeapExhausted);
        }
        if self.heap.is_exhausted() {
            return Err(VmResult::HeapExhausted);
        }
        let forced = self
            .cfg
            .fault
            .gc_every_n_allocs
            .is_some_and(|k| k > 0 && (self.heap.n_allocs + 1).is_multiple_of(k));
        // `true` once a full major has finished in this guard: if room
        // is still short after that, the heap is genuinely exhausted.
        let mut major_done = false;
        if self.heap.major_active() {
            // Resume the yielded incremental major.
            match pump_major(
                self.heap,
                &mut self.regs[..],
                self.handler,
                self.stats,
                self.cfg,
                self.yield_ctr,
                want,
            ) {
                Pump::Overflow => return Err(VmResult::HeapExhausted),
                Pump::Done => major_done = true,
                Pump::Yielded => {}
            }
        } else if forced || self.heap.needs_gc(want) {
            if self.heap.is_generational() || self.cfg.max_pause_cycles == 0 {
                gc(
                    self.heap,
                    &mut self.regs[..],
                    self.handler,
                    self.stats,
                    GcKind::Minor,
                    self.cfg.max_pause_cycles,
                );
            } else {
                // Semispace with a pause budget: the scheduled full
                // collection is sliced too.
                match pump_major(
                    self.heap,
                    &mut self.regs[..],
                    self.handler,
                    self.stats,
                    self.cfg,
                    self.yield_ctr,
                    want,
                ) {
                    Pump::Overflow => return Err(VmResult::HeapExhausted),
                    Pump::Done => major_done = true,
                    Pump::Yielded => {}
                }
            }
        }
        if !self.heap.has_room(want) {
            if major_done {
                return Err(VmResult::HeapExhausted);
            }
            if let Pump::Overflow = pump_major(
                self.heap,
                &mut self.regs[..],
                self.handler,
                self.stats,
                self.cfg,
                self.yield_ctr,
                want,
            ) {
                return Err(VmResult::HeapExhausted);
            }
            if !self.heap.has_room(want) {
                return Err(VmResult::HeapExhausted);
            }
        }
        Ok(())
    }

    // ----- per-instruction handlers ------------------------------------
    //
    // One method per hot (fixed-operand) instruction; both engines call
    // these, so the cost model and trap behavior live in exactly one
    // place. Vector-operand and runtime-call instructions execute
    // through `step`'s match arms (the threaded engine routes them via
    // its `Slow` record).

    #[inline(always)]
    pub(crate) fn m_move(&mut self, d: Reg, s: Reg) {
        self.spill([d, s]);
        self.stats.cycles += 1;
        self.regs[d as usize] = self.regs[s as usize];
    }

    #[inline(always)]
    pub(crate) fn m_fmove(&mut self, d: FReg, s: FReg) {
        self.spill([d, s]);
        self.stats.cycles += 1;
        self.fregs[d as usize] = self.fregs[s as usize];
    }

    #[inline(always)]
    pub(crate) fn m_loadi(&mut self, d: Reg, imm: i64) {
        self.spill([d]);
        self.stats.cycles += 1;
        self.regs[d as usize] = tag_int(imm);
    }

    #[inline(always)]
    pub(crate) fn m_loadf(&mut self, d: FReg, imm: f64) {
        self.spill([d]);
        self.stats.cycles += 2;
        self.fregs[d as usize] = imm;
    }

    #[inline(always)]
    pub(crate) fn m_loadstr(&mut self, d: Reg, pool: u32) -> Result<(), VmResult> {
        self.spill([d]);
        self.stats.cycles += 1;
        if pool as usize >= self.pool_ptrs.len() {
            return Err(VmResult::Fault(format!(
                "string pool index {pool} out of range"
            )));
        }
        self.regs[d as usize] = self.pool_ptrs[pool as usize];
        Ok(())
    }

    #[inline(always)]
    pub(crate) fn m_loadlabel(&mut self, d: Reg, label: u32) {
        self.spill([d]);
        self.stats.cycles += 1;
        self.regs[d as usize] = tag_int(label as i64);
    }

    #[inline(always)]
    pub(crate) fn m_arith(&mut self, op: AOp, d: Reg, a: Reg, b: Reg) -> Result<(), VmResult> {
        self.spill([d, a, b]);
        let x = untag_int(self.regs[a as usize]);
        let y = untag_int(self.regs[b as usize]);
        let (v, cost) = match op {
            AOp::Add => (x.wrapping_add(y), 1),
            AOp::Sub => (x.wrapping_sub(y), 1),
            AOp::Mul => (x.wrapping_mul(y), 4),
            // SML floor division/modulus, wrapping at `i64::MIN div ~1`.
            // A zero divisor is an arithmetic trap (charged like the
            // divide it attempted); compiled code guards `div`/`mod`
            // with a zero test that raises `Div` before reaching here.
            AOp::Div | AOp::Mod => {
                if y == 0 {
                    self.stats.cycles += 12;
                    return Err(VmResult::Fault("integer division by zero".into()));
                }
                let v = if op == AOp::Div {
                    floor_div(x, y)
                } else {
                    floor_mod(x, y)
                };
                (v, 12)
            }
        };
        self.stats.cycles += cost;
        self.regs[d as usize] = tag_int(v);
        Ok(())
    }

    #[inline(always)]
    pub(crate) fn m_farith(&mut self, op: FOp, d: FReg, a: FReg, b: FReg) {
        self.spill([d, a, b]);
        let x = self.fregs[a as usize];
        let y = self.fregs[b as usize];
        let (v, cost) = match op {
            FOp::Add => (x + y, 2),
            FOp::Sub => (x - y, 2),
            FOp::Mul => (x * y, 4),
            FOp::Div => (x / y, 12),
        };
        self.stats.cycles += cost;
        self.fregs[d as usize] = v;
    }

    #[inline(always)]
    pub(crate) fn m_funary(&mut self, op: FUOp, d: FReg, a: FReg) {
        self.spill([d, a]);
        let x = self.fregs[a as usize];
        let (v, cost) = match op {
            FUOp::Neg => (-x, 2),
            FUOp::Sqrt => (x.sqrt(), 20),
            FUOp::Sin => (x.sin(), 20),
            FUOp::Cos => (x.cos(), 20),
            FUOp::Atan => (x.atan(), 20),
            FUOp::Exp => (x.exp(), 20),
            FUOp::Ln => (x.ln(), 20),
        };
        self.stats.cycles += cost;
        self.fregs[d as usize] = v;
    }

    #[inline(always)]
    pub(crate) fn m_floor(&mut self, d: Reg, a: FReg) {
        self.spill([d, a]);
        self.stats.cycles += 3;
        self.regs[d as usize] = tag_int(self.fregs[a as usize].floor() as i64);
    }

    #[inline(always)]
    pub(crate) fn m_inttoreal(&mut self, d: FReg, a: Reg) {
        self.spill([d, a]);
        self.stats.cycles += 3;
        self.fregs[d as usize] = untag_int(self.regs[a as usize]) as f64;
    }

    #[inline(always)]
    pub(crate) fn m_load(&mut self, d: Reg, base: Reg, off: u16) -> Result<(), VmResult> {
        self.spill([d, base]);
        self.stats.cycles += 2;
        self.mem(self.regs[base as usize], off as usize, 1)?;
        // Through the read barrier: during an active incremental major
        // a from-space target is evacuated and the slot healed, so
        // registers only ever hold to-space pointers.
        self.regs[d as usize] = self
            .heap
            .load_healed(self.regs[base as usize], off as usize);
        Ok(())
    }

    #[inline(always)]
    pub(crate) fn m_store(&mut self, s: Reg, base: Reg, off: u16) -> Result<(), VmResult> {
        self.spill([s, base]);
        self.stats.cycles += 2;
        self.mem(self.regs[base as usize], off as usize, 1)?;
        // Unboxed stores skip the barrier; the compiler must prove the
        // value is a non-pointer (paper §4.4).
        debug_assert!(
            !self
                .heap
                .would_need_barrier(self.regs[base as usize], self.regs[s as usize]),
            "unbarriered Store created a tenured→nursery pointer"
        );
        self.heap.store(
            self.regs[base as usize],
            off as usize,
            self.regs[s as usize],
        );
        Ok(())
    }

    #[inline(always)]
    pub(crate) fn m_storewb(&mut self, s: Reg, base: Reg, off: u16) -> Result<(), VmResult> {
        self.spill([s, base]);
        self.stats.cycles += 4; // store + generational bookkeeping
        self.mem(self.regs[base as usize], off as usize, 1)?;
        self.heap.store_barriered(
            self.regs[base as usize],
            off as usize,
            self.regs[s as usize],
        );
        Ok(())
    }

    #[inline(always)]
    pub(crate) fn m_fload(&mut self, d: FReg, base: Reg, off: u16) -> Result<(), VmResult> {
        self.spill([d, base]);
        self.stats.cycles += 4; // two single-word loads
        self.mem(self.regs[base as usize], off as usize, 2)?;
        self.fregs[d as usize] = self.heap.load_f64(self.regs[base as usize], off as usize);
        Ok(())
    }

    #[inline(always)]
    pub(crate) fn m_fstore(&mut self, s: FReg, base: Reg, off: u16) -> Result<(), VmResult> {
        self.spill([s, base]);
        self.stats.cycles += 4;
        self.mem(self.regs[base as usize], off as usize, 2)?;
        self.heap.store_f64(
            self.regs[base as usize],
            off as usize,
            self.fregs[s as usize],
        );
        Ok(())
    }

    #[inline(always)]
    pub(crate) fn m_loadidx(&mut self, d: Reg, base: Reg, idx: Reg) -> Result<(), VmResult> {
        self.spill([d, base, idx]);
        self.stats.cycles += 3;
        let i = untag_int(self.regs[idx as usize]);
        if i < 0 {
            return Err(VmResult::Fault(format!("negative index {i}")));
        }
        self.mem(self.regs[base as usize], i as usize, 1)?;
        self.regs[d as usize] = self.heap.load_healed(self.regs[base as usize], i as usize);
        Ok(())
    }

    #[inline(always)]
    pub(crate) fn m_storeidx(&mut self, s: Reg, base: Reg, idx: Reg) -> Result<(), VmResult> {
        self.spill([s, base, idx]);
        self.stats.cycles += 3;
        let i = untag_int(self.regs[idx as usize]);
        if i < 0 {
            return Err(VmResult::Fault(format!("negative index {i}")));
        }
        self.mem(self.regs[base as usize], i as usize, 1)?;
        debug_assert!(
            !self
                .heap
                .would_need_barrier(self.regs[base as usize], self.regs[s as usize]),
            "unbarriered StoreIdx created a tenured→nursery pointer"
        );
        self.heap
            .store(self.regs[base as usize], i as usize, self.regs[s as usize]);
        Ok(())
    }

    #[inline(always)]
    pub(crate) fn m_storeidxwb(&mut self, s: Reg, base: Reg, idx: Reg) -> Result<(), VmResult> {
        self.spill([s, base, idx]);
        self.stats.cycles += 5;
        let i = untag_int(self.regs[idx as usize]);
        if i < 0 {
            return Err(VmResult::Fault(format!("negative index {i}")));
        }
        self.mem(self.regs[base as usize], i as usize, 1)?;
        self.heap
            .store_barriered(self.regs[base as usize], i as usize, self.regs[s as usize]);
        Ok(())
    }

    #[inline(always)]
    pub(crate) fn m_arrlen(&mut self, d: Reg, a: Reg) -> Result<(), VmResult> {
        self.spill([d, a]);
        self.stats.cycles += 2;
        self.mem(self.regs[a as usize], 0, 0)?;
        let (_, nscan, _) = decode(self.heap.desc(self.regs[a as usize]));
        self.regs[d as usize] = tag_int(nscan as i64);
        Ok(())
    }

    #[inline(always)]
    pub(crate) fn m_fbox(&mut self, d: Reg, s: FReg) -> Result<(), VmResult> {
        self.spill([d, s]);
        self.alloc_guard(2)?;
        let Some(p) = self.heap.alloc(ObjKind::BoxedFloat, 0, 1) else {
            return Err(VmResult::HeapExhausted);
        };
        self.heap.store_f64(p, 0, self.fregs[s as usize]);
        self.stats.cycles += 1 + 2 + 4; // descriptor+bump, then two stores
        self.regs[d as usize] = p;
        Ok(())
    }

    #[inline(always)]
    pub(crate) fn m_funbox(&mut self, d: FReg, s: Reg) -> Result<(), VmResult> {
        self.spill([d, s]);
        self.stats.cycles += 4;
        self.mem(self.regs[s as usize], 0, 2)?;
        self.fregs[d as usize] = self.heap.load_f64(self.regs[s as usize], 0);
        Ok(())
    }

    /// Evaluates an integer branch comparison; the *caller* redirects
    /// control when the comparison is false (branch-on-false ISA).
    #[inline(always)]
    pub(crate) fn m_branch(&mut self, op: BrOp, a: Reg, b: Reg) -> bool {
        self.spill([a, b]);
        self.stats.cycles += 1;
        let x = self.regs[a as usize];
        let y = self.regs[b as usize];
        match op {
            BrOp::Lt => untag_int(x) < untag_int(y),
            BrOp::Le => untag_int(x) <= untag_int(y),
            BrOp::Gt => untag_int(x) > untag_int(y),
            BrOp::Ge => untag_int(x) >= untag_int(y),
            BrOp::Eq => x == y,
            BrOp::Ne => x != y,
            BrOp::Boxed => is_ptr(x),
        }
    }

    /// Evaluates a float branch comparison (branch-on-false).
    #[inline(always)]
    pub(crate) fn m_fbranch(&mut self, op: FBrOp, a: FReg, b: FReg) -> bool {
        self.spill([a, b]);
        self.stats.cycles += 2;
        let x = self.fregs[a as usize];
        let y = self.fregs[b as usize];
        match op {
            FBrOp::Lt => x < y,
            FBrOp::Le => x <= y,
            FBrOp::Gt => x > y,
            FBrOp::Ge => x >= y,
            FBrOp::Eq => x == y,
            FBrOp::Ne => x != y,
        }
    }

    /// Charges a direct jump; the caller performs the block transfer.
    #[inline(always)]
    pub(crate) fn m_jump(&mut self) {
        self.stats.cycles += 1;
        if self.cfg.fp3_overhead {
            self.stats.cycles += 1;
        }
    }

    /// Validates an indirect jump and returns the target block.
    #[inline(always)]
    pub(crate) fn m_jumpreg(&mut self, r: Reg) -> Result<usize, VmResult> {
        self.spill([r]);
        self.stats.cycles += 2;
        if self.cfg.fp3_overhead {
            self.stats.cycles += 1;
        }
        let w = self.regs[r as usize];
        if is_ptr(w) {
            return Err(VmResult::Fault(format!(
                "jump through non-label {w:#x} from block {} ({})",
                self.block, self.prog.blocks[self.block].name
            )));
        }
        let target = untag_int(w);
        if target < 0 || target as usize >= self.prog.blocks.len() {
            return Err(VmResult::Fault(format!(
                "jump target {target} out of range from block {} ({})",
                self.block, self.prog.blocks[self.block].name
            )));
        }
        Ok(target as usize)
    }

    #[inline(always)]
    pub(crate) fn m_gethdlr(&mut self, d: Reg) {
        self.spill([d]);
        self.stats.cycles += 1;
        self.regs[d as usize] = *self.handler;
    }

    #[inline(always)]
    pub(crate) fn m_sethdlr(&mut self, s: Reg) {
        self.spill([s]);
        self.stats.cycles += 1;
        *self.handler = self.regs[s as usize];
    }

    /// The final result of a normal halt.
    #[inline(always)]
    pub(crate) fn m_halt(&mut self, s: Reg) -> VmResult {
        // Resolve so a pointer-valued result is reported at its
        // canonical address (identity outside an active major).
        let w = self.heap.resolve(self.regs[s as usize]);
        let v = if is_ptr(w) { w as i64 } else { untag_int(w) };
        VmResult::Value(v)
    }

    /// The final result of an uncaught-exception exit.
    #[inline(always)]
    pub(crate) fn m_uncaught(&mut self, s: Reg) -> VmResult {
        VmResult::Uncaught(uncaught_name(self.heap, self.regs[s as usize]))
    }

    /// Executes one instruction: updates registers/heap/output, charges
    /// its cycles, and advances `self.pc`/`self.block` for control
    /// transfers. `Err` ends the run (trap or normal halt); the calling
    /// loop attributes accrued cycles to the instruction's class either
    /// way.
    pub(crate) fn step(&mut self, instr: &Instr) -> Result<(), VmResult> {
        match instr {
            Instr::Move { d, s } => self.m_move(*d, *s),
            Instr::FMove { d, s } => self.m_fmove(*d, *s),
            Instr::LoadI { d, imm } => self.m_loadi(*d, *imm),
            Instr::LoadF { d, imm } => self.m_loadf(*d, *imm),
            Instr::LoadStr { d, pool } => self.m_loadstr(*d, *pool)?,
            Instr::LoadLabel { d, label } => self.m_loadlabel(*d, *label),
            Instr::Arith { op, d, a, b } => self.m_arith(*op, *d, *a, *b)?,
            Instr::FArith { op, d, a, b } => self.m_farith(*op, *d, *a, *b),
            Instr::FUnary { op, d, a } => self.m_funary(*op, *d, *a),
            Instr::Floor { d, a } => self.m_floor(*d, *a),
            Instr::IntToReal { d, a } => self.m_inttoreal(*d, *a),
            Instr::Load { d, base, off } => self.m_load(*d, *base, *off)?,
            Instr::Store { s, base, off } => self.m_store(*s, *base, *off)?,
            Instr::StoreWB { s, base, off } => self.m_storewb(*s, *base, *off)?,
            Instr::FLoad { d, base, off } => self.m_fload(*d, *base, *off)?,
            Instr::FStore { s, base, off } => self.m_fstore(*s, *base, *off)?,
            Instr::LoadIdx { d, base, idx } => self.m_loadidx(*d, *base, *idx)?,
            Instr::StoreIdx { s, base, idx } => self.m_storeidx(*s, *base, *idx)?,
            Instr::StoreIdxWB { s, base, idx } => self.m_storeidxwb(*s, *base, *idx)?,
            Instr::ArrLen { d, a } => self.m_arrlen(*d, *a)?,
            Instr::FBox { d, s } => self.m_fbox(*d, *s)?,
            Instr::FUnbox { d, s } => self.m_funbox(*d, *s)?,
            Instr::Branch { op, a, b, target } => {
                if !self.m_branch(*op, *a, *b) {
                    self.pc = *target as usize;
                }
            }
            Instr::FBranch { op, a, b, target } => {
                if !self.m_fbranch(*op, *a, *b) {
                    self.pc = *target as usize;
                }
            }
            Instr::SBranch { op, a, b, target } => {
                self.spill([*a, *b]);
                self.strchk(self.regs[*a as usize])?;
                self.strchk(self.regs[*b as usize])?;
                let sa = self.heap.read_string(self.regs[*a as usize]);
                let sb = self.heap.read_string(self.regs[*b as usize]);
                self.stats.cycles += 3 + (sa.len().min(sb.len()) as u64) / 4;
                let taken = match op {
                    SBrOp::Eq => sa == sb,
                    SBrOp::Ne => sa != sb,
                    SBrOp::Lt => sa < sb,
                    SBrOp::Le => sa <= sb,
                    SBrOp::Gt => sa > sb,
                    SBrOp::Ge => sa >= sb,
                };
                if !taken {
                    self.pc = *target as usize;
                }
            }
            Instr::PolyEqBranch { a, b, target } => {
                self.spill([*a, *b]);
                let (wa, wb) = (self.regs[*a as usize], self.regs[*b as usize]);
                if is_ptr(wa) {
                    self.mem(wa, 0, 0)?;
                }
                if is_ptr(wb) {
                    self.mem(wb, 0, 0)?;
                }
                let (eq, cost) = self.heap.poly_eq(wa, wb);
                // Runtime-call overhead (save/restore, dispatch on the
                // descriptor) plus the traversal.
                self.stats.cycles += 15 + 3 * cost;
                if !eq {
                    self.pc = *target as usize;
                }
            }
            Instr::Switch {
                r,
                lo,
                table,
                default,
            } => {
                self.spill([*r]);
                self.stats.cycles += 3; // bounds check + table load + indirect jump
                let n = untag_int(self.regs[*r as usize]);
                let idx = n - lo;
                self.pc = if idx >= 0 && (idx as usize) < table.len() {
                    table[idx as usize] as usize
                } else {
                    *default as usize
                };
            }
            Instr::Jump { label } => {
                self.m_jump();
                self.block = *label as usize;
                self.pc = 0;
            }
            Instr::JumpReg { r } => {
                self.block = self.m_jumpreg(*r)?;
                self.pc = 0;
            }
            Instr::Rt { op, d, a, b, fa } => {
                self.spill([*d, *a, *b]);
                match op {
                    RtOp::StrCat => {
                        self.strchk(self.regs[*a as usize])?;
                        self.strchk(self.regs[*b as usize])?;
                        let sa = self.heap.read_string(self.regs[*a as usize]);
                        let sb = self.heap.read_string(self.regs[*b as usize]);
                        let joined = sa + &sb;
                        if joined.len() > Heap::MAX_STRING_BYTES {
                            return Err(VmResult::Fault(format!(
                                "string of {} bytes exceeds the descriptor limit of {}",
                                joined.len(),
                                Heap::MAX_STRING_BYTES
                            )));
                        }
                        let words = joined.len().div_ceil(4);
                        self.alloc_guard(words)?;
                        self.stats.cycles += 5 + words as u64;
                        let Some(p) = self.heap.alloc_string(&joined) else {
                            return Err(VmResult::HeapExhausted);
                        };
                        self.regs[*d as usize] = p;
                    }
                    RtOp::StrSize => {
                        self.stats.cycles += 2;
                        self.strchk(self.regs[*a as usize])?;
                        self.regs[*d as usize] =
                            tag_int(self.heap.string_len(self.regs[*a as usize]) as i64);
                    }
                    RtOp::StrSub => {
                        self.stats.cycles += 3;
                        self.strchk(self.regs[*a as usize])?;
                        let i = untag_int(self.regs[*b as usize]);
                        let len = self.heap.string_len(self.regs[*a as usize]);
                        if i < 0 || i as usize >= len {
                            return Err(VmResult::Fault(format!(
                                "string index {i} out of bounds for length {len}"
                            )));
                        }
                        self.regs[*d as usize] = tag_int(
                            self.heap.string_byte(self.regs[*a as usize], i as usize) as i64,
                        );
                    }
                    RtOp::IntToString => {
                        let s = untag_int(self.regs[*a as usize]).to_string();
                        let words = s.len().div_ceil(4);
                        self.alloc_guard(words)?;
                        self.stats.cycles += 20;
                        let Some(p) = self.heap.alloc_string(&s) else {
                            return Err(VmResult::HeapExhausted);
                        };
                        self.regs[*d as usize] = p;
                    }
                    RtOp::RealToString => {
                        let s = format!("{:?}", self.fregs[*fa as usize]);
                        let words = s.len().div_ceil(4);
                        self.alloc_guard(words)?;
                        self.stats.cycles += 40;
                        let Some(p) = self.heap.alloc_string(&s) else {
                            return Err(VmResult::HeapExhausted);
                        };
                        self.regs[*d as usize] = p;
                    }
                }
            }
            Instr::Alloc {
                d,
                kind,
                words,
                flts,
            } => {
                self.spill([*d]);
                let total = words.len() + 2 * flts.len();
                self.alloc_guard(total)?;
                let k = match kind {
                    AllocKind::Record => ObjKind::Record,
                    AllocKind::Ref => ObjKind::Ref,
                };
                let Some(p) = self.heap.alloc(k, words.len() as u32, flts.len() as u32) else {
                    return Err(VmResult::HeapExhausted);
                };
                // Initializing stores go through the barrier too: large
                // objects allocate directly in tenured space and may be
                // initialized with nursery pointers.
                for (i, r) in words.iter().enumerate() {
                    self.heap.store_barriered(p, i, self.regs[*r as usize]);
                }
                for (j, f) in flts.iter().enumerate() {
                    self.heap
                        .store_f64(p, words.len() + 2 * j, self.fregs[*f as usize]);
                }
                self.stats.cycles += 1 + total as u64 + 2 * flts.len() as u64;
                self.regs[*d as usize] = p;
            }
            Instr::AllocArr { d, len, init } => {
                self.spill([*d, *len, *init]);
                let n = untag_int(self.regs[*len as usize]).max(0) as usize;
                if n > Heap::MAX_ARRAY_LEN {
                    return Err(VmResult::Fault(format!(
                        "array of {n} elements exceeds the descriptor limit of {}",
                        Heap::MAX_ARRAY_LEN
                    )));
                }
                self.alloc_guard(n)?;
                let Some(p) = self.heap.alloc(ObjKind::Array, n as u32, 0) else {
                    return Err(VmResult::HeapExhausted);
                };
                let v = self.regs[*init as usize];
                for i in 0..n {
                    self.heap.store_barriered(p, i, v);
                }
                self.stats.cycles += 1 + n as u64;
                self.regs[*d as usize] = p;
            }
            Instr::GetHdlr { d } => self.m_gethdlr(*d),
            Instr::SetHdlr { s } => self.m_sethdlr(*s),
            Instr::Print { s } => {
                self.strchk(self.regs[*s as usize])?;
                let txt = self.heap.read_string(self.regs[*s as usize]);
                self.stats.cycles += 5 + txt.len() as u64 / 4;
                self.output.push_str(&txt);
            }
            Instr::Halt { s } => return Err(self.m_halt(*s)),
            Instr::Uncaught { s } => return Err(self.m_uncaught(*s)),
        }
        Ok(())
    }
}

/// How a [`pump_major`] call ended.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Pump {
    /// The major collection completed.
    Done,
    /// A fault-injected yield handed control back to the mutator with
    /// the collection still active (only when the pending allocation
    /// already fits).
    Yielded,
    /// To-space overflow: the heap is finalized exhausted.
    Overflow,
}

/// Flips into a major collection (if one is not already active) and
/// pumps slices. Without a pause budget this is the stop-the-world
/// collector: flip plus one unbounded slice under a single recorded
/// pause, byte-for-byte the pre-incremental behavior. With a budget,
/// the flip and every slice are separate recorded pauses sized by
/// [`Heap::slice_words`]; slices run back-to-back (identical copy order
/// and placement to stop-the-world) unless
/// [`FaultInject::yield_every_n_slices`] interleaves the mutator.
fn pump_major(
    heap: &mut Heap,
    regs: &mut [u32],
    handler: &mut u32,
    stats: &mut RunStats,
    cfg: &VmConfig,
    yield_ctr: &mut u64,
    want: usize,
) -> Pump {
    let budget = cfg.max_pause_cycles;
    let slice_words = Heap::slice_words(budget);
    if !heap.major_active() {
        if budget == 0 {
            let before = heap.copied_words;
            let ok = begin_with_roots(heap, regs, handler)
                && heap.major_slice(u64::MAX) == SliceOutcome::Done;
            stats.major_slices += 1;
            record_pause(stats, false, 200 + 3 * (heap.copied_words - before), budget);
            return if ok { Pump::Done } else { Pump::Overflow };
        }
        // The flip (root forwarding) is the one atomic step and its own
        // recorded pause; roots are few, so it only overruns the budget
        // on a genuinely oversized root object (reported, not hidden).
        let before = heap.copied_words;
        let ok = begin_with_roots(heap, regs, handler);
        record_pause(stats, false, 200 + 3 * (heap.copied_words - before), budget);
        if !ok {
            return Pump::Overflow;
        }
    }
    loop {
        let before = heap.copied_words;
        let outcome = heap.major_slice(slice_words);
        stats.major_slices += 1;
        record_pause(stats, false, 200 + 3 * (heap.copied_words - before), budget);
        match outcome {
            SliceOutcome::Done => return Pump::Done,
            SliceOutcome::Overflow => return Pump::Overflow,
            SliceOutcome::More => {
                *yield_ctr += 1;
                if let Some(n) = cfg.fault.yield_every_n_slices {
                    if n > 0 && (*yield_ctr).is_multiple_of(n) && heap.has_room(want) {
                        return Pump::Yielded;
                    }
                }
            }
        }
    }
}

/// Forwards all VM roots (registers plus the handler) into a fresh
/// major collection.
fn begin_with_roots(heap: &mut Heap, regs: &mut [u32], handler: &mut u32) -> bool {
    let mut roots: Vec<&mut u32> = Vec::with_capacity(regs.len() + 1);
    for r in regs.iter_mut() {
        roots.push(r);
    }
    roots.push(handler);
    heap.begin_major(&mut roots)
}

/// Charges one recorded GC pause: total and per-class cycle counters,
/// the max-pause watermark, the pause histogram, and — when a budget is
/// set — the overrun counter for pauses that exceed it.
fn record_pause(stats: &mut RunStats, minor: bool, cost: u64, budget: u64) {
    stats.cycles += cost;
    stats.gc_cycles += cost;
    if minor {
        stats.minor_gc_cycles += cost;
        stats.max_minor_pause = stats.max_minor_pause.max(cost);
        stats.pause_hist_minor[pause_bucket(cost)] += 1;
    } else {
        stats.major_gc_cycles += cost;
        stats.max_major_pause = stats.max_major_pause.max(cost);
        stats.pause_hist_major[pause_bucket(cost)] += 1;
    }
    if budget > 0 && cost > budget {
        stats.pause_overruns += 1;
    }
}

/// Charges read-barrier copy work accumulated since the last drain to
/// GC time (it belongs to no recorded pause — that is the point of the
/// barrier: the copy happens during mutator time).
pub(crate) fn drain_barrier(heap: &mut Heap, stats: &mut RunStats) {
    let words = heap.take_barrier_words();
    if words > 0 {
        let cost = 3 * words;
        stats.cycles += cost;
        stats.gc_cycles += cost;
        stats.major_gc_cycles += cost;
        stats.barrier_words += words;
    }
}

/// Runs one stop-the-world collection with the VM roots (all registers
/// plus the handler), charges the pause to the stats, and reports
/// whether the collection completed (`false` only when a major
/// collection overflowed: live data exceeds one tenured semispace).
fn gc(
    heap: &mut Heap,
    regs: &mut [u32],
    handler: &mut u32,
    stats: &mut RunStats,
    kind: GcKind,
    budget: u64,
) -> bool {
    let before = heap.copied_words;
    let rs_slots = heap.remembered_len() as u64;
    let complete = {
        let mut roots: Vec<&mut u32> = Vec::with_capacity(regs.len() + 1);
        let mut iter = regs.iter_mut();
        for r in &mut iter {
            roots.push(r);
        }
        roots.push(handler);
        heap.collect(&mut roots, kind)
    };
    let copied = heap.copied_words - before;
    // In semispace mode every collection is a full one and pays the
    // major-pause cost.
    let minor_ran = kind == GcKind::Minor && heap.is_generational();
    let cost = if minor_ran {
        150 + 3 * copied + rs_slots
    } else {
        200 + 3 * copied
    };
    if !minor_ran {
        stats.major_slices += 1;
    }
    record_pause(stats, minor_ran, cost, budget);
    complete
}
