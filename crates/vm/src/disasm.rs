//! A textual disassembler for [`MachineProgram`]s.
//!
//! Registers print as `r0..r31` (hardware), `s32..s63` (spill-modelled),
//! and `f0..f31` (float). Branch targets print as local instruction
//! indices, which the listing shows in the left margin, so generated
//! code can be read the way the paper's appendix examples are read.

use std::fmt;

use crate::isa::{
    AOp, AllocKind, BrOp, CodeBlock, FBrOp, FOp, FUOp, Instr, MachineProgram, RtOp, SBrOp, HW_REGS,
};

/// A displayable integer register: hardware registers as `rN`, spill
/// slots as `sN`.
struct R(u8);

impl fmt::Display for R {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < HW_REGS {
            write!(f, "r{}", self.0)
        } else {
            write!(f, "s{}", self.0)
        }
    }
}

/// A displayable float register.
struct F(u8);

impl fmt::Display for F {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

impl fmt::Display for AOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(match self {
            AOp::Add => "add",
            AOp::Sub => "sub",
            AOp::Mul => "mul",
            AOp::Div => "div",
            AOp::Mod => "mod",
        })
    }
}

impl fmt::Display for FOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(match self {
            FOp::Add => "fadd",
            FOp::Sub => "fsub",
            FOp::Mul => "fmul",
            FOp::Div => "fdiv",
        })
    }
}

impl fmt::Display for FUOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(match self {
            FUOp::Neg => "fneg",
            FUOp::Sqrt => "fsqrt",
            FUOp::Sin => "fsin",
            FUOp::Cos => "fcos",
            FUOp::Atan => "fatan",
            FUOp::Exp => "fexp",
            FUOp::Ln => "fln",
        })
    }
}

impl fmt::Display for BrOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(match self {
            BrOp::Lt => "lt",
            BrOp::Le => "le",
            BrOp::Gt => "gt",
            BrOp::Ge => "ge",
            BrOp::Eq => "eq",
            BrOp::Ne => "ne",
            BrOp::Boxed => "boxed",
        })
    }
}

impl fmt::Display for FBrOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(match self {
            FBrOp::Lt => "flt",
            FBrOp::Le => "fle",
            FBrOp::Gt => "fgt",
            FBrOp::Ge => "fge",
            FBrOp::Eq => "feq",
            FBrOp::Ne => "fne",
        })
    }
}

impl fmt::Display for SBrOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(match self {
            SBrOp::Eq => "seq",
            SBrOp::Ne => "sne",
            SBrOp::Lt => "slt",
            SBrOp::Le => "sle",
            SBrOp::Gt => "sgt",
            SBrOp::Ge => "sge",
        })
    }
}

impl fmt::Display for RtOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(match self {
            RtOp::StrCat => "strcat",
            RtOp::StrSize => "strsize",
            RtOp::StrSub => "strsub",
            RtOp::IntToString => "itos",
            RtOp::RealToString => "rtos",
        })
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Move { d, s } => write!(f, "move    {}, {}", R(*d), R(*s)),
            Instr::FMove { d, s } => write!(f, "fmove   {}, {}", F(*d), F(*s)),
            Instr::LoadI { d, imm } => write!(f, "li      {}, {imm}", R(*d)),
            Instr::LoadF { d, imm } => write!(f, "lf      {}, {imm}", F(*d)),
            Instr::LoadStr { d, pool } => write!(f, "lstr    {}, pool[{pool}]", R(*d)),
            Instr::LoadLabel { d, label } => write!(f, "llabel  {}, L{label}", R(*d)),
            Instr::Arith { op, d, a, b } => {
                write!(f, "{op:<7} {}, {}, {}", R(*d), R(*a), R(*b))
            }
            Instr::FArith { op, d, a, b } => {
                write!(f, "{op:<7} {}, {}, {}", F(*d), F(*a), F(*b))
            }
            Instr::FUnary { op, d, a } => write!(f, "{op:<7} {}, {}", F(*d), F(*a)),
            Instr::Floor { d, a } => write!(f, "floor   {}, {}", R(*d), F(*a)),
            Instr::IntToReal { d, a } => write!(f, "i2r     {}, {}", F(*d), R(*a)),
            Instr::Load { d, base, off } => {
                write!(f, "lw      {}, {}[{off}]", R(*d), R(*base))
            }
            Instr::Store { s, base, off } => {
                write!(f, "sw      {}, {}[{off}]", R(*s), R(*base))
            }
            Instr::StoreWB { s, base, off } => {
                write!(f, "sw.wb   {}, {}[{off}]", R(*s), R(*base))
            }
            Instr::FLoad { d, base, off } => {
                write!(f, "lw.f    {}, {}[{off}]", F(*d), R(*base))
            }
            Instr::FStore { s, base, off } => {
                write!(f, "sw.f    {}, {}[{off}]", F(*s), R(*base))
            }
            Instr::LoadIdx { d, base, idx } => {
                write!(f, "lwx     {}, {}[{}]", R(*d), R(*base), R(*idx))
            }
            Instr::StoreIdx { s, base, idx } => {
                write!(f, "swx     {}, {}[{}]", R(*s), R(*base), R(*idx))
            }
            Instr::StoreIdxWB { s, base, idx } => {
                write!(f, "swx.wb  {}, {}[{}]", R(*s), R(*base), R(*idx))
            }
            Instr::Alloc {
                d,
                kind,
                words,
                flts,
            } => {
                let kind = match kind {
                    AllocKind::Record => "record",
                    AllocKind::Ref => "ref",
                };
                write!(f, "alloc   {}, {kind} [", R(*d))?;
                for (i, w) in words.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{}", R(*w))?;
                }
                for (i, fr) in flts.iter().enumerate() {
                    if i > 0 || !words.is_empty() {
                        f.write_str(", ")?;
                    }
                    write!(f, "{}", F(*fr))?;
                }
                f.write_str("]")
            }
            Instr::AllocArr { d, len, init } => {
                write!(f, "allocarr {}, len={}, init={}", R(*d), R(*len), R(*init))
            }
            Instr::ArrLen { d, a } => write!(f, "arrlen  {}, {}", R(*d), R(*a)),
            Instr::FBox { d, s } => write!(f, "fbox    {}, {}", R(*d), F(*s)),
            Instr::FUnbox { d, s } => write!(f, "funbox  {}, {}", F(*d), R(*s)),
            Instr::Branch { op, a, b, target } => {
                write!(f, "br.!{op:<4} {}, {} -> @{target}", R(*a), R(*b))
            }
            Instr::FBranch { op, a, b, target } => {
                write!(f, "br.!{op:<4} {}, {} -> @{target}", F(*a), F(*b))
            }
            Instr::SBranch { op, a, b, target } => {
                write!(f, "br.!{op:<4} {}, {} -> @{target}", R(*a), R(*b))
            }
            Instr::PolyEqBranch { a, b, target } => {
                write!(f, "br.!peq {}, {} -> @{target}", R(*a), R(*b))
            }
            Instr::Switch {
                r,
                lo,
                table,
                default,
            } => {
                write!(f, "switch  {}, lo={lo} [", R(*r))?;
                for (i, t) in table.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "@{t}")?;
                }
                write!(f, "] default @{default}")
            }
            Instr::Jump { label } => write!(f, "j       L{label}"),
            Instr::JumpReg { r } => write!(f, "jr      {}", R(*r)),
            Instr::Rt { op, d, a, b, fa } => match op {
                RtOp::RealToString => write!(f, "rt.{op}  {}, {}", R(*d), F(*fa)),
                RtOp::StrSize | RtOp::IntToString => {
                    write!(f, "rt.{op}{}{}, {}", pad(op), R(*d), R(*a))
                }
                _ => write!(f, "rt.{op}{}{}, {}, {}", pad(op), R(*d), R(*a), R(*b)),
            },
            Instr::GetHdlr { d } => write!(f, "gethdlr {}", R(*d)),
            Instr::SetHdlr { s } => write!(f, "sethdlr {}", R(*s)),
            Instr::Print { s } => write!(f, "print   {}", R(*s)),
            Instr::Halt { s } => write!(f, "halt    {}", R(*s)),
            Instr::Uncaught { s } => write!(f, "uncaught {}", R(*s)),
        }
    }
}

/// Padding so `rt.<op>` mnemonics line operands up with the others.
fn pad(op: &RtOp) -> &'static str {
    match format!("{op}").len() {
        n if n >= 5 => " ",
        4 => "  ",
        _ => "     ",
    }
}

impl fmt::Display for CodeBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, ins) in self.instrs.iter().enumerate() {
            writeln!(f, "  {i:>4}:  {ins}")?;
        }
        Ok(())
    }
}

impl fmt::Display for MachineProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.pool.is_empty() {
            writeln!(f, "; string pool")?;
            for (i, s) in self.pool.iter().enumerate() {
                writeln!(f, ";   pool[{i}] = {s:?}")?;
            }
            writeln!(f)?;
        }
        for (i, b) in self.blocks.iter().enumerate() {
            let entry = if i as u32 == self.entry {
                "  ; entry"
            } else {
                ""
            };
            writeln!(f, "L{i}: <{}>{entry}", b.name)?;
            write!(f, "{b}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registers_render_by_class() {
        assert_eq!(format!("{}", R(5)), "r5");
        assert_eq!(format!("{}", R(31)), "r31");
        assert_eq!(format!("{}", R(32)), "s32");
        assert_eq!(format!("{}", F(7)), "f7");
    }

    #[test]
    fn instr_rendering() {
        let i = Instr::Arith {
            op: AOp::Add,
            d: 3,
            a: 1,
            b: 2,
        };
        assert_eq!(format!("{i}"), "add     r3, r1, r2");
        let i = Instr::Branch {
            op: BrOp::Lt,
            a: 1,
            b: 2,
            target: 9,
        };
        assert_eq!(format!("{i}"), "br.!lt   r1, r2 -> @9");
        let i = Instr::Alloc {
            d: 4,
            kind: AllocKind::Record,
            words: vec![1, 2],
            flts: vec![0],
        };
        assert_eq!(format!("{i}"), "alloc   r4, record [r1, r2, f0]");
        let i = Instr::Switch {
            r: 1,
            lo: 0,
            table: vec![3, 5],
            default: 7,
        };
        assert_eq!(format!("{i}"), "switch  r1, lo=0 [@3, @5] default @7");
    }

    #[test]
    fn program_listing_shows_entry_and_pool() {
        let prog = MachineProgram {
            blocks: vec![CodeBlock {
                name: "main".into(),
                instrs: vec![Instr::LoadI { d: 1, imm: 42 }, Instr::Halt { s: 1 }],
            }],
            entry: 0,
            pool: vec!["hi".into()],
        };
        let s = format!("{prog}");
        assert!(s.contains("pool[0] = \"hi\""), "{s}");
        assert!(s.contains("L0: <main>  ; entry"), "{s}");
        assert!(s.contains("0:  li      r1, 42"), "{s}");
        assert!(s.contains("1:  halt    r1"), "{s}");
    }
}
