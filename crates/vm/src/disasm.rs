//! A textual disassembler for [`MachineProgram`]s.
//!
//! Registers print as `r0..r31` (hardware), `s32..s63` (spill-modelled),
//! and `f0..f31` (float). Branch targets print as local instruction
//! indices, which the listing shows in the left margin, so generated
//! code can be read the way the paper's appendix examples are read.

use std::fmt;

use crate::isa::{
    AOp, AllocKind, BrOp, CodeBlock, FBrOp, FOp, FUOp, Instr, MachineProgram, RtOp, SBrOp, HW_REGS,
};

/// A displayable integer register: hardware registers as `rN`, spill
/// slots as `sN`.
struct R(u8);

impl fmt::Display for R {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < HW_REGS {
            write!(f, "r{}", self.0)
        } else {
            write!(f, "s{}", self.0)
        }
    }
}

/// A displayable float register.
struct F(u8);

impl fmt::Display for F {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

impl fmt::Display for AOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(match self {
            AOp::Add => "add",
            AOp::Sub => "sub",
            AOp::Mul => "mul",
            AOp::Div => "div",
            AOp::Mod => "mod",
        })
    }
}

impl fmt::Display for FOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(match self {
            FOp::Add => "fadd",
            FOp::Sub => "fsub",
            FOp::Mul => "fmul",
            FOp::Div => "fdiv",
        })
    }
}

impl fmt::Display for FUOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(match self {
            FUOp::Neg => "fneg",
            FUOp::Sqrt => "fsqrt",
            FUOp::Sin => "fsin",
            FUOp::Cos => "fcos",
            FUOp::Atan => "fatan",
            FUOp::Exp => "fexp",
            FUOp::Ln => "fln",
        })
    }
}

impl fmt::Display for BrOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(match self {
            BrOp::Lt => "lt",
            BrOp::Le => "le",
            BrOp::Gt => "gt",
            BrOp::Ge => "ge",
            BrOp::Eq => "eq",
            BrOp::Ne => "ne",
            BrOp::Boxed => "boxed",
        })
    }
}

impl fmt::Display for FBrOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(match self {
            FBrOp::Lt => "flt",
            FBrOp::Le => "fle",
            FBrOp::Gt => "fgt",
            FBrOp::Ge => "fge",
            FBrOp::Eq => "feq",
            FBrOp::Ne => "fne",
        })
    }
}

impl fmt::Display for SBrOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(match self {
            SBrOp::Eq => "seq",
            SBrOp::Ne => "sne",
            SBrOp::Lt => "slt",
            SBrOp::Le => "sle",
            SBrOp::Gt => "sgt",
            SBrOp::Ge => "sge",
        })
    }
}

impl fmt::Display for RtOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(match self {
            RtOp::StrCat => "strcat",
            RtOp::StrSize => "strsize",
            RtOp::StrSub => "strsub",
            RtOp::IntToString => "itos",
            RtOp::RealToString => "rtos",
        })
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Move { d, s } => write!(f, "move    {}, {}", R(*d), R(*s)),
            Instr::FMove { d, s } => write!(f, "fmove   {}, {}", F(*d), F(*s)),
            Instr::LoadI { d, imm } => write!(f, "li      {}, {imm}", R(*d)),
            Instr::LoadF { d, imm } => write!(f, "lf      {}, {imm}", F(*d)),
            Instr::LoadStr { d, pool } => write!(f, "lstr    {}, pool[{pool}]", R(*d)),
            Instr::LoadLabel { d, label } => write!(f, "llabel  {}, L{label}", R(*d)),
            Instr::Arith { op, d, a, b } => {
                write!(f, "{op:<7} {}, {}, {}", R(*d), R(*a), R(*b))
            }
            Instr::FArith { op, d, a, b } => {
                write!(f, "{op:<7} {}, {}, {}", F(*d), F(*a), F(*b))
            }
            Instr::FUnary { op, d, a } => write!(f, "{op:<7} {}, {}", F(*d), F(*a)),
            Instr::Floor { d, a } => write!(f, "floor   {}, {}", R(*d), F(*a)),
            Instr::IntToReal { d, a } => write!(f, "i2r     {}, {}", F(*d), R(*a)),
            Instr::Load { d, base, off } => {
                write!(f, "lw      {}, {}[{off}]", R(*d), R(*base))
            }
            Instr::Store { s, base, off } => {
                write!(f, "sw      {}, {}[{off}]", R(*s), R(*base))
            }
            Instr::StoreWB { s, base, off } => {
                write!(f, "sw.wb   {}, {}[{off}]", R(*s), R(*base))
            }
            Instr::FLoad { d, base, off } => {
                write!(f, "lw.f    {}, {}[{off}]", F(*d), R(*base))
            }
            Instr::FStore { s, base, off } => {
                write!(f, "sw.f    {}, {}[{off}]", F(*s), R(*base))
            }
            Instr::LoadIdx { d, base, idx } => {
                write!(f, "lwx     {}, {}[{}]", R(*d), R(*base), R(*idx))
            }
            Instr::StoreIdx { s, base, idx } => {
                write!(f, "swx     {}, {}[{}]", R(*s), R(*base), R(*idx))
            }
            Instr::StoreIdxWB { s, base, idx } => {
                write!(f, "swx.wb  {}, {}[{}]", R(*s), R(*base), R(*idx))
            }
            Instr::Alloc {
                d,
                kind,
                words,
                flts,
            } => {
                let kind = match kind {
                    AllocKind::Record => "record",
                    AllocKind::Ref => "ref",
                };
                write!(f, "alloc   {}, {kind} [", R(*d))?;
                for (i, w) in words.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{}", R(*w))?;
                }
                for (i, fr) in flts.iter().enumerate() {
                    if i > 0 || !words.is_empty() {
                        f.write_str(", ")?;
                    }
                    write!(f, "{}", F(*fr))?;
                }
                f.write_str("]")
            }
            Instr::AllocArr { d, len, init } => {
                write!(f, "allocarr {}, len={}, init={}", R(*d), R(*len), R(*init))
            }
            Instr::ArrLen { d, a } => write!(f, "arrlen  {}, {}", R(*d), R(*a)),
            Instr::FBox { d, s } => write!(f, "fbox    {}, {}", R(*d), F(*s)),
            Instr::FUnbox { d, s } => write!(f, "funbox  {}, {}", F(*d), R(*s)),
            Instr::Branch { op, a, b, target } => {
                write!(f, "br.!{op:<4} {}, {} -> @{target}", R(*a), R(*b))
            }
            Instr::FBranch { op, a, b, target } => {
                write!(f, "br.!{op:<4} {}, {} -> @{target}", F(*a), F(*b))
            }
            Instr::SBranch { op, a, b, target } => {
                write!(f, "br.!{op:<4} {}, {} -> @{target}", R(*a), R(*b))
            }
            Instr::PolyEqBranch { a, b, target } => {
                write!(f, "br.!peq {}, {} -> @{target}", R(*a), R(*b))
            }
            Instr::Switch {
                r,
                lo,
                table,
                default,
            } => {
                write!(f, "switch  {}, lo={lo} [", R(*r))?;
                for (i, t) in table.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "@{t}")?;
                }
                write!(f, "] default @{default}")
            }
            Instr::Jump { label } => write!(f, "j       L{label}"),
            Instr::JumpReg { r } => write!(f, "jr      {}", R(*r)),
            Instr::Rt { op, d, a, b, fa } => match op {
                RtOp::RealToString => write!(f, "rt.{op}  {}, {}", R(*d), F(*fa)),
                RtOp::StrSize | RtOp::IntToString => {
                    write!(f, "rt.{op}{}{}, {}", pad(op), R(*d), R(*a))
                }
                _ => write!(f, "rt.{op}{}{}, {}, {}", pad(op), R(*d), R(*a), R(*b)),
            },
            Instr::GetHdlr { d } => write!(f, "gethdlr {}", R(*d)),
            Instr::SetHdlr { s } => write!(f, "sethdlr {}", R(*s)),
            Instr::Print { s } => write!(f, "print   {}", R(*s)),
            Instr::Halt { s } => write!(f, "halt    {}", R(*s)),
            Instr::Uncaught { s } => write!(f, "uncaught {}", R(*s)),
        }
    }
}

/// Padding so `rt.<op>` mnemonics line operands up with the others.
fn pad(op: &RtOp) -> &'static str {
    match format!("{op}").len() {
        n if n >= 5 => " ",
        4 => "  ",
        _ => "     ",
    }
}

impl fmt::Display for CodeBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, ins) in self.instrs.iter().enumerate() {
            writeln!(f, "  {i:>4}:  {ins}")?;
        }
        Ok(())
    }
}

impl fmt::Display for MachineProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.pool.is_empty() {
            writeln!(f, "; string pool")?;
            for (i, s) in self.pool.iter().enumerate() {
                writeln!(f, ";   pool[{i}] = {s:?}")?;
            }
            writeln!(f)?;
        }
        for (i, b) in self.blocks.iter().enumerate() {
            let entry = if i as u32 == self.entry {
                "  ; entry"
            } else {
                ""
            };
            writeln!(f, "L{i}: <{}>{entry}", b.name)?;
            write!(f, "{b}")?;
        }
        Ok(())
    }
}

// ----- parsing ------------------------------------------------------------

fn parse_reg(tok: &str) -> Result<u8, String> {
    let t = tok.trim().trim_end_matches(',');
    match t.as_bytes().first() {
        Some(b'r') | Some(b's') => t[1..].parse().map_err(|_| format!("bad register `{t}`")),
        _ => Err(format!("expected integer register, got `{t}`")),
    }
}

fn parse_freg(tok: &str) -> Result<u8, String> {
    let t = tok.trim().trim_end_matches(',');
    match t.as_bytes().first() {
        Some(b'f') => t[1..]
            .parse()
            .map_err(|_| format!("bad float register `{t}`")),
        _ => Err(format!("expected float register, got `{t}`")),
    }
}

fn parse_num<T: std::str::FromStr>(tok: &str) -> Result<T, String> {
    tok.trim()
        .trim_end_matches(',')
        .parse()
        .map_err(|_| format!("bad number `{}`", tok.trim()))
}

/// Parses `base[off]` into the base-register token and the bracketed
/// text.
fn parse_indexed(tok: &str) -> Result<(&str, &str), String> {
    let t = tok.trim().trim_end_matches(',');
    let open = t
        .find('[')
        .ok_or_else(|| format!("expected `base[off]`, got `{t}`"))?;
    let close = t
        .rfind(']')
        .filter(|&c| c > open)
        .ok_or_else(|| format!("unterminated `[` in `{t}`"))?;
    Ok((&t[..open], &t[open + 1..close]))
}

fn parse_target(tok: &str) -> Result<u32, String> {
    let t = tok.trim().trim_end_matches(',');
    let t = t
        .strip_prefix('@')
        .ok_or_else(|| format!("expected `@target`, got `{t}`"))?;
    parse_num(t)
}

fn parse_label(tok: &str) -> Result<u32, String> {
    let t = tok.trim().trim_end_matches(',');
    let t = t
        .strip_prefix('L')
        .ok_or_else(|| format!("expected `L<label>`, got `{t}`"))?;
    parse_num(t)
}

/// Parses one instruction back from its [`Display`] rendering.
///
/// The disassembly grammar is regular, so every line the disassembler
/// prints re-parses to an instruction that renders identically; the
/// bytecode verifier relies on this to cite violations by disassembly
/// line. Leading whitespace and a `<pc>:` margin (as printed by block
/// listings) are accepted and ignored.
pub fn parse_instr(line: &str) -> Result<Instr, String> {
    let mut text = line.trim();
    // Strip the listing margin, e.g. `  12:  move ...`.
    if let Some((margin, rest)) = text.split_once(':') {
        if margin.chars().all(|c| c.is_ascii_digit()) && !margin.is_empty() {
            text = rest.trim_start();
        }
    }
    let (mn, rest) = text.split_once(char::is_whitespace).unwrap_or((text, ""));
    let rest = rest.trim();
    let toks: Vec<&str> = rest.split_whitespace().collect();
    let tok = |i: usize| -> Result<&str, String> {
        toks.get(i)
            .copied()
            .ok_or_else(|| format!("missing operand {i} in `{line}`"))
    };

    match mn {
        "move" => Ok(Instr::Move {
            d: parse_reg(tok(0)?)?,
            s: parse_reg(tok(1)?)?,
        }),
        "fmove" => Ok(Instr::FMove {
            d: parse_freg(tok(0)?)?,
            s: parse_freg(tok(1)?)?,
        }),
        "li" => Ok(Instr::LoadI {
            d: parse_reg(tok(0)?)?,
            imm: parse_num(tok(1)?)?,
        }),
        "lf" => Ok(Instr::LoadF {
            d: parse_freg(tok(0)?)?,
            imm: parse_num(tok(1)?)?,
        }),
        "lstr" => {
            let (pool, ix) = parse_indexed(tok(1)?)?;
            if pool != "pool" {
                return Err(format!("expected `pool[..]`, got `{pool}`"));
            }
            Ok(Instr::LoadStr {
                d: parse_reg(tok(0)?)?,
                pool: parse_num(ix)?,
            })
        }
        "llabel" => Ok(Instr::LoadLabel {
            d: parse_reg(tok(0)?)?,
            label: parse_label(tok(1)?)?,
        }),
        "add" | "sub" | "mul" | "div" | "mod" => {
            let op = match mn {
                "add" => AOp::Add,
                "sub" => AOp::Sub,
                "mul" => AOp::Mul,
                "div" => AOp::Div,
                _ => AOp::Mod,
            };
            Ok(Instr::Arith {
                op,
                d: parse_reg(tok(0)?)?,
                a: parse_reg(tok(1)?)?,
                b: parse_reg(tok(2)?)?,
            })
        }
        "fadd" | "fsub" | "fmul" | "fdiv" => {
            let op = match mn {
                "fadd" => FOp::Add,
                "fsub" => FOp::Sub,
                "fmul" => FOp::Mul,
                _ => FOp::Div,
            };
            Ok(Instr::FArith {
                op,
                d: parse_freg(tok(0)?)?,
                a: parse_freg(tok(1)?)?,
                b: parse_freg(tok(2)?)?,
            })
        }
        "fneg" | "fsqrt" | "fsin" | "fcos" | "fatan" | "fexp" | "fln" => {
            let op = match mn {
                "fneg" => FUOp::Neg,
                "fsqrt" => FUOp::Sqrt,
                "fsin" => FUOp::Sin,
                "fcos" => FUOp::Cos,
                "fatan" => FUOp::Atan,
                "fexp" => FUOp::Exp,
                _ => FUOp::Ln,
            };
            Ok(Instr::FUnary {
                op,
                d: parse_freg(tok(0)?)?,
                a: parse_freg(tok(1)?)?,
            })
        }
        "floor" => Ok(Instr::Floor {
            d: parse_reg(tok(0)?)?,
            a: parse_freg(tok(1)?)?,
        }),
        "i2r" => Ok(Instr::IntToReal {
            d: parse_freg(tok(0)?)?,
            a: parse_reg(tok(1)?)?,
        }),
        "lw" | "sw" | "sw.wb" => {
            let (base, off) = parse_indexed(tok(1)?)?;
            let r = parse_reg(tok(0)?)?;
            let base = parse_reg(base)?;
            let off = parse_num(off)?;
            Ok(match mn {
                "lw" => Instr::Load { d: r, base, off },
                "sw" => Instr::Store { s: r, base, off },
                _ => Instr::StoreWB { s: r, base, off },
            })
        }
        "lw.f" | "sw.f" => {
            let (base, off) = parse_indexed(tok(1)?)?;
            let fr = parse_freg(tok(0)?)?;
            let base = parse_reg(base)?;
            let off = parse_num(off)?;
            Ok(if mn == "lw.f" {
                Instr::FLoad { d: fr, base, off }
            } else {
                Instr::FStore { s: fr, base, off }
            })
        }
        "lwx" | "swx" | "swx.wb" => {
            let (base, idx) = parse_indexed(tok(1)?)?;
            let r = parse_reg(tok(0)?)?;
            let base = parse_reg(base)?;
            let idx = parse_reg(idx)?;
            Ok(match mn {
                "lwx" => Instr::LoadIdx { d: r, base, idx },
                "swx" => Instr::StoreIdx { s: r, base, idx },
                _ => Instr::StoreIdxWB { s: r, base, idx },
            })
        }
        "alloc" => {
            let open = rest.find('[').ok_or("alloc without field list")?;
            let close = rest.rfind(']').ok_or("alloc without `]`")?;
            let head: Vec<&str> = rest[..open].split(',').map(str::trim).collect();
            if head.len() < 2 {
                return Err(format!("bad alloc head in `{line}`"));
            }
            let d = parse_reg(head[0])?;
            let kind = match head[1] {
                "record" => AllocKind::Record,
                "ref" => AllocKind::Ref,
                other => return Err(format!("unknown alloc kind `{other}`")),
            };
            let mut words = Vec::new();
            let mut flts = Vec::new();
            for field in rest[open + 1..close].split(',') {
                let field = field.trim();
                if field.is_empty() {
                    continue;
                }
                if field.starts_with('f') {
                    flts.push(parse_freg(field)?);
                } else {
                    words.push(parse_reg(field)?);
                }
            }
            Ok(Instr::Alloc {
                d,
                kind,
                words,
                flts,
            })
        }
        "allocarr" => {
            let len = tok(1)?
                .strip_prefix("len=")
                .ok_or_else(|| format!("expected `len=`, got `{}`", tok(1).unwrap_or("")))?;
            let init = tok(2)?
                .strip_prefix("init=")
                .ok_or_else(|| format!("expected `init=`, got `{}`", tok(2).unwrap_or("")))?;
            Ok(Instr::AllocArr {
                d: parse_reg(tok(0)?)?,
                len: parse_reg(len)?,
                init: parse_reg(init)?,
            })
        }
        "arrlen" => Ok(Instr::ArrLen {
            d: parse_reg(tok(0)?)?,
            a: parse_reg(tok(1)?)?,
        }),
        "fbox" => Ok(Instr::FBox {
            d: parse_reg(tok(0)?)?,
            s: parse_freg(tok(1)?)?,
        }),
        "funbox" => Ok(Instr::FUnbox {
            d: parse_freg(tok(0)?)?,
            s: parse_reg(tok(1)?)?,
        }),
        "switch" => {
            let open = rest.find('[').ok_or("switch without table")?;
            let close = rest.rfind(']').ok_or("switch without `]`")?;
            let head: Vec<&str> = rest[..open].split(',').map(str::trim).collect();
            if head.len() < 2 {
                return Err(format!("bad switch head in `{line}`"));
            }
            let r = parse_reg(head[0])?;
            let lo = parse_num(
                head[1]
                    .strip_prefix("lo=")
                    .ok_or_else(|| format!("expected `lo=`, got `{}`", head[1]))?,
            )?;
            let mut table = Vec::new();
            for t in rest[open + 1..close].split(',') {
                let t = t.trim();
                if !t.is_empty() {
                    table.push(parse_target(t)?);
                }
            }
            let tail: Vec<&str> = rest[close + 1..].split_whitespace().collect();
            if tail.first() != Some(&"default") || tail.len() != 2 {
                return Err(format!("bad switch default in `{line}`"));
            }
            let default = parse_target(tail[1])?;
            Ok(Instr::Switch {
                r,
                lo,
                table,
                default,
            })
        }
        "j" => Ok(Instr::Jump {
            label: parse_label(tok(0)?)?,
        }),
        "jr" => Ok(Instr::JumpReg {
            r: parse_reg(tok(0)?)?,
        }),
        "gethdlr" => Ok(Instr::GetHdlr {
            d: parse_reg(tok(0)?)?,
        }),
        "sethdlr" => Ok(Instr::SetHdlr {
            s: parse_reg(tok(0)?)?,
        }),
        "print" => Ok(Instr::Print {
            s: parse_reg(tok(0)?)?,
        }),
        "halt" => Ok(Instr::Halt {
            s: parse_reg(tok(0)?)?,
        }),
        "uncaught" => Ok(Instr::Uncaught {
            s: parse_reg(tok(0)?)?,
        }),
        _ if mn.starts_with("br.!") => {
            let op = &mn[4..];
            let (a, b) = (tok(0)?, tok(1)?);
            if tok(2)? != "->" {
                return Err(format!("expected `->` in `{line}`"));
            }
            let target = parse_target(tok(3)?)?;
            if op == "peq" {
                return Ok(Instr::PolyEqBranch {
                    a: parse_reg(a)?,
                    b: parse_reg(b)?,
                    target,
                });
            }
            if let Some(fop) = match op {
                "flt" => Some(FBrOp::Lt),
                "fle" => Some(FBrOp::Le),
                "fgt" => Some(FBrOp::Gt),
                "fge" => Some(FBrOp::Ge),
                "feq" => Some(FBrOp::Eq),
                "fne" => Some(FBrOp::Ne),
                _ => None,
            } {
                return Ok(Instr::FBranch {
                    op: fop,
                    a: parse_freg(a)?,
                    b: parse_freg(b)?,
                    target,
                });
            }
            if let Some(sop) = match op {
                "seq" => Some(SBrOp::Eq),
                "sne" => Some(SBrOp::Ne),
                "slt" => Some(SBrOp::Lt),
                "sle" => Some(SBrOp::Le),
                "sgt" => Some(SBrOp::Gt),
                "sge" => Some(SBrOp::Ge),
                _ => None,
            } {
                return Ok(Instr::SBranch {
                    op: sop,
                    a: parse_reg(a)?,
                    b: parse_reg(b)?,
                    target,
                });
            }
            let bop = match op {
                "lt" => BrOp::Lt,
                "le" => BrOp::Le,
                "gt" => BrOp::Gt,
                "ge" => BrOp::Ge,
                "eq" => BrOp::Eq,
                "ne" => BrOp::Ne,
                "boxed" => BrOp::Boxed,
                other => return Err(format!("unknown branch op `{other}`")),
            };
            Ok(Instr::Branch {
                op: bop,
                a: parse_reg(a)?,
                b: parse_reg(b)?,
                target,
            })
        }
        _ if mn.starts_with("rt.") => {
            let op = match &mn[3..] {
                "strcat" => RtOp::StrCat,
                "strsize" => RtOp::StrSize,
                "strsub" => RtOp::StrSub,
                "itos" => RtOp::IntToString,
                "rtos" => RtOp::RealToString,
                other => return Err(format!("unknown runtime op `{other}`")),
            };
            let d = parse_reg(tok(0)?)?;
            let (mut a, mut b, mut fa) = (0, 0, 0);
            match op {
                RtOp::RealToString => fa = parse_freg(tok(1)?)?,
                RtOp::StrSize | RtOp::IntToString => a = parse_reg(tok(1)?)?,
                _ => {
                    a = parse_reg(tok(1)?)?;
                    b = parse_reg(tok(2)?)?;
                }
            }
            Ok(Instr::Rt { op, d, a, b, fa })
        }
        other => Err(format!("unknown mnemonic `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registers_render_by_class() {
        assert_eq!(format!("{}", R(5)), "r5");
        assert_eq!(format!("{}", R(31)), "r31");
        assert_eq!(format!("{}", R(32)), "s32");
        assert_eq!(format!("{}", F(7)), "f7");
    }

    #[test]
    fn instr_rendering() {
        let i = Instr::Arith {
            op: AOp::Add,
            d: 3,
            a: 1,
            b: 2,
        };
        assert_eq!(format!("{i}"), "add     r3, r1, r2");
        let i = Instr::Branch {
            op: BrOp::Lt,
            a: 1,
            b: 2,
            target: 9,
        };
        assert_eq!(format!("{i}"), "br.!lt   r1, r2 -> @9");
        let i = Instr::Alloc {
            d: 4,
            kind: AllocKind::Record,
            words: vec![1, 2],
            flts: vec![0],
        };
        assert_eq!(format!("{i}"), "alloc   r4, record [r1, r2, f0]");
        let i = Instr::Switch {
            r: 1,
            lo: 0,
            table: vec![3, 5],
            default: 7,
        };
        assert_eq!(format!("{i}"), "switch  r1, lo=0 [@3, @5] default @7");
    }

    #[test]
    fn parse_roundtrips_representative_instrs() {
        // Instr has no PartialEq (f64 fields), so round-trips compare
        // the re-rendered text.
        let cases = [
            "move    r1, r2",
            "fmove   f1, f2",
            "li      r1, -42",
            "lf      f3, 2.5",
            "lstr    r2, pool[7]",
            "llabel  r2, L9",
            "add     r3, r1, r2",
            "mod     r3, s33, r2",
            "fadd    f3, f1, f2",
            "fsqrt   f1, f2",
            "floor   r1, f2",
            "i2r     f1, r2",
            "lw      r1, r2[3]",
            "sw      r1, r2[3]",
            "sw.wb   r1, r2[3]",
            "lw.f    f1, r2[4]",
            "sw.f    f1, r2[4]",
            "lwx     r1, r2[r3]",
            "swx     r1, r2[r3]",
            "swx.wb  r1, r2[r3]",
            "alloc   r4, record [r1, r2, f0]",
            "alloc   r4, record []",
            "alloc   r4, ref [r1]",
            "allocarr r1, len=r2, init=r3",
            "arrlen  r1, r2",
            "fbox    r1, f2",
            "funbox  f1, r2",
            "br.!lt   r1, r2 -> @9",
            "br.!boxed r1, r1 -> @4",
            "br.!flt  f1, f2 -> @3",
            "br.!seq  r1, r2 -> @3",
            "br.!peq r1, r2 -> @3",
            "switch  r1, lo=0 [@3, @5] default @7",
            "switch  r1, lo=-2 [] default @1",
            "j       L2",
            "jr      r5",
            "rt.strcat r1, r2, r3",
            "rt.strsize  r1, r2",
            "rt.strsub r1, r2, r3",
            "rt.itos     r1, r2",
            "rt.rtos  r1, f2",
            "gethdlr r1",
            "sethdlr r1",
            "print   r1",
            "halt    r1",
            "uncaught r1",
        ];
        for line in cases {
            let ins = parse_instr(line).unwrap_or_else(|e| panic!("{line}: {e}"));
            let back = format!("{ins}");
            assert_eq!(
                back.split_whitespace().collect::<Vec<_>>(),
                line.split_whitespace().collect::<Vec<_>>(),
                "round-trip drift for `{line}`"
            );
        }
    }

    #[test]
    fn parse_accepts_listing_margin() {
        let ins = parse_instr("  12:  li      r1, 42").expect("margin stripped");
        assert_eq!(format!("{ins}"), "li      r1, 42");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_instr("frobnicate r1").is_err());
        assert!(parse_instr("br.!zz r1, r2 -> @0").is_err());
        assert!(parse_instr("li r1").is_err());
    }

    #[test]
    fn program_listing_shows_entry_and_pool() {
        let prog = MachineProgram {
            blocks: vec![CodeBlock {
                name: "main".into(),
                instrs: vec![Instr::LoadI { d: 1, imm: 42 }, Instr::Halt { s: 1 }],
            }],
            entry: 0,
            pool: vec!["hi".into()],
        };
        let s = format!("{prog}");
        assert!(s.contains("pool[0] = \"hi\""), "{s}");
        assert!(s.contains("L0: <main>  ; entry"), "{s}");
        assert!(s.contains("0:  li      r1, 42"), "{s}");
        assert!(s.contains("1:  halt    r1"), "{s}");
    }
}
