//! The execution substrate: code generation to a MIPS-like abstract
//! machine, the runtime heap with two-part object descriptors and a
//! two-generation copying collector, and the cycle-accounting
//! interpreter standing in for the paper's DECstation 5000.

#![warn(missing_docs)]

pub mod codegen;
pub mod disasm;
pub mod heap;
pub mod isa;
pub mod sched;
mod threaded;
pub mod verify;
pub mod vm;

pub use codegen::codegen;
pub use disasm::parse_instr;
pub use heap::{GcKind, GcMode, Heap, HeapConfig, ObjKind, SliceOutcome};
pub use isa::{CodeBlock, Instr, InstrClass, MachineProgram, N_INSTR_CLASSES};
pub use sched::{
    AdmissionError, SchedConfigError, SchedPolicy, SchedStats, SchedulerBuilder, TenantOutcome,
    TenantReport, TenantSpec, VmScheduler,
};
pub use verify::{
    verify_bytecode, verify_threaded, BytecodeVerifySummary, BytecodeViolation,
    ThreadedVerifySummary,
};
pub use vm::{
    pause_bucket, run, Dispatch, DispatchStats, FaultInject, Outcome, RunStats, VmConfig,
    VmInstance, VmResult, N_PAUSE_BUCKETS, PAUSE_BUCKET_LIMITS,
};
