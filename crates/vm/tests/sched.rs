//! Policy-driven scheduler coverage: EDF meets every deadline on a
//! feasible workload, priority is strict but starvation-bounded,
//! admission control rejects oversubscription with typed errors, a
//! thousand fault-injected tenants stay isolated, and overshoot is
//! accounted against each tenant's own quantum.

use sml_vm::isa::{AOp, AllocKind, BrOp};
use sml_vm::{
    run, AdmissionError, CodeBlock, Dispatch, FaultInject, GcMode, Instr, MachineProgram,
    SchedConfigError, SchedPolicy, SchedulerBuilder, TenantOutcome, TenantSpec, VmConfig, VmResult,
    VmScheduler,
};
use std::sync::Arc;

fn prog(instrs: Vec<Instr>) -> MachineProgram {
    MachineProgram {
        blocks: vec![CodeBlock {
            name: "entry".into(),
            instrs,
        }],
        entry: 0,
        pool: Vec::new(),
    }
}

/// A counted loop summing 0..n — deterministic cycle cost, no
/// allocation, so solo cycle measurements are exact.
fn sum_loop(n: i64) -> MachineProgram {
    prog(vec![
        Instr::LoadI { d: 1, imm: 0 }, // acc
        Instr::LoadI { d: 2, imm: 0 }, // i
        Instr::LoadI { d: 3, imm: n }, // limit
        Instr::LoadI { d: 4, imm: 1 },
        // loop @4
        Instr::Arith {
            op: AOp::Add,
            d: 1,
            a: 1,
            b: 2,
        },
        Instr::Arith {
            op: AOp::Add,
            d: 2,
            a: 2,
            b: 4,
        },
        // Back-edge while i < limit (Branch jumps when the comparison
        // is false).
        Instr::Branch {
            op: BrOp::Ge,
            a: 2,
            b: 3,
            target: 4,
        },
        Instr::Halt { s: 1 },
    ])
}

/// Allocates `n` two-word records, keeping none live: heavy GC traffic
/// with a bounded live set.
fn alloc_loop(n: i64) -> MachineProgram {
    prog(vec![
        Instr::LoadI { d: 1, imm: 0 },
        Instr::LoadI { d: 2, imm: n },
        Instr::LoadI { d: 7, imm: 1 },
        Instr::LoadI { d: 5, imm: 0 }, // checksum
        // loop @4
        Instr::Alloc {
            d: 4,
            kind: AllocKind::Record,
            words: vec![1, 7],
            flts: vec![],
        },
        Instr::Load {
            d: 6,
            base: 4,
            off: 0,
        },
        Instr::Arith {
            op: AOp::Add,
            d: 5,
            a: 5,
            b: 6,
        },
        Instr::Arith {
            op: AOp::Add,
            d: 1,
            a: 1,
            b: 7,
        },
        Instr::Branch {
            op: BrOp::Ge,
            a: 1,
            b: 2,
            target: 4,
        },
        Instr::Halt { s: 5 },
    ])
}

/// Retains every allocation: any finite heap quota ends in
/// `HeapExhausted`.
fn retainer(n: i64) -> MachineProgram {
    prog(vec![
        Instr::LoadI { d: 1, imm: 0 },
        Instr::LoadI { d: 2, imm: n },
        Instr::LoadI { d: 3, imm: 0 },
        Instr::LoadI { d: 7, imm: 1 },
        Instr::Alloc {
            d: 4,
            kind: AllocKind::Record,
            words: vec![1, 3],
            flts: vec![],
        },
        Instr::Move { d: 3, s: 4 },
        Instr::Arith {
            op: AOp::Add,
            d: 1,
            a: 1,
            b: 7,
        },
        Instr::Branch {
            op: BrOp::Ge,
            a: 1,
            b: 2,
            target: 4,
        },
        Instr::Halt { s: 1 },
    ])
}

/// Small generational geometry that forces frequent collections.
fn small_heap(max_pause_cycles: u64) -> VmConfig {
    VmConfig {
        gc_mode: GcMode::Generational,
        nursery_words: 256,
        tenured_words: 2048,
        promote_after: 1,
        max_pause_cycles,
        ..VmConfig::default()
    }
}

fn build(policy: SchedPolicy, quantum: u64) -> VmScheduler {
    SchedulerBuilder::new()
        .policy(policy)
        .quantum(quantum)
        .build()
        .unwrap()
}

#[test]
fn builder_validates_knobs_like_session_builder() {
    for (builder, field) in [
        (SchedulerBuilder::new().quantum(0), "quantum"),
        (SchedulerBuilder::new().aging_slices(0), "aging_slices"),
        (
            SchedulerBuilder::new().heap_capacity_words(0),
            "heap_capacity_words",
        ),
        (
            SchedulerBuilder::new().fuel_capacity_cycles(0),
            "fuel_capacity_cycles",
        ),
    ] {
        assert_eq!(
            builder.build().err(),
            Some(SchedConfigError::MustBeNonzero { field }),
        );
    }
    let sched = SchedulerBuilder::new()
        .quantum(1)
        .policy(SchedPolicy::Priority)
        .heap_capacity_words(1)
        .fuel_capacity_cycles(1)
        .aging_slices(1)
        .build()
        .unwrap();
    assert!(sched.is_empty());
    assert_eq!(sched.len(), 0);
}

#[test]
fn policy_parses_and_prints_stable_names() {
    for (name, policy) in [
        ("round-robin", SchedPolicy::RoundRobin),
        ("priority", SchedPolicy::Priority),
        ("deadline", SchedPolicy::Deadline),
    ] {
        assert_eq!(name.parse::<SchedPolicy>().unwrap(), policy);
        assert_eq!(policy.name(), name);
    }
    assert_eq!(
        "rr".parse::<SchedPolicy>().unwrap(),
        SchedPolicy::RoundRobin
    );
    assert_eq!("edf".parse::<SchedPolicy>().unwrap(), SchedPolicy::Deadline);
    let err = "fifo".parse::<SchedPolicy>().unwrap_err();
    assert!(err.contains("round-robin|priority|deadline"), "{err}");
}

#[test]
fn admission_rejects_heap_oversubscription_with_a_typed_error() {
    let p = Arc::new(sum_loop(10));
    let mut sched = SchedulerBuilder::new()
        .heap_capacity_words(5_000)
        .build()
        .unwrap();
    let cfg = VmConfig {
        tenured_words: 2048,
        ..VmConfig::default()
    };
    assert_eq!(sched.admit(TenantSpec::new(p.clone(), &cfg)), Ok(0));
    assert_eq!(sched.admit(TenantSpec::new(p.clone(), &cfg)), Ok(1));
    // 4096 of 5000 committed: a third 2048-word quota must not fit.
    assert_eq!(
        sched.admit(TenantSpec::new(p.clone(), &cfg)),
        Err(AdmissionError::HeapOversubscribed {
            requested: 2048,
            committed: 4096,
            capacity: 5_000,
        })
    );
    assert_eq!(sched.len(), 2, "a rejected spec must not be admitted");
    let (reports, stats) = sched.run_all();
    assert_eq!(reports.len(), 2);
    assert_eq!(stats.tenants, 2);
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.done, 2);
}

#[test]
fn admission_rejects_fuel_oversubscription_with_a_typed_error() {
    let p = Arc::new(sum_loop(10));
    let mut sched = SchedulerBuilder::new()
        .fuel_capacity_cycles(100_000)
        .build()
        .unwrap();
    let cfg = VmConfig {
        max_cycles: 60_000,
        ..VmConfig::default()
    };
    assert_eq!(sched.admit(TenantSpec::new(p.clone(), &cfg)), Ok(0));
    assert_eq!(
        sched.admit(TenantSpec::new(p, &cfg)),
        Err(AdmissionError::FuelOversubscribed {
            requested: 60_000,
            committed: 60_000,
            capacity: 100_000,
        })
    );
    // The typed errors render a human-readable reason.
    let msg = AdmissionError::FuelOversubscribed {
        requested: 60_000,
        committed: 60_000,
        capacity: 100_000,
    }
    .to_string();
    assert!(msg.contains("fuel quota of 60000 cycles"), "{msg}");
}

/// EDF property: on a synthetically feasible workload — deadlines set
/// at or beyond each tenant's completion time under
/// earliest-deadline-first — no tenant ever misses, whatever the
/// admission order. Exercised across several workload shapes and both
/// dispatch engines.
#[test]
fn edf_never_misses_on_a_feasible_workload() {
    for engine in [Dispatch::Decode, Dispatch::Threaded] {
        let cfg = VmConfig {
            dispatch: engine,
            ..VmConfig::default()
        };
        for n_tenants in [3usize, 8, 17] {
            // Distinct per-tenant costs, measured solo (exact: the
            // machine is deterministic).
            let progs: Vec<Arc<MachineProgram>> = (0..n_tenants)
                .map(|i| Arc::new(sum_loop(200 + 157 * i as i64)))
                .collect();
            let costs: Vec<u64> = progs.iter().map(|p| run(p, &cfg).stats.cycles).collect();
            // Feasibility: EDF (deadline order == cost order here) runs
            // tenant i to completion at exactly prefix_cost(i), so the
            // prefix sums ARE the tightest feasible deadlines.
            let mut prefix = 0u64;
            let deadlines: Vec<u64> = costs
                .iter()
                .map(|c| {
                    prefix += c;
                    prefix
                })
                .collect();
            let mut sched = build(SchedPolicy::Deadline, 1_000);
            // Admit in scrambled order so EDF has to reorder.
            let order: Vec<usize> = (0..n_tenants).map(|i| (i * 7 + 3) % n_tenants).collect();
            let mut admitted = vec![0usize; n_tenants];
            for (slot, &i) in order.iter().enumerate() {
                let idx = sched
                    .admit(TenantSpec::new(progs[i].clone(), &cfg).deadline_cycles(deadlines[i]))
                    .unwrap();
                assert_eq!(idx, slot);
                admitted[slot] = i;
            }
            let (reports, stats) = sched.run_all();
            assert_eq!(stats.deadline_missed, 0, "feasible workload missed");
            assert_eq!(stats.done, n_tenants as u64);
            for (slot, r) in reports.iter().enumerate() {
                let i = admitted[slot];
                assert_eq!(r.outcome, TenantOutcome::Done);
                let solo = run(&progs[i], &cfg);
                assert_eq!(r.result, solo.result);
                assert_eq!(r.stats, solo.stats, "tenant {i} stats diverged from solo");
            }
        }
    }
}

#[test]
fn infeasible_deadline_reports_missed_with_solo_identical_result() {
    let p = Arc::new(sum_loop(2_000));
    let cfg = VmConfig::default();
    let solo = run(&p, &cfg);
    let mut sched = build(SchedPolicy::Deadline, 1_000);
    sched
        .admit(TenantSpec::new(p.clone(), &cfg).deadline_cycles(1))
        .unwrap();
    let (reports, stats) = sched.run_all();
    assert_eq!(reports[0].outcome, TenantOutcome::DeadlineMissed);
    assert_eq!(stats.deadline_missed, 1);
    assert_eq!(stats.done, 0, "the outcome tallies partition the tenants");
    // The miss is a clock judgment, never a behavior change.
    assert_eq!(reports[0].result, solo.result);
    assert_eq!(reports[0].output, solo.output);
    assert_eq!(reports[0].stats, solo.stats);
}

#[test]
fn resource_outcomes_take_precedence_over_deadline_misses() {
    let p = Arc::new(retainer(100_000));
    let cfg = VmConfig {
        tenured_words: 4096,
        ..small_heap(0)
    };
    let mut sched = build(SchedPolicy::Deadline, 1_000);
    sched
        .admit(TenantSpec::new(p, &cfg).deadline_cycles(1))
        .unwrap();
    let (reports, stats) = sched.run_all();
    assert_eq!(reports[0].outcome, TenantOutcome::HeapExhausted);
    assert_eq!(stats.deadline_missed, 0);
    assert_eq!(stats.heap_exhausted, 1);
}

#[test]
fn deadlines_are_judged_under_every_policy() {
    // Two equal tenants, a deadline only one round-robin interleaving
    // can meet: under RR both finish near the end, so the second
    // tenant's tight deadline (set to its *solo* cost) must be missed.
    let p = Arc::new(sum_loop(2_000));
    let cfg = VmConfig::default();
    let solo_cycles = run(&p, &cfg).stats.cycles;
    let mut sched = build(SchedPolicy::RoundRobin, 1_000);
    sched.admit(TenantSpec::new(p.clone(), &cfg)).unwrap();
    sched
        .admit(TenantSpec::new(p, &cfg).deadline_cycles(solo_cycles))
        .unwrap();
    let (reports, stats) = sched.run_all();
    assert_eq!(reports[1].outcome, TenantOutcome::DeadlineMissed);
    assert_eq!(stats.deadline_missed, 1);
}

#[test]
fn priority_is_strict_under_large_aging() {
    // Admission order is the *reverse* of priority; the schedule must
    // invert it.
    let p = Arc::new(sum_loop(1_500));
    let cfg = VmConfig::default();
    let mut sched = build(SchedPolicy::Priority, 500);
    for prio in [0u32, 5, 9] {
        sched
            .admit(TenantSpec::new(p.clone(), &cfg).priority(prio))
            .unwrap();
    }
    let (reports, stats) = sched.run_all();
    assert_eq!(stats.done, 3);
    let firsts: Vec<u64> = reports.iter().map(|r| r.first_slice.unwrap()).collect();
    assert!(
        firsts[2] < firsts[1] && firsts[1] < firsts[0],
        "higher priority must be scheduled first: {firsts:?}"
    );
    // With the default aging (1024 slices per step) and runs this
    // short, priority is effectively strict: the top tenant runs to
    // completion before anyone else starts.
    assert_eq!(firsts[2], 0);
    assert!(firsts[1] >= reports[2].slices);
}

#[test]
fn priority_aging_bounds_starvation() {
    let p = Arc::new(sum_loop(4_000));
    let cfg = VmConfig::default();
    let aging = 4u64;
    let gap = 8u32;
    let mut sched = SchedulerBuilder::new()
        .policy(SchedPolicy::Priority)
        .quantum(200)
        .aging_slices(aging)
        .build()
        .unwrap();
    sched.admit(TenantSpec::new(p.clone(), &cfg)).unwrap(); // priority 0
    sched
        .admit(TenantSpec::new(p.clone(), &cfg).priority(gap))
        .unwrap();
    let (reports, stats) = sched.run_all();
    assert_eq!(stats.done, 2);
    // The starvation bound: the priority-0 tenant yields at most
    // `gap * aging` slices (plus the initial enqueue skew) before its
    // seniority wins.
    let bound = u64::from(gap) * aging + 2;
    let first = reports[0].first_slice.unwrap();
    assert!(
        first <= bound,
        "priority-0 tenant starved for {first} slices (bound {bound}): {stats:?}"
    );
    // And it genuinely waited: the high-priority tenant ran first.
    assert_eq!(reports[1].first_slice.unwrap(), 0);
}

#[test]
fn thousand_tenant_storm_isolates_fault_injected_neighbors() {
    const N: usize = 1_000;
    let good_prog = Arc::new(alloc_loop(150));
    let hostile_prog = Arc::new(retainer(100_000));
    // Every tenant runs with forced collections before every 3rd
    // allocation — far off the natural nursery schedule — and every
    // 97th tenant retains everything until its quota traps.
    let good_cfg = VmConfig {
        fault: FaultInject {
            gc_every_n_allocs: Some(3),
            ..FaultInject::default()
        },
        ..small_heap(1_200)
    };
    let hostile_cfg = VmConfig {
        tenured_words: 4096,
        ..small_heap(1_200)
    };
    let solo = run(&good_prog, &good_cfg);
    assert!(
        matches!(solo.result, VmResult::Value(_)),
        "{:?}",
        solo.result
    );
    let mut sched = build(SchedPolicy::RoundRobin, 2_000);
    for i in 0..N {
        let spec = if i % 97 == 0 {
            TenantSpec::new(hostile_prog.clone(), &hostile_cfg)
        } else {
            TenantSpec::new(good_prog.clone(), &good_cfg)
        };
        sched.admit(spec).unwrap();
    }
    let (reports, stats) = sched.run_all();
    assert_eq!(stats.tenants, N as u64);
    assert_eq!(stats.ready_peak, N as u64);
    let hostiles = (0..N).filter(|i| i % 97 == 0).count() as u64;
    assert_eq!(stats.heap_exhausted, hostiles);
    assert_eq!(stats.done, N as u64 - hostiles);
    for (i, r) in reports.iter().enumerate() {
        if i % 97 == 0 {
            assert_eq!(r.outcome, TenantOutcome::HeapExhausted, "tenant {i}");
        } else {
            assert_eq!(r.outcome, TenantOutcome::Done, "tenant {i}");
            assert_eq!(r.result, solo.result, "tenant {i} result diverged");
            assert_eq!(r.output, solo.output, "tenant {i} output diverged");
            assert_eq!(r.stats, solo.stats, "tenant {i} stats diverged from solo");
        }
    }
}

#[test]
fn overshoot_is_accounted_against_each_tenants_own_quantum() {
    // Mixed quanta: one tenant on a 500-cycle quantum, one on 5000.
    // PR 7 measured overshoot against the single global quantum, which
    // under-reports for small-quantum tenants; the bound is per-tenant.
    let p = Arc::new(alloc_loop(2_000));
    let cfg = small_heap(1_200);
    let mut sched = build(SchedPolicy::RoundRobin, 5_000);
    sched
        .admit(TenantSpec::new(p.clone(), &cfg).quantum_cycles(500))
        .unwrap();
    sched.admit(TenantSpec::new(p.clone(), &cfg)).unwrap();
    let (reports, stats) = sched.run_all();
    assert_eq!(stats.done, 2);
    for (i, r) in reports.iter().enumerate() {
        assert_eq!(r.stats.pause_overruns, 0);
        // One instruction (or fused pair) + one budgeted GC pause past
        // the tenant's own quantum edge.
        assert!(
            r.max_overshoot <= 2_000,
            "tenant {i} overshoot unbounded: {} (stats {:?})",
            r.max_overshoot,
            stats
        );
    }
    // The aggregate is exactly the per-tenant maximum, not a global
    // re-measure against the default quantum.
    assert_eq!(
        stats.max_overshoot,
        reports.iter().map(|r| r.max_overshoot).max().unwrap()
    );
    // The small-quantum tenant was preempted far more often.
    assert!(reports[0].slices > reports[1].slices * 2);
}

#[test]
fn round_robin_matches_the_pre_policy_schedule() {
    // The heap-keyed round-robin must reproduce the old O(n) scan's
    // schedule exactly: every unfinished tenant gets one slice per
    // pass, in admission order — observable through rounds == max
    // slices and solo-identical per-tenant behavior.
    let p = Arc::new(sum_loop(700));
    let cfg = VmConfig::default();
    let solo = run(&p, &cfg);
    let mut sched = build(SchedPolicy::RoundRobin, 97);
    for _ in 0..4 {
        sched.admit(TenantSpec::new(p.clone(), &cfg)).unwrap();
    }
    let (reports, stats) = sched.run_all();
    assert_eq!(stats.done, 4);
    assert!(stats.rounds > 1, "{stats:?}");
    assert_eq!(
        stats.rounds,
        reports.iter().map(|r| r.slices).max().unwrap()
    );
    for r in &reports {
        assert_eq!(r.stats, solo.stats);
        // Identical tenants advance in lockstep: tenant i first runs at
        // global slice i.
    }
    let firsts: Vec<u64> = reports.iter().map(|r| r.first_slice.unwrap()).collect();
    assert_eq!(firsts, vec![0, 1, 2, 3]);
}

#[test]
#[allow(deprecated)]
fn deprecated_constructor_and_spawn_still_schedule() {
    let p = sum_loop(500);
    let mut sched = VmScheduler::new(97);
    for _ in 0..3 {
        sched.spawn(&p, &VmConfig::default());
    }
    let (reports, stats) = sched.run_all();
    assert_eq!(stats.done, 3);
    let solo = run(&p, &VmConfig::default());
    for r in &reports {
        assert_eq!(r.outcome, TenantOutcome::Done);
        assert_eq!(r.result, solo.result);
        assert_eq!(r.stats, solo.stats);
    }
}
