//! Property tests for the heap and collector: random object graphs
//! survive collections intact.

use sml_testkit::{run_cases, Rng};
use sml_vm::heap::{tag_int, untag_int, GcKind, GcMode, Heap, HeapConfig, ObjKind};

/// A randomly configured heap: generational (with a small nursery and a
/// random promotion threshold, so collections promote eagerly) or the
/// semispace reference collector.
fn gen_heap(rng: &mut Rng) -> Heap {
    let generational = rng.range_usize(0, 4) > 0;
    Heap::new(&HeapConfig {
        mode: if generational {
            GcMode::Generational
        } else {
            GcMode::Semispace
        },
        // Large enough that building the graph plus garbage never fills
        // the nursery (the builder only collects explicitly).
        nursery_words: 1 << rng.range_usize(11, 14),
        tenured_words: 1 << 16,
        promote_after: rng.range_usize(1, 4) as u32,
        static_words: 1 << 10,
        max_pause_cycles: 0,
    })
}

/// A recipe for building a small object graph.
#[derive(Debug, Clone)]
enum Node {
    Int(i32),
    Float(f64),
    Record(Vec<Node>),
    Str(String),
}

fn gen_node(rng: &mut Rng, depth: usize) -> Node {
    if depth == 0 || rng.range_usize(0, 10) < 4 {
        return match rng.range_usize(0, 3) {
            0 => Node::Int(rng.range_i32(-1000, 1000)),
            1 => Node::Float(rng.f64_in(-1e6, 1e6)),
            _ => Node::Str(rng.lowercase_string(12)),
        };
    }
    let n = rng.range_usize(0, 4);
    Node::Record((0..n).map(|_| gen_node(rng, depth - 1)).collect())
}

/// Builds the graph in the heap; returns the root word.
fn build(h: &mut Heap, n: &Node) -> u32 {
    match n {
        Node::Int(i) => tag_int(*i as i64),
        Node::Float(x) => {
            let p = h.alloc(ObjKind::BoxedFloat, 0, 1).unwrap();
            h.store_f64(p, 0, *x);
            p
        }
        Node::Str(s) => h.alloc_string(s).unwrap(),
        Node::Record(fields) => {
            // Words first, floats raw after (the record layout).
            let words: Vec<&Node> = fields
                .iter()
                .filter(|f| !matches!(f, Node::Float(_)))
                .collect();
            let floats: Vec<&Node> = fields
                .iter()
                .filter(|f| matches!(f, Node::Float(_)))
                .collect();
            let built: Vec<u32> = words.iter().map(|f| build(h, f)).collect();
            let p = h
                .alloc(ObjKind::Record, words.len() as u32, floats.len() as u32)
                .unwrap();
            for (i, w) in built.iter().enumerate() {
                h.store(p, i, *w);
            }
            for (j, f) in floats.iter().enumerate() {
                let Node::Float(x) = f else { unreachable!() };
                h.store_f64(p, words.len() + 2 * j, *x);
            }
            p
        }
    }
}

/// Checks the graph against the recipe.
fn verify(h: &Heap, n: &Node, w: u32) -> Result<(), String> {
    match n {
        Node::Int(i) => {
            if untag_int(w) == *i as i64 {
                Ok(())
            } else {
                Err(format!("int {} != {}", untag_int(w), i))
            }
        }
        Node::Float(x) => {
            let got = h.load_f64(w, 0);
            if got == *x {
                Ok(())
            } else {
                Err(format!("float {got} != {x}"))
            }
        }
        Node::Str(s) => {
            let got = h.read_string(w);
            if &got == s {
                Ok(())
            } else {
                Err(format!("str {got:?} != {s:?}"))
            }
        }
        Node::Record(fields) => {
            let words: Vec<&Node> = fields
                .iter()
                .filter(|f| !matches!(f, Node::Float(_)))
                .collect();
            let floats: Vec<&Node> = fields
                .iter()
                .filter(|f| matches!(f, Node::Float(_)))
                .collect();
            for (i, f) in words.iter().enumerate() {
                verify(h, f, h.load(w, i))?;
            }
            for (j, f) in floats.iter().enumerate() {
                let Node::Float(x) = f else { unreachable!() };
                let got = h.load_f64(w, words.len() + 2 * j);
                if got != *x {
                    return Err(format!("raw float {got} != {x}"));
                }
            }
            Ok(())
        }
    }
}

#[test]
fn graphs_survive_collection() {
    run_cases("graphs_survive_collection", 48, |rng| {
        let n = gen_node(rng, 4);
        let garbage = rng.range_usize(0, 200);
        let mut h = gen_heap(rng);
        let mut root = build(&mut h, &n);
        // Interleave garbage.
        for i in 0..garbage {
            let g = h.alloc(ObjKind::Record, 1, 0).unwrap();
            h.store(g, 0, tag_int(i as i64));
        }
        // A random interleaving of minor and major collections (with
        // promotion in between) must preserve the whole graph.
        for _ in 0..rng.range_usize(2, 5) {
            let kind = if rng.range_usize(0, 3) == 0 {
                GcKind::Major
            } else {
                GcKind::Minor
            };
            assert!(h.collect(&mut [&mut root], kind), "collection overflowed");
            assert!(verify(&h, &n, root).is_ok(), "{:?}", verify(&h, &n, root));
        }
    });
}

#[test]
fn poly_eq_agrees_with_recipe_equality() {
    run_cases("poly_eq_agrees_with_recipe_equality", 48, |rng| {
        let a = gen_node(rng, 4);
        let b = gen_node(rng, 4);
        let mut h = gen_heap(rng);
        let wa = build(&mut h, &a);
        let wa2 = build(&mut h, &a);
        let wb = build(&mut h, &b);
        // Structural equality must at least be reflexive across copies.
        assert!(h.poly_eq(wa, wa2).0, "copies of the same recipe are equal");
        // And symmetric with b.
        assert_eq!(h.poly_eq(wa, wb).0, h.poly_eq(wb, wa).0);
    });
}
