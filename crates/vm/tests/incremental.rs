//! Incremental-major and scheduler coverage: bounded pauses preserve
//! program results byte-for-byte, fault-injected yields interleave the
//! mutator with an active major (exercising the read-barrier and
//! black-allocation paths), and the round-robin scheduler isolates a
//! quota-exhausting tenant from its neighbors.

use sml_vm::isa::{AOp, AllocKind, BrOp};
use sml_vm::{
    run, CodeBlock, GcMode, Instr, InstrClass, MachineProgram, RunStats, SchedulerBuilder,
    TenantOutcome, TenantSpec, VmConfig, VmResult, VmScheduler,
};
use std::sync::Arc;

/// A default round-robin scheduler on the given quantum.
fn sched_of(quantum: u64) -> VmScheduler {
    SchedulerBuilder::new().quantum(quantum).build().unwrap()
}

/// Admits one tenant of `p` under `cfg` (uncapped, cannot reject).
fn spawn(sched: &mut VmScheduler, p: &MachineProgram, cfg: &VmConfig) {
    sched
        .admit(TenantSpec::new(Arc::new(p.clone()), cfg))
        .unwrap();
}

fn prog(instrs: Vec<Instr>) -> MachineProgram {
    MachineProgram {
        blocks: vec![CodeBlock {
            name: "entry".into(),
            instrs,
        }],
        entry: 0,
        pool: Vec::new(),
    }
}

fn assert_consistent(stats: &RunStats) {
    assert_eq!(
        stats.cycles_by_class.iter().sum::<u64>(),
        stats.cycles,
        "cycles_by_class must sum to cycles: {stats:?}"
    );
    assert_eq!(
        stats.cycles_by_class[InstrClass::Gc as usize],
        stats.gc_cycles,
        "Gc pseudo-class must carry exactly the collector cycles"
    );
    assert_eq!(
        stats.gc_cycles,
        stats.minor_gc_cycles + stats.major_gc_cycles,
        "collector cycles split exactly into minor + major: {stats:?}"
    );
}

/// An allocation-churn program. First a permanent chain of `keep` cons
/// cells is built and held in a register for the whole run — that is
/// the long-lived data every major collection must copy, which makes
/// unbudgeted major pauses genuinely long. Then `n` cons cells
/// `(i, prev)` are chained, and every 64th iteration the current chain
/// is walked (summing the stored values through `Load`, which is the
/// read-barrier path during an active incremental major) and then
/// dropped. The churn live set stays bounded while total allocation is
/// ~3(keep+n) words, so small heap geometry forces many minor *and*
/// major collections. Halts with a checksum that any GC bug would
/// corrupt.
fn churn(keep: i64, n: i64) -> MachineProgram {
    prog(vec![
        // r1=i, r2=limit, r3=chain, r5=checksum, r6=64, r7=1, r9=0,
        // r12=permanent chain
        Instr::LoadI { d: 1, imm: 0 },
        Instr::LoadI { d: 2, imm: keep },
        Instr::LoadI { d: 12, imm: 0 },
        Instr::LoadI { d: 7, imm: 1 },
        // prefix loop @4: build the permanent chain.
        Instr::Alloc {
            d: 4,
            kind: AllocKind::Record,
            words: vec![1, 12],
            flts: vec![],
        },
        Instr::Move { d: 12, s: 4 },
        Instr::Arith {
            op: AOp::Add,
            d: 1,
            a: 1,
            b: 7,
        },
        Instr::Branch {
            op: BrOp::Ge,
            a: 1,
            b: 2,
            target: 4,
        },
        // main setup
        Instr::LoadI { d: 1, imm: 0 },
        Instr::LoadI { d: 2, imm: n },
        Instr::LoadI { d: 3, imm: 0 },
        Instr::LoadI { d: 5, imm: 0 },
        Instr::LoadI { d: 6, imm: 64 },
        Instr::LoadI { d: 9, imm: 0 },
        // loop @14: chain a fresh cell and checksum its value back out
        // of the heap.
        Instr::Alloc {
            d: 4,
            kind: AllocKind::Record,
            words: vec![1, 3],
            flts: vec![],
        },
        Instr::Move { d: 3, s: 4 },
        Instr::Load {
            d: 10,
            base: 3,
            off: 0,
        },
        Instr::Arith {
            op: AOp::Add,
            d: 5,
            a: 5,
            b: 10,
        },
        Instr::Arith {
            op: AOp::Add,
            d: 1,
            a: 1,
            b: 7,
        },
        Instr::Arith {
            op: AOp::Mod,
            d: 8,
            a: 1,
            b: 6,
        },
        // Every 64th iteration: walk the churn chain (@21..25), drop it
        // (@26), and walk the permanent chain (@27..32) — the deep tail
        // of the permanent chain is what an in-flight major's scan has
        // not reached yet, so this is the load that exercises the read
        // barrier. Other iterations skip straight to the loop test
        // (@33).
        Instr::Branch {
            op: BrOp::Eq,
            a: 8,
            b: 9,
            target: 33,
        },
        // walk @21: follow `prev` pointers to nil, summing values.
        Instr::Branch {
            op: BrOp::Boxed,
            a: 3,
            b: 3,
            target: 26,
        },
        Instr::Load {
            d: 10,
            base: 3,
            off: 0,
        },
        Instr::Arith {
            op: AOp::Add,
            d: 5,
            a: 5,
            b: 10,
        },
        Instr::Load {
            d: 3,
            base: 3,
            off: 1,
        },
        // @25: unconditional back-edge to the walk head
        Instr::Branch {
            op: BrOp::Ne,
            a: 9,
            b: 9,
            target: 21,
        },
        // @26: drop the churn chain.
        Instr::LoadI { d: 3, imm: 0 },
        // @27: walk the permanent chain into the checksum.
        Instr::Move { d: 11, s: 12 },
        Instr::Branch {
            op: BrOp::Boxed,
            a: 11,
            b: 11,
            target: 33,
        },
        Instr::Load {
            d: 10,
            base: 11,
            off: 0,
        },
        Instr::Arith {
            op: AOp::Add,
            d: 5,
            a: 5,
            b: 10,
        },
        Instr::Load {
            d: 11,
            base: 11,
            off: 1,
        },
        Instr::Branch {
            op: BrOp::Ne,
            a: 9,
            b: 9,
            target: 28,
        },
        // @33: loop while i < n
        Instr::Branch {
            op: BrOp::Ge,
            a: 1,
            b: 2,
            target: 14,
        },
        Instr::Halt { s: 5 },
    ])
}

/// Like [`churn`] but never drops the chain: the live set grows without
/// bound, so any finite heap quota ends in `HeapExhausted`.
fn churn_retain(n: i64) -> MachineProgram {
    prog(vec![
        Instr::LoadI { d: 1, imm: 0 },
        Instr::LoadI { d: 2, imm: n },
        Instr::LoadI { d: 3, imm: 0 },
        Instr::LoadI { d: 7, imm: 1 },
        Instr::Alloc {
            d: 4,
            kind: AllocKind::Record,
            words: vec![1, 3],
            flts: vec![],
        },
        Instr::Move { d: 3, s: 4 },
        Instr::Arith {
            op: AOp::Add,
            d: 1,
            a: 1,
            b: 7,
        },
        Instr::Branch {
            op: BrOp::Ge,
            a: 1,
            b: 2,
            target: 4,
        },
        Instr::Halt { s: 1 },
    ])
}

/// Small heap geometry that forces frequent minors and regular majors
/// on the churn program.
fn small_heap(max_pause_cycles: u64) -> VmConfig {
    VmConfig {
        gc_mode: GcMode::Generational,
        nursery_words: 256,
        tenured_words: 2048,
        // Promote on the first surviving minor: the rolling chain
        // window keeps reaching tenured space, filling it with
        // soon-dead objects so majors fire regularly.
        promote_after: 1,
        max_pause_cycles,
        ..VmConfig::default()
    }
}

#[test]
fn incremental_budget_bounds_pauses_and_preserves_result() {
    let p = churn(400, 3_000);
    // Budget 1200 keeps the 256-word nursery unclamped
    // ((1200-150)/4 = 262 >= 256), so the collection schedule — and
    // hence promoted_words — is identical to stop-the-world.
    let stw = run(&p, &small_heap(0));
    let inc = run(&p, &small_heap(1_200));
    assert!(matches!(stw.result, VmResult::Value(_)), "{:?}", stw.result);
    assert_eq!(inc.result, stw.result, "budget must not change the result");
    assert_eq!(inc.output, stw.output);
    assert_consistent(&stw.stats);
    assert_consistent(&inc.stats);
    assert!(
        stw.stats.n_major_gcs >= 3,
        "geometry must force majors: {:?}",
        stw.stats
    );
    assert_eq!(
        inc.stats.promoted_words, stw.stats.promoted_words,
        "identical geometry must promote identically"
    );
    assert_eq!(inc.stats.gc_copied_words, stw.stats.gc_copied_words);
    // The bound itself: every recorded pause fits the budget, and
    // nothing was silently violated.
    assert_eq!(inc.stats.pause_overruns, 0, "{:?}", inc.stats);
    assert!(
        inc.stats.max_minor_pause <= 1_200,
        "minor pause over budget: {:?}",
        inc.stats
    );
    assert!(
        inc.stats.max_major_pause <= 1_200,
        "major slice over budget: {:?}",
        inc.stats
    );
    assert!(
        inc.stats.major_slices > inc.stats.n_major_gcs,
        "majors must actually be sliced: {:?}",
        inc.stats
    );
    // The unbudgeted run records whole majors as single pauses, and on
    // this geometry they are far over the incremental bound.
    assert!(stw.stats.max_major_pause > 1_200, "{:?}", stw.stats);
}

#[test]
fn yielded_slices_interleave_mutator_with_active_major() {
    let p = churn(400, 3_000);
    let quiet = run(&p, &small_heap(0));
    let mut cfg = small_heap(400);
    // One slice per allocation, yielding after each: a major spans many
    // mutator iterations, so the every-64th-iteration chain walk runs
    // against an active major and must hit from-space pointers.
    cfg.fault.yield_every_n_slices = Some(1);
    cfg.fault.gc_every_n_allocs = Some(1);
    let yielded = run(&p, &cfg);
    assert_eq!(
        yielded.result, quiet.result,
        "mutator work interleaved with an active major must not change the result: {:?}",
        yielded.stats
    );
    assert_eq!(yielded.output, quiet.output);
    assert_consistent(&yielded.stats);
    assert!(
        yielded.stats.major_slices > yielded.stats.n_major_gcs,
        "{:?}",
        yielded.stats
    );
    // With the mutator running mid-major, chain walks hit from-space
    // pointers and the read barrier must evacuate them.
    assert!(
        yielded.stats.barrier_words > 0,
        "yields must force read-barrier copies: {:?}",
        yielded.stats
    );
    assert_eq!(yielded.stats.pause_overruns, 0, "{:?}", yielded.stats);
    assert!(yielded.stats.max_major_pause <= 400, "{:?}", yielded.stats);
}

#[test]
fn scheduler_runs_tenants_to_solo_identical_results() {
    let p = churn(100, 1_500);
    let solo = run(&p, &small_heap(0));
    let mut sched = sched_of(5_000);
    let shared = Arc::new(p.clone());
    for _ in 0..3 {
        sched
            .admit(TenantSpec::new(shared.clone(), &small_heap(0)))
            .unwrap();
    }
    let (reports, stats) = sched.run_all();
    assert_eq!(stats.tenants, 3);
    assert_eq!(stats.done, 3);
    assert!(stats.rounds > 1, "quantum must actually preempt: {stats:?}");
    assert!(stats.preemptions > 0);
    for r in &reports {
        assert_eq!(r.outcome, TenantOutcome::Done);
        assert_eq!(r.result, solo.result, "co-scheduling changed a result");
        assert_eq!(r.output, solo.output);
        assert_eq!(
            r.stats.cycles, solo.stats.cycles,
            "per-tenant stats must match a solo run exactly"
        );
        assert_eq!(r.stats.promoted_words, solo.stats.promoted_words);
        assert!(r.slices > 1);
        assert_consistent(&r.stats);
    }
}

#[test]
fn scheduler_isolates_hostile_faulting_and_fuel_starved_tenants() {
    let good = churn(100, 1_500);
    let hog = churn_retain(100_000);
    let crasher = prog(vec![
        Instr::LoadI { d: 1, imm: 5 },
        Instr::Load {
            d: 2,
            base: 1,
            off: 0,
        },
        Instr::Halt { s: 2 },
    ]);
    let solo = run(&good, &small_heap(1_200));
    let mut sched = sched_of(5_000);
    // Three well-behaved tenants around one heap hog, one fault, and
    // one fuel-starved tenant.
    spawn(&mut sched, &good, &small_heap(1_200));
    spawn(&mut sched, &hog, &small_heap(0)); // 4096-word quota: exhausts
    spawn(&mut sched, &good, &small_heap(1_200));
    spawn(&mut sched, &crasher, &VmConfig::default());
    spawn(
        &mut sched,
        &good,
        &VmConfig {
            max_cycles: 2_000,
            ..small_heap(1_200)
        },
    );
    let idx_good = [0usize, 2];
    let (reports, stats) = sched.run_all();
    assert_eq!(reports[1].outcome, TenantOutcome::HeapExhausted);
    assert_eq!(reports[3].outcome, TenantOutcome::Fault);
    assert_eq!(reports[4].outcome, TenantOutcome::OutOfFuel);
    for &i in &idx_good {
        assert_eq!(
            reports[i].outcome,
            TenantOutcome::Done,
            "well-behaved tenant {i} must be unaffected"
        );
        assert_eq!(reports[i].result, solo.result);
        assert_eq!(reports[i].output, solo.output);
        assert_eq!(reports[i].stats.cycles, solo.stats.cycles);
    }
    assert_eq!(stats.done, 2);
    assert_eq!(stats.heap_exhausted, 1);
    assert_eq!(stats.fault, 1);
    assert_eq!(stats.out_of_fuel, 1);
    assert_eq!(stats.quantum, 5_000);
    // Last tenant to finish still bounds the round count.
    assert!(stats.rounds >= reports.iter().map(|r| r.slices).max().unwrap());
}

#[test]
fn scheduler_overshoot_is_bounded_by_pause_budget() {
    let p = churn(100, 2_000);
    let mut sched = sched_of(2_000);
    spawn(&mut sched, &p, &small_heap(1_200));
    spawn(&mut sched, &p, &small_heap(1_200));
    let (reports, stats) = sched.run_all();
    assert_eq!(stats.done, 2);
    for r in &reports {
        assert_eq!(r.outcome, TenantOutcome::Done);
        assert_eq!(r.stats.pause_overruns, 0);
    }
    // A slice can overshoot the quantum by at most one instruction or
    // one bounded GC pause; with a 1200-cycle budget that is far below
    // the quantum itself.
    assert!(
        stats.max_overshoot <= 2_000,
        "overshoot must stay bounded: {stats:?}"
    );
}
