//! The two execution engines are observationally identical: same
//! results, same output, same `RunStats` counters — under normal
//! completion, every trap path, and scheduler preemption. Plus the
//! floor div/mod semantics both engines now share, and the threaded
//! stream verifier.

use sml_vm::isa::{AOp, BrOp};
use sml_vm::{
    run, verify_threaded, CodeBlock, Dispatch, Instr, MachineProgram, Outcome, SchedulerBuilder,
    TenantSpec, VmConfig, VmInstance, VmResult,
};
use std::sync::Arc;

fn prog(instrs: Vec<Instr>) -> MachineProgram {
    MachineProgram {
        blocks: vec![CodeBlock {
            name: "entry".into(),
            instrs,
        }],
        entry: 0,
        pool: Vec::new(),
    }
}

fn cfg(dispatch: Dispatch) -> VmConfig {
    VmConfig {
        dispatch,
        ..VmConfig::default()
    }
}

/// Runs under both engines and asserts everything observable matches
/// (results, output, all counters); returns the decode outcome.
fn both(p: &MachineProgram, base: &VmConfig) -> Outcome {
    let dec = run(
        p,
        &VmConfig {
            dispatch: Dispatch::Decode,
            ..*base
        },
    );
    let thr = run(
        p,
        &VmConfig {
            dispatch: Dispatch::Threaded,
            ..*base
        },
    );
    assert_eq!(dec.result, thr.result, "results diverge between engines");
    assert_eq!(dec.output, thr.output, "output diverges between engines");
    assert_eq!(dec.stats, thr.stats, "RunStats diverge between engines");
    assert_eq!(thr.dispatch.engine, Dispatch::Threaded);
    assert_eq!(dec.dispatch.engine, Dispatch::Decode);
    dec
}

/// A tight counted loop with a fused compare-and-branch and a fused
/// `LoadI`+`Arith`, summing 0..n.
fn sum_loop(n: i64) -> MachineProgram {
    MachineProgram {
        blocks: vec![
            CodeBlock {
                name: "entry".into(),
                instrs: vec![
                    Instr::LoadI { d: 1, imm: 0 }, // acc
                    Instr::LoadI { d: 2, imm: 0 }, // i
                    Instr::LoadI { d: 3, imm: n }, // limit
                    Instr::Jump { label: 1 },
                ],
            },
            CodeBlock {
                name: "loop".into(),
                instrs: vec![
                    // Branch (i < limit) else exit — fusable with nothing
                    // here since it heads the block.
                    Instr::Branch {
                        op: BrOp::Lt,
                        a: 2,
                        b: 3,
                        target: 7,
                    },
                    Instr::Arith {
                        op: AOp::Add,
                        d: 1,
                        a: 1,
                        b: 2,
                    }, // acc += i   (Arith+Branch fusion candidate below)
                    Instr::LoadI { d: 4, imm: 1 },
                    Instr::Arith {
                        op: AOp::Add,
                        d: 2,
                        a: 2,
                        b: 4,
                    }, // i += 1  (LoadI+Arith fuses)
                    Instr::Move { d: 5, s: 1 },
                    Instr::Jump { label: 1 }, // Move+Jump fuses
                    Instr::Halt { s: 0 },     // unreachable
                    Instr::Halt { s: 1 },
                ],
            },
        ],
        entry: 0,
        pool: Vec::new(),
    }
}

#[test]
fn dispatch_parses_and_prints_stable_names() {
    assert_eq!("decode".parse::<Dispatch>().unwrap(), Dispatch::Decode);
    assert_eq!("threaded".parse::<Dispatch>().unwrap(), Dispatch::Threaded);
    assert_eq!(Dispatch::Threaded.name(), "threaded");
    let err = "jit".parse::<Dispatch>().unwrap_err();
    assert!(err.contains("decode|threaded"), "{err}");
}

#[test]
fn engines_agree_on_loop_with_superinstructions() {
    let p = sum_loop(1000);
    let o = both(&p, &VmConfig::default());
    assert_eq!(o.result, VmResult::Value(1000 * 999 / 2));
    let mut vm = VmInstance::new(&p, &cfg(Dispatch::Threaded));
    while !vm.run_slice(u64::MAX) {}
    let ds = vm.dispatch_stats();
    assert!(
        ds.superinstructions >= 2,
        "the loop body should fuse LoadI+Arith and Move+Jump: {ds:?}"
    );
    assert!(ds.stream_len > 0 && ds.stream_len < p.code_size() as u64);
}

#[test]
fn floor_div_mod_law_holds_in_both_engines() {
    // All sign combinations, including exact division and i64-boundary
    // magnitudes that still fit the tagged-int width after untagging.
    let cases: [(i64, i64); 10] = [
        (7, 2),
        (-7, 2),
        (7, -2),
        (-7, -2),
        (6, 3),
        (-6, 3),
        (6, -3),
        (-6, -3),
        (0, 5),
        (0, -5),
    ];
    for (a, b) in cases {
        for op in [AOp::Div, AOp::Mod] {
            let p = prog(vec![
                Instr::LoadI { d: 1, imm: a },
                Instr::LoadI { d: 2, imm: b },
                Instr::Arith {
                    op,
                    d: 3,
                    a: 1,
                    b: 2,
                },
                Instr::Halt { s: 3 },
            ]);
            let o = both(&p, &VmConfig::default());
            let q = sml_cps::floor_div(a, b);
            let r = sml_cps::floor_mod(a, b);
            assert_eq!(a, b * q + r, "quotient-remainder law for {a} and {b}");
            assert!(r == 0 || (r < 0) == (b < 0), "mod takes the divisor sign");
            let want = if op == AOp::Div { q } else { r };
            assert_eq!(o.result, VmResult::Value(want), "{a} {op:?} {b}");
        }
    }
}

#[test]
fn division_by_zero_faults_identically_in_both_engines() {
    for op in [AOp::Div, AOp::Mod] {
        let p = prog(vec![
            Instr::LoadI { d: 1, imm: -9 },
            Instr::LoadI { d: 2, imm: 0 },
            Instr::Arith {
                op,
                d: 3,
                a: 1,
                b: 2,
            },
            Instr::Halt { s: 3 },
        ]);
        let o = both(&p, &VmConfig::default());
        assert_eq!(o.result, VmResult::Fault("integer division by zero".into()));
    }
}

#[test]
fn fetch_faults_carry_identical_messages() {
    // Fall off the end of a block (branch to one-past-the-end).
    let p = prog(vec![
        Instr::LoadI { d: 1, imm: 1 },
        Instr::Branch {
            op: BrOp::Eq,
            a: 0,
            b: 0,
            target: 2,
        },
        Instr::Halt { s: 1 },
    ]);
    // `Branch Eq r0, r0` is taken, falls through to Halt — make it
    // not-taken instead by comparing different registers.
    let p2 = prog(vec![
        Instr::LoadI { d: 1, imm: 1 },
        Instr::Branch {
            op: BrOp::Eq,
            a: 0,
            b: 1,
            target: 3,
        },
        Instr::Halt { s: 1 },
    ]);
    both(&p, &VmConfig::default());
    let o = both(&p2, &VmConfig::default());
    assert_eq!(
        o.result,
        VmResult::Fault("instruction fetch out of range: block 0 pc 3".into())
    );
    // Jump to a nonexistent block.
    let p3 = prog(vec![Instr::Jump { label: 9 }]);
    let o3 = both(&p3, &VmConfig::default());
    assert_eq!(
        o3.result,
        VmResult::Fault("instruction fetch out of range: block 9 pc 0".into())
    );
}

#[test]
fn out_of_fuel_is_identical_even_mid_superinstruction() {
    // Sweep fuel limits across the whole run of a fusing loop so some
    // limit lands between the two halves of each fused pair; the
    // threaded engine must cut off at exactly the same instruction.
    let p = sum_loop(4);
    let full = run(&p, &VmConfig::default());
    for fuel in 0..full.stats.cycles + 2 {
        let base = VmConfig {
            max_cycles: fuel,
            ..VmConfig::default()
        };
        both(&p, &base);
    }
}

#[test]
fn scheduler_runs_threaded_tenants_identically() {
    let p = Arc::new(sum_loop(500));
    let run_tenants = |dispatch| {
        // Odd quantum: exercise preemption.
        let mut sched = SchedulerBuilder::new().quantum(97).build().unwrap();
        for _ in 0..3 {
            sched
                .admit(TenantSpec::new(p.clone(), &cfg(dispatch)))
                .unwrap();
        }
        sched.run_all()
    };
    let (dec, _) = run_tenants(Dispatch::Decode);
    let (thr, _) = run_tenants(Dispatch::Threaded);
    for (d, t) in dec.iter().zip(&thr) {
        assert_eq!(d.result, t.result);
        assert_eq!(d.output, t.output);
        assert_eq!(d.stats, t.stats, "per-tenant stats diverge");
        assert_eq!(t.dispatch.engine, Dispatch::Threaded);
        assert!(t.dispatch.superinstructions > 0);
    }
    // Slice counts may differ (pairs don't split across slices), but
    // every tenant still finishes with solo-identical results.
}

#[test]
fn verify_threaded_accepts_and_counts_fusion() {
    let p = sum_loop(10);
    let sum = verify_threaded(&p).expect("well-formed stream");
    assert!(sum.superinstructions >= 2, "{sum:?}");
    assert!(sum.tinstrs > 0);
    // And matches what the engine actually pre-decodes.
    let vm = VmInstance::new(&p, &cfg(Dispatch::Threaded));
    assert_eq!(vm.dispatch_stats().superinstructions, sum.superinstructions);
    assert_eq!(vm.dispatch_stats().stream_len, sum.tinstrs);
}

#[test]
fn branch_target_into_pair_blocks_fusion() {
    // The Arith at pc 2 is a branch target, so LoadI@1+Arith@2 must NOT
    // fuse; the branch must land exactly on the Arith.
    let p = prog(vec![
        Instr::LoadI { d: 1, imm: 10 },
        Instr::LoadI { d: 2, imm: 3 },
        Instr::Branch {
            op: BrOp::Eq,
            a: 0,
            b: 0,
            target: 2, // not-taken path jumps INTO what would be a pair
        },
        Instr::Arith {
            op: AOp::Add,
            d: 1,
            a: 1,
            b: 2,
        },
        Instr::Halt { s: 1 },
    ]);
    verify_threaded(&p).expect("stream must stay well-formed");
    let o = both(&p, &VmConfig::default());
    assert_eq!(o.result, VmResult::Value(13));
}

#[test]
fn i64_min_division_wraps_in_both_engines() {
    // untag_int narrows to the tagged width, so drive the helper
    // directly for the true boundary, and the VM for in-width values.
    assert_eq!(sml_cps::floor_div(i64::MIN, -1), i64::MIN);
    assert_eq!(sml_cps::floor_mod(i64::MIN, -1), 0);
    let p = prog(vec![
        Instr::LoadI {
            d: 1,
            imm: -1073741824,
        }, // tagged-int minimum
        Instr::LoadI { d: 2, imm: -1 },
        Instr::Arith {
            op: AOp::Div,
            d: 3,
            a: 1,
            b: 2,
        },
        Instr::Halt { s: 3 },
    ]);
    both(&p, &VmConfig::default());
}
