//! Trap-path coverage: every abnormal [`VmResult`] variant is reachable,
//! is contained (no panic, no abort), and leaves the [`RunStats`]
//! counters internally consistent — `cycles_by_class` sums to `cycles`
//! and `instrs_by_class` sums to `instrs` no matter how the run ended.

use sml_vm::isa::{AOp, AllocKind, RtOp};
use sml_vm::vm::FaultInject;
use sml_vm::{
    run, CodeBlock, Instr, InstrClass, MachineProgram, Outcome, RunStats, VmConfig, VmResult,
};

fn prog(instrs: Vec<Instr>) -> MachineProgram {
    MachineProgram {
        blocks: vec![CodeBlock {
            name: "entry".into(),
            instrs,
        }],
        entry: 0,
        pool: Vec::new(),
    }
}

fn assert_consistent(stats: &RunStats) {
    assert_eq!(
        stats.cycles_by_class.iter().sum::<u64>(),
        stats.cycles,
        "cycles_by_class must sum to cycles: {stats:?}"
    );
    assert_eq!(
        stats.instrs_by_class.iter().sum::<u64>(),
        stats.instrs,
        "instrs_by_class must sum to instrs: {stats:?}"
    );
    assert_eq!(
        stats.instrs_by_class[InstrClass::Gc as usize],
        0,
        "no instruction belongs to the Gc pseudo-class"
    );
    assert_eq!(
        stats.cycles_by_class[InstrClass::Gc as usize],
        stats.gc_cycles,
        "Gc pseudo-class must carry exactly the collector cycles"
    );
    assert_eq!(
        stats.n_gcs,
        stats.n_minor_gcs + stats.n_major_gcs,
        "every collection is either minor or major: {stats:?}"
    );
    assert_eq!(
        stats.gc_cycles,
        stats.minor_gc_cycles + stats.major_gc_cycles,
        "collector cycles split exactly into minor + major: {stats:?}"
    );
    assert!(
        stats.max_minor_pause <= stats.minor_gc_cycles
            && stats.max_major_pause <= stats.major_gc_cycles,
        "a single pause cannot exceed its class total: {stats:?}"
    );
}

fn run_default(p: &MachineProgram) -> Outcome {
    run(p, &VmConfig::default())
}

fn expect_fault(o: &Outcome, needle: &str) {
    match &o.result {
        VmResult::Fault(why) => assert!(
            why.contains(needle),
            "fault reason `{why}` should mention `{needle}`"
        ),
        other => panic!("expected Fault mentioning `{needle}`, got {other:?}"),
    }
    assert_consistent(&o.stats);
}

#[test]
fn normal_halt_is_consistent() {
    let o = run_default(&prog(vec![
        Instr::LoadI { d: 1, imm: 42 },
        Instr::Halt { s: 1 },
    ]));
    assert_eq!(o.result, VmResult::Value(42));
    assert_consistent(&o.stats);
}

#[test]
fn load_through_non_pointer_faults() {
    let o = run_default(&prog(vec![
        Instr::LoadI { d: 1, imm: 5 },
        Instr::Load {
            d: 2,
            base: 1,
            off: 0,
        },
        Instr::Halt { s: 2 },
    ]));
    expect_fault(&o, "non-pointer");
}

#[test]
fn store_outside_object_faults() {
    let o = run_default(&prog(vec![
        Instr::LoadI { d: 1, imm: 7 },
        Instr::Alloc {
            d: 2,
            kind: AllocKind::Record,
            words: vec![1],
            flts: vec![],
        },
        Instr::Store {
            s: 1,
            base: 2,
            off: 5,
        },
        Instr::Halt { s: 1 },
    ]));
    expect_fault(&o, "outside object");
}

#[test]
fn negative_index_faults() {
    let o = run_default(&prog(vec![
        Instr::LoadI { d: 1, imm: 4 },
        Instr::Alloc {
            d: 2,
            kind: AllocKind::Record,
            words: vec![1],
            flts: vec![],
        },
        Instr::LoadI { d: 3, imm: -1 },
        Instr::LoadIdx {
            d: 4,
            base: 2,
            idx: 3,
        },
        Instr::Halt { s: 4 },
    ]));
    expect_fault(&o, "negative index");
}

#[test]
fn jump_through_pointer_faults() {
    let o = run_default(&prog(vec![
        Instr::LoadI { d: 1, imm: 1 },
        Instr::Alloc {
            d: 2,
            kind: AllocKind::Record,
            words: vec![1],
            flts: vec![],
        },
        Instr::JumpReg { r: 2 },
    ]));
    expect_fault(&o, "non-label");
}

#[test]
fn jump_target_out_of_range_faults() {
    let o = run_default(&prog(vec![
        Instr::LoadI { d: 1, imm: 99 },
        Instr::JumpReg { r: 1 },
    ]));
    expect_fault(&o, "out of range");
}

#[test]
fn direct_jump_out_of_range_faults() {
    let o = run_default(&prog(vec![Instr::Jump { label: 7 }]));
    expect_fault(&o, "instruction fetch out of range");
}

#[test]
fn falling_off_block_end_faults() {
    let o = run_default(&prog(vec![Instr::LoadI { d: 1, imm: 1 }]));
    expect_fault(&o, "instruction fetch out of range");
}

#[test]
fn string_op_on_non_string_faults() {
    let o = run_default(&prog(vec![
        Instr::LoadI { d: 1, imm: 3 },
        Instr::Rt {
            op: RtOp::StrSize,
            d: 2,
            a: 1,
            b: 0,
            fa: 0,
        },
        Instr::Halt { s: 2 },
    ]));
    expect_fault(&o, "non-pointer");
}

#[test]
fn string_index_out_of_bounds_faults() {
    let mut p = prog(vec![
        Instr::LoadStr { d: 1, pool: 0 },
        Instr::LoadI { d: 2, imm: 10 },
        Instr::Rt {
            op: RtOp::StrSub,
            d: 3,
            a: 1,
            b: 2,
            fa: 0,
        },
        Instr::Halt { s: 3 },
    ]);
    p.pool.push("hi".into());
    let o = run_default(&p);
    expect_fault(&o, "out of bounds");
}

#[test]
fn oversized_array_faults() {
    let o = run_default(&prog(vec![
        Instr::LoadI { d: 1, imm: 40_000 },
        Instr::LoadI { d: 2, imm: 0 },
        Instr::AllocArr {
            d: 3,
            len: 1,
            init: 2,
        },
        Instr::Halt { s: 3 },
    ]));
    expect_fault(&o, "descriptor limit");
}

/// A loop that allocates a record chaining to the previous one, so live
/// data grows without bound: `r1 := [r1]` forever.
fn chain_alloc_loop() -> MachineProgram {
    MachineProgram {
        blocks: vec![
            CodeBlock {
                name: "entry".into(),
                instrs: vec![Instr::LoadI { d: 1, imm: 0 }, Instr::Jump { label: 1 }],
            },
            CodeBlock {
                name: "loop".into(),
                instrs: vec![
                    Instr::Alloc {
                        d: 1,
                        kind: AllocKind::Record,
                        words: vec![1],
                        flts: vec![],
                    },
                    Instr::Jump { label: 1 },
                ],
            },
        ],
        entry: 0,
        pool: Vec::new(),
    }
}

#[test]
fn heap_ceiling_traps_heap_exhausted() {
    let cfg = VmConfig {
        tenured_words: 256,
        nursery_words: 64,
        ..VmConfig::default()
    };
    let o = run(&chain_alloc_loop(), &cfg);
    assert_eq!(o.result, VmResult::HeapExhausted);
    assert!(o.stats.n_gcs >= 1, "ceiling should be found via a GC");
    assert!(
        o.stats.n_major_gcs >= 1,
        "a major collection is the final attempt before trapping: {:?}",
        o.stats
    );
    assert!(o.stats.n_allocs > 0);
    assert_eq!(o.stats.alloc_words, 2 * o.stats.n_allocs); // 1 body + 1 descriptor each
    assert_consistent(&o.stats);
}

#[test]
fn out_of_fuel_syncs_counters() {
    let cfg = VmConfig {
        max_cycles: 5_000,
        ..VmConfig::default()
    };
    let o = run(&chain_alloc_loop(), &cfg);
    assert_eq!(o.result, VmResult::OutOfFuel);
    assert!(
        o.stats.alloc_words > 0 && o.stats.n_allocs > 0,
        "heap counters must be synced even when fuel runs out: {:?}",
        o.stats
    );
    assert_consistent(&o.stats);
}

#[test]
fn injected_alloc_failure_traps_at_exactly_n() {
    let mut instrs = Vec::new();
    instrs.push(Instr::LoadI { d: 1, imm: 0 });
    for _ in 0..10 {
        instrs.push(Instr::Alloc {
            d: 2,
            kind: AllocKind::Record,
            words: vec![1],
            flts: vec![],
        });
    }
    instrs.push(Instr::Halt { s: 1 });
    let p = prog(instrs);

    let cfg = VmConfig {
        fault: FaultInject {
            fail_alloc_at: Some(3),
            gc_every_n_allocs: None,
            yield_every_n_slices: None,
        },
        ..VmConfig::default()
    };
    let o = run(&p, &cfg);
    assert_eq!(o.result, VmResult::HeapExhausted);
    assert_eq!(o.stats.n_allocs, 2, "the third allocation must fail");
    assert_consistent(&o.stats);

    // Without injection the same program halts normally.
    let o = run_default(&p);
    assert_eq!(o.result, VmResult::Value(0));
    assert_eq!(o.stats.n_allocs, 10);
    assert_consistent(&o.stats);
}

#[test]
fn forced_gc_preserves_results_and_counts() {
    // Build a small record chain, then read back through it.
    let p = prog(vec![
        Instr::LoadI { d: 1, imm: 17 },
        Instr::Alloc {
            d: 2,
            kind: AllocKind::Record,
            words: vec![1],
            flts: vec![],
        },
        Instr::Alloc {
            d: 3,
            kind: AllocKind::Record,
            words: vec![2],
            flts: vec![],
        },
        Instr::Alloc {
            d: 4,
            kind: AllocKind::Record,
            words: vec![3],
            flts: vec![],
        },
        Instr::Load {
            d: 5,
            base: 4,
            off: 0,
        },
        Instr::Load {
            d: 6,
            base: 5,
            off: 0,
        },
        Instr::Load {
            d: 7,
            base: 6,
            off: 0,
        },
        Instr::Halt { s: 7 },
    ]);
    let quiet = run_default(&p);
    assert_eq!(quiet.result, VmResult::Value(17));

    let cfg = VmConfig {
        fault: FaultInject {
            fail_alloc_at: None,
            gc_every_n_allocs: Some(1),
            yield_every_n_slices: None,
        },
        ..VmConfig::default()
    };
    let stressed = run(&p, &cfg);
    assert_eq!(
        stressed.result, quiet.result,
        "forced collections must not change the result"
    );
    assert!(
        stressed.stats.n_gcs >= 3,
        "a GC was forced before every allocation: {:?}",
        stressed.stats
    );
    assert_consistent(&stressed.stats);
}

#[test]
fn uncaught_with_malformed_packet_is_contained() {
    let o = run_default(&prog(vec![
        Instr::LoadI { d: 1, imm: 3 },
        Instr::Uncaught { s: 1 },
    ]));
    assert_eq!(o.result, VmResult::Uncaught("?".into()));
    assert_consistent(&o.stats);
}

#[test]
fn division_by_zero_faults() {
    for op in [AOp::Div, AOp::Mod] {
        let o = run_default(&prog(vec![
            Instr::LoadI { d: 1, imm: 9 },
            Instr::LoadI { d: 2, imm: 0 },
            Instr::Arith {
                op,
                d: 3,
                a: 1,
                b: 2,
            },
            Instr::Halt { s: 3 },
        ]));
        expect_fault(&o, "division by zero");
        assert_consistent(&o.stats);
    }
}

#[test]
fn string_pool_index_out_of_range_faults() {
    let o = run_default(&prog(vec![
        Instr::LoadStr { d: 1, pool: 4 },
        Instr::Halt { s: 1 },
    ]));
    expect_fault(&o, "pool index");
}

/// Promotion plus the write barrier, driven end-to-end through the VM:
/// a record is promoted to tenured space by forced minor collections,
/// then mutated (via `StoreWB`, the barriered store the compiler emits
/// for ref assignment) to point at a freshly allocated — hence young —
/// record. The young object is reachable *only* through the tenured
/// one, so only the remembered set keeps it alive across the next
/// forced collection.
#[test]
fn write_barrier_keeps_promoted_to_young_edge_alive() {
    let p = prog(vec![
        Instr::LoadI { d: 1, imm: 0 },
        // The soon-to-be-tenured cell, initially holding 0.
        Instr::Alloc {
            d: 2,
            kind: AllocKind::Record,
            words: vec![1],
            flts: vec![],
        },
        // Padding allocations: with `gc_every_n_allocs: Some(1)` each
        // one forces a minor collection, aging r2 past promotion.
        Instr::Alloc {
            d: 3,
            kind: AllocKind::Record,
            words: vec![1],
            flts: vec![],
        },
        Instr::Alloc {
            d: 3,
            kind: AllocKind::Record,
            words: vec![1],
            flts: vec![],
        },
        Instr::Alloc {
            d: 3,
            kind: AllocKind::Record,
            words: vec![1],
            flts: vec![],
        },
        // A young record holding 23, stored into the (now tenured) cell.
        Instr::LoadI { d: 4, imm: 23 },
        Instr::Alloc {
            d: 5,
            kind: AllocKind::Record,
            words: vec![4],
            flts: vec![],
        },
        Instr::StoreWB {
            s: 5,
            base: 2,
            off: 0,
        },
        // Drop the direct young reference; the remembered set is now the
        // only root keeping it alive. Force one more collection.
        Instr::LoadI { d: 5, imm: 0 },
        Instr::Alloc {
            d: 3,
            kind: AllocKind::Record,
            words: vec![1],
            flts: vec![],
        },
        // Read back through the tenured cell.
        Instr::Load {
            d: 6,
            base: 2,
            off: 0,
        },
        Instr::Load {
            d: 7,
            base: 6,
            off: 0,
        },
        Instr::Halt { s: 7 },
    ]);

    let quiet = run_default(&p);
    assert_eq!(quiet.result, VmResult::Value(23));
    assert_consistent(&quiet.stats);

    let cfg = VmConfig {
        fault: FaultInject {
            fail_alloc_at: None,
            gc_every_n_allocs: Some(1),
            yield_every_n_slices: None,
        },
        ..VmConfig::default()
    };
    let stressed = run(&p, &cfg);
    assert_eq!(
        stressed.result, quiet.result,
        "barrier-maintained edge must survive forced collections: {:?}",
        stressed.stats
    );
    assert!(
        stressed.stats.n_minor_gcs >= 3,
        "a minor collection was forced before every allocation: {:?}",
        stressed.stats
    );
    assert!(
        stressed.stats.promoted_words > 0,
        "the cell must actually reach tenured space: {:?}",
        stressed.stats
    );
    assert!(
        stressed.stats.remembered_peak >= 1,
        "the tenured-to-young store must be remembered: {:?}",
        stressed.stats
    );
    assert_consistent(&stressed.stats);
}

/// Same shape through `StoreIdxWB`, the barriered indexed store the
/// compiler emits for array update.
#[test]
fn indexed_write_barrier_keeps_young_element_alive() {
    let p = prog(vec![
        Instr::LoadI { d: 1, imm: 0 },
        Instr::LoadI { d: 8, imm: 1 },
        // A one-element array, aged into tenured space by forced minors.
        Instr::AllocArr {
            d: 2,
            len: 8,
            init: 1,
        },
        Instr::Alloc {
            d: 3,
            kind: AllocKind::Record,
            words: vec![1],
            flts: vec![],
        },
        Instr::Alloc {
            d: 3,
            kind: AllocKind::Record,
            words: vec![1],
            flts: vec![],
        },
        Instr::Alloc {
            d: 3,
            kind: AllocKind::Record,
            words: vec![1],
            flts: vec![],
        },
        // arr[0] := young record holding 31.
        Instr::LoadI { d: 4, imm: 31 },
        Instr::Alloc {
            d: 5,
            kind: AllocKind::Record,
            words: vec![4],
            flts: vec![],
        },
        Instr::StoreIdxWB {
            s: 5,
            base: 2,
            idx: 1,
        },
        Instr::LoadI { d: 5, imm: 0 },
        Instr::Alloc {
            d: 3,
            kind: AllocKind::Record,
            words: vec![1],
            flts: vec![],
        },
        Instr::LoadIdx {
            d: 6,
            base: 2,
            idx: 1,
        },
        Instr::Load {
            d: 7,
            base: 6,
            off: 0,
        },
        Instr::Halt { s: 7 },
    ]);

    let quiet = run_default(&p);
    assert_eq!(quiet.result, VmResult::Value(31));

    let cfg = VmConfig {
        fault: FaultInject {
            fail_alloc_at: None,
            gc_every_n_allocs: Some(1),
            yield_every_n_slices: None,
        },
        ..VmConfig::default()
    };
    let stressed = run(&p, &cfg);
    assert_eq!(stressed.result, quiet.result);
    assert_consistent(&stressed.stats);
}

/// An allocation pattern that exactly fills the nursery: each 1-field
/// record costs 2 words, so a 8-word nursery holds exactly four. The
/// fifth forces a minor collection rather than a bump past the limit,
/// and the program's answer is unaffected.
#[test]
fn exactly_full_nursery_collects_instead_of_overflowing() {
    let mut instrs = vec![Instr::LoadI { d: 1, imm: 11 }];
    for _ in 0..5 {
        instrs.push(Instr::Alloc {
            d: 2,
            kind: AllocKind::Record,
            words: vec![1],
            flts: vec![],
        });
    }
    instrs.push(Instr::Load {
        d: 3,
        base: 2,
        off: 0,
    });
    instrs.push(Instr::Halt { s: 3 });
    let p = prog(instrs);

    let cfg = VmConfig {
        nursery_words: 8,
        tenured_words: 4_096,
        ..VmConfig::default()
    };
    let o = run(&p, &cfg);
    assert_eq!(o.result, VmResult::Value(11));
    assert!(
        o.stats.n_minor_gcs >= 1,
        "the fifth record cannot fit without a collection: {:?}",
        o.stats
    );
    assert_consistent(&o.stats);
}

/// Objects too large for the nursery pre-tenure: the program still runs
/// (tenured space has room) even though the array never fits the
/// nursery, and no minor collection is needed for it.
#[test]
fn big_object_pre_tenures_instead_of_thrashing_the_nursery() {
    let cfg = VmConfig {
        nursery_words: 64,
        tenured_words: 4_096,
        ..VmConfig::default()
    };
    let o = run(
        &prog(vec![
            Instr::LoadI { d: 1, imm: 500 },
            Instr::LoadI { d: 2, imm: 7 },
            Instr::AllocArr {
                d: 3,
                len: 1,
                init: 2,
            },
            Instr::LoadI { d: 4, imm: 499 },
            Instr::LoadIdx {
                d: 5,
                base: 3,
                idx: 4,
            },
            Instr::Halt { s: 5 },
        ]),
        &cfg,
    );
    assert_eq!(o.result, VmResult::Value(7));
    assert_consistent(&o.stats);
}

#[test]
fn heap_exhausted_when_one_object_exceeds_semispace() {
    let cfg = VmConfig {
        tenured_words: 512,
        nursery_words: 128,
        ..VmConfig::default()
    };
    let o = run(
        &prog(vec![
            Instr::LoadI { d: 1, imm: 1_000 },
            Instr::LoadI { d: 2, imm: 0 },
            Instr::AllocArr {
                d: 3,
                len: 1,
                init: 2,
            },
            Instr::Halt { s: 3 },
        ]),
        &cfg,
    );
    assert_eq!(o.result, VmResult::HeapExhausted);
    assert_consistent(&o.stats);
}
