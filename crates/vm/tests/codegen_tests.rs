//! Direct codegen + VM tests on hand-built first-order CPS programs:
//! calling conventions, parallel moves, switches, records with raw float
//! fields, and the exception-handler register.

use sml_cps::{AllocOp, BranchOp, CVar, Cexp, Cty, FunDef, FunKind, LookOp, PureOp, SetOp, Value};
use sml_vm::{codegen, run, VmConfig, VmResult};

fn halted(prog: sml_cps::ClosedProgram) -> (VmResult, sml_vm::RunStats, String) {
    let m = codegen(&prog);
    let o = run(&m, &VmConfig::default());
    (o.result, o.stats, o.output)
}

fn var(v: CVar) -> Value {
    Value::Var(v)
}

#[test]
fn known_call_passes_extra_args() {
    // f(a, b) = a - b, called as a known function.
    let f = FunDef {
        kind: FunKind::Known,
        name: 10,
        params: vec![(1, Cty::Int), (2, Cty::Int)],
        body: Box::new(Cexp::Pure {
            op: PureOp::ISub,
            args: vec![var(1), var(2)],
            dst: 3,
            cty: Cty::Int,
            rest: Box::new(Cexp::Halt { v: var(3) }),
        }),
    };
    let prog = sml_cps::ClosedProgram {
        funs: vec![f],
        entry: Cexp::App {
            f: Value::Label(10),
            args: vec![Value::Int(50), Value::Int(8)],
        },
        next_var: 100,
    };
    let (r, _, _) = halted(prog);
    assert_eq!(r, VmResult::Value(42));
}

#[test]
fn flat_float_record_roundtrip() {
    // Build a record [word, float]; read both back.
    let entry = Cexp::Record {
        fields: vec![(Value::Int(7), Cty::Int), (Value::Real(2.5), Cty::Flt)],
        nflt: 1,
        dst: 1,
        rest: Box::new(Cexp::Select {
            rec: var(1),
            word_off: 1,
            flt: true,
            dst: 2,
            cty: Cty::Flt,
            rest: Box::new(Cexp::Pure {
                op: PureOp::Floor,
                args: vec![var(2)],
                dst: 3,
                cty: Cty::Int,
                rest: Box::new(Cexp::Select {
                    rec: var(1),
                    word_off: 0,
                    flt: false,
                    dst: 4,
                    cty: Cty::Int,
                    rest: Box::new(Cexp::Pure {
                        op: PureOp::IAdd,
                        args: vec![var(3), var(4)],
                        dst: 5,
                        cty: Cty::Int,
                        rest: Box::new(Cexp::Halt { v: var(5) }),
                    }),
                }),
            }),
        }),
    };
    let prog = sml_cps::ClosedProgram {
        funs: vec![],
        entry,
        next_var: 100,
    };
    let (r, stats, _) = halted(prog);
    assert_eq!(r, VmResult::Value(9)); // floor 2.5 + 7
    assert!(stats.alloc_words >= 4, "desc + word + 2 float words");
}

#[test]
fn switch_dispatch() {
    let arm = |v: i64| Cexp::Halt { v: Value::Int(v) };
    let entry = Cexp::Switch {
        v: Value::Int(7),
        lo: 5,
        arms: vec![arm(50), arm(60), arm(70), arm(80)],
        default: Box::new(arm(-1)),
    };
    let prog = sml_cps::ClosedProgram {
        funs: vec![],
        entry,
        next_var: 100,
    };
    assert_eq!(halted(prog).0, VmResult::Value(70));

    let entry = Cexp::Switch {
        v: Value::Int(99),
        lo: 5,
        arms: vec![arm(50), arm(60)],
        default: Box::new(arm(-1)),
    };
    let prog = sml_cps::ClosedProgram {
        funs: vec![],
        entry,
        next_var: 100,
    };
    assert_eq!(halted(prog).0, VmResult::Value(-1));
}

#[test]
fn refs_arrays_and_barriers() {
    // r := 5; a[2] := !r; halt a[2] + alength a
    let entry = Cexp::Alloc {
        op: AllocOp::MakeRef,
        args: vec![Value::Int(0)],
        dst: 1,
        rest: Box::new(Cexp::Set {
            op: SetOp::Assign,
            args: vec![var(1), Value::Int(5)],
            rest: Box::new(Cexp::Alloc {
                op: AllocOp::ArrayMake,
                args: vec![Value::Int(4), Value::Int(9)],
                dst: 2,
                rest: Box::new(Cexp::Look {
                    op: LookOp::Deref,
                    args: vec![var(1)],
                    dst: 3,
                    cty: Cty::Int,
                    rest: Box::new(Cexp::Set {
                        op: SetOp::UnboxedArrayUpdate,
                        args: vec![var(2), Value::Int(2), var(3)],
                        rest: Box::new(Cexp::Look {
                            op: LookOp::ArraySub,
                            args: vec![var(2), Value::Int(2)],
                            dst: 4,
                            cty: Cty::Int,
                            rest: Box::new(Cexp::Pure {
                                op: PureOp::ArrayLength,
                                args: vec![var(2)],
                                dst: 5,
                                cty: Cty::Int,
                                rest: Box::new(Cexp::Pure {
                                    op: PureOp::IAdd,
                                    args: vec![var(4), var(5)],
                                    dst: 6,
                                    cty: Cty::Int,
                                    rest: Box::new(Cexp::Halt { v: var(6) }),
                                }),
                            }),
                        }),
                    }),
                }),
            }),
        }),
    };
    let prog = sml_cps::ClosedProgram {
        funs: vec![],
        entry,
        next_var: 100,
    };
    assert_eq!(halted(prog).0, VmResult::Value(9));
}

#[test]
fn handler_register_roundtrip() {
    // Install a handler closure, raise into it, confirm the packet
    // arrives.
    let handler = FunDef {
        kind: FunKind::Escape,
        name: 20,
        params: vec![(1, Cty::Ptr(None)), (2, Cty::Int)],
        body: Box::new(Cexp::Halt { v: var(2) }),
    };
    let entry = Cexp::Record {
        fields: vec![(Value::Label(20), Cty::Fun)],
        nflt: 0,
        dst: 3,
        rest: Box::new(Cexp::Set {
            op: SetOp::SetHandler,
            args: vec![var(3)],
            rest: Box::new(Cexp::Look {
                op: LookOp::GetHandler,
                args: vec![],
                dst: 4,
                cty: Cty::Fun,
                rest: Box::new(Cexp::Select {
                    rec: var(4),
                    word_off: 0,
                    flt: false,
                    dst: 5,
                    cty: Cty::Fun,
                    rest: Box::new(Cexp::App {
                        f: var(5),
                        args: vec![var(4), Value::Int(123)],
                    }),
                }),
            }),
        }),
    };
    let prog = sml_cps::ClosedProgram {
        funs: vec![handler],
        entry,
        next_var: 100,
    };
    assert_eq!(halted(prog).0, VmResult::Value(123));
}

#[test]
fn string_runtime_ops() {
    let entry = Cexp::Pure {
        op: PureOp::StrCat,
        args: vec![Value::Str("foo".into()), Value::Str("bar".into())],
        dst: 1,
        cty: Cty::Ptr(None),
        rest: Box::new(Cexp::Set {
            op: SetOp::Print,
            args: vec![var(1)],
            rest: Box::new(Cexp::Pure {
                op: PureOp::StrSize,
                args: vec![var(1)],
                dst: 2,
                cty: Cty::Int,
                rest: Box::new(Cexp::Branch {
                    op: BranchOp::StrEq,
                    args: vec![var(1), Value::Str("foobar".into())],
                    tru: Box::new(Cexp::Halt { v: var(2) }),
                    fls: Box::new(Cexp::Halt { v: Value::Int(-1) }),
                }),
            }),
        }),
    };
    let prog = sml_cps::ClosedProgram {
        funs: vec![],
        entry,
        next_var: 100,
    };
    let (r, _, out) = halted(prog);
    assert_eq!(r, VmResult::Value(6));
    assert_eq!(out, "foobar");
}

#[test]
fn many_params_pack_into_spill_record() {
    // A known function with 30 parameters: codegen must pack the
    // overflow and still compute the right sum.
    let n = 30usize;
    let params: Vec<(CVar, Cty)> = (1..=n as u32).map(|i| (i, Cty::Int)).collect();
    // body: acc_i = acc_{i-1} + p_i, acc_0 = 0; halt with acc_n.
    let mut prev: Value = Value::Int(0);
    let mut chain: Vec<(Value, Value, CVar)> = Vec::new();
    for i in 1..=n as u32 {
        chain.push((prev.clone(), var(i), 100 + i));
        prev = var(100 + i);
    }
    let mut body = Cexp::Halt { v: prev };
    for (a, b, dst) in chain.into_iter().rev() {
        body = Cexp::Pure {
            op: PureOp::IAdd,
            args: vec![a, b],
            dst,
            cty: Cty::Int,
            rest: Box::new(body),
        };
    }
    let f = FunDef {
        kind: FunKind::Known,
        name: 200,
        params,
        body: Box::new(body),
    };
    let args: Vec<Value> = (1..=n as i64).map(Value::Int).collect();
    let prog = sml_cps::ClosedProgram {
        funs: vec![f],
        entry: Cexp::App {
            f: Value::Label(200),
            args,
        },
        next_var: 1000,
    };
    let (r, _, _) = halted(prog);
    assert_eq!(r, VmResult::Value((1..=n as i64).sum()));
}
