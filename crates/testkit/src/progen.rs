//! A seeded generator of well-typed SML programs for differential
//! fuzzing.
//!
//! Programs are well-typed *by construction*: every generated item is a
//! closed, terminating declaration sequence built from templates that
//! only combine values of known types. The intended oracle is
//! *variant equivalence* — compile one generated program under all six
//! compiler variants and demand the identical result value and print
//! output. No reference interpreter is needed: integer overflow, `div`
//! by zero, and float formatting are all defined (identically) by the
//! shared VM, so any divergence indicts a representation, convention,
//! or optimization bug in some variant's pipeline, which is exactly
//! what the paper's Figure 7/8 matrix implicitly assumes away.
//!
//! Generation is deterministic from the [`Rng`] seed — the same seed
//! yields byte-identical source on every platform.

use crate::Rng;
use std::fmt::Write as _;

/// Knobs for [`gen_program`].
#[derive(Clone, Copy, Debug)]
pub struct GenConfig {
    /// How many top-level items (declaration groups, each ending in a
    /// `print`) to generate. Each item draws an independent feature.
    pub items: usize,
    /// Depth bound for generated integer expressions.
    pub expr_depth: usize,
    /// Include real-typed items (boxed/unboxed float paths).
    pub floats: bool,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig {
            items: 5,
            expr_depth: 3,
            floats: true,
        }
    }
}

/// Generator state: the integer-typed names currently in scope.
struct Gen<'a> {
    rng: &'a mut Rng,
    int_vars: Vec<String>,
    out: String,
}

impl Gen<'_> {
    /// A literal with SML negation syntax (`~5`).
    fn int_lit(&mut self, lo: i64, hi: i64) -> String {
        let n = self.rng.range_i64(lo, hi);
        if n < 0 {
            format!("~{}", n.unsigned_abs())
        } else {
            n.to_string()
        }
    }

    /// A closed integer expression over the in-scope variables.
    /// Division and `mod` keep literal divisors, so every operation is
    /// total (and `div`/`mod` by zero cannot arise).
    fn int_exp(&mut self, depth: usize) -> String {
        if depth == 0 || self.rng.range_usize(0, 10) < 3 {
            return if !self.int_vars.is_empty() && self.rng.flip() {
                self.rng.pick(&self.int_vars).clone()
            } else {
                self.int_lit(-100, 100)
            };
        }
        let d = depth - 1;
        match self.rng.range_usize(0, 8) {
            0 => format!("({} + {})", self.int_exp(d), self.int_exp(d)),
            1 => format!("({} - {})", self.int_exp(d), self.int_exp(d)),
            2 => format!("({} * {})", self.int_exp(d), self.int_exp(d)),
            3 => {
                let divisor = self.int_lit(1, 50);
                format!("({} div {divisor})", self.int_exp(d))
            }
            4 => {
                let divisor = self.int_lit(2, 50);
                format!("({} mod {divisor})", self.int_exp(d))
            }
            5 => {
                let c = self.bool_exp(d);
                format!("(if {c} then {} else {})", self.int_exp(d), self.int_exp(d))
            }
            6 => {
                let k = self.int_lit(-20, 20);
                format!("((fn z => z + {k}) {})", self.int_exp(d))
            }
            _ => {
                let first = self.rng.flip();
                format!(
                    "(#{} ({}, {}))",
                    if first { 1 } else { 2 },
                    self.int_exp(d),
                    self.int_exp(d)
                )
            }
        }
    }

    fn bool_exp(&mut self, depth: usize) -> String {
        if depth == 0 || self.rng.flip() {
            let op = *self.rng.pick(&["<", "<=", ">", ">=", "=", "<>"]);
            return format!("({} {op} {})", self.int_exp(1), self.int_exp(1));
        }
        match self.rng.range_usize(0, 3) {
            0 => format!(
                "({} andalso {})",
                self.bool_exp(depth - 1),
                self.bool_exp(depth - 1)
            ),
            1 => format!(
                "({} orelse {})",
                self.bool_exp(depth - 1),
                self.bool_exp(depth - 1)
            ),
            _ => format!("({} = false)", self.bool_exp(depth - 1)),
        }
    }

    /// A real-typed expression over exact half-integral literals, so
    /// every intermediate is exact in f64 and formatting is stable.
    fn real_exp(&mut self, depth: usize) -> String {
        if depth == 0 || self.rng.range_usize(0, 10) < 3 {
            let v = self.rng.range_i64(-32, 32) as f64 / 2.0;
            return if v < 0.0 {
                format!("~{:?}", -v)
            } else {
                format!("{v:?}")
            };
        }
        let d = depth - 1;
        match self.rng.range_usize(0, 5) {
            0 => format!("({} + {})", self.real_exp(d), self.real_exp(d)),
            1 => format!("({} - {})", self.real_exp(d), self.real_exp(d)),
            2 => format!("({} * {})", self.real_exp(d), self.real_exp(d)),
            3 => format!(
                "(if {} < {} then {} else {})",
                self.real_exp(d),
                self.real_exp(d),
                self.real_exp(d),
                self.real_exp(d)
            ),
            _ => {
                let k = self.real_exp(0);
                format!("((fn (x : real) => x * {k}) {})", self.real_exp(d))
            }
        }
    }

    fn print_int(&mut self, e: &str) {
        let _ = writeln!(self.out, "val _ = print (itos ({e}))");
        let _ = writeln!(self.out, "val _ = print \"|\"");
    }

    /// Emits one feature item. `i` uniquifies declared names; `depth`
    /// bounds nested expressions.
    fn item(&mut self, i: usize, depth: usize, floats: bool) {
        let n_features = if floats { 10 } else { 9 };
        match self.rng.range_usize(0, n_features) {
            // A val binding whose name stays in scope for later items.
            0 => {
                let e = self.int_exp(depth);
                let _ = writeln!(self.out, "val a{i} = {e}");
                self.int_vars.push(format!("a{i}"));
                self.print_int(&format!("a{i}"));
            }
            // A terminating recursive function (argument strictly
            // decreases; base case at <= 0).
            1 => {
                let base = self.int_lit(-10, 10);
                let step = self.int_exp(1);
                let arg = self.rng.range_usize(0, 15);
                let _ = writeln!(
                    self.out,
                    "fun f{i} n = if n <= 0 then {base} else (n * {step}) + f{i} (n - 1)"
                );
                self.print_int(&format!("f{i} {arg}"));
            }
            // List build + structural fold.
            2 => {
                let m = self.rng.range_usize(2, 9);
                let k = self.rng.range_usize(0, 30);
                let _ = writeln!(
                    self.out,
                    "fun build{i} n = if n = 0 then nil else (n mod {m}) :: build{i} (n - 1)"
                );
                let _ = writeln!(
                    self.out,
                    "fun sum{i} nil = 0 | sum{i} (h :: t) = h + sum{i} t"
                );
                self.print_int(&format!("sum{i} (build{i} {k})"));
            }
            // Dense/sparse integer case dispatch.
            3 => {
                let n_arms = self.rng.range_usize(1, 8);
                let scrutinee = self.rng.range_usize(0, 12);
                let mut arms = Vec::new();
                let mut keys = Vec::new();
                for _ in 0..n_arms {
                    let key = self.rng.range_usize(0, 12);
                    if keys.contains(&key) {
                        continue;
                    }
                    let lit = self.int_lit(-500, 500);
                    keys.push(key);
                    arms.push(format!("{key} => {lit}"));
                }
                let dflt = self.int_lit(-500, 500);
                arms.push(format!("_ => {dflt}"));
                let _ = writeln!(self.out, "fun g{i} n = case n of {}", arms.join(" | "));
                self.print_int(&format!("g{i} {scrutinee}"));
            }
            // String building: concatenation, size, comparison.
            4 => {
                let s1 = self.rng.lowercase_string(6);
                let s2 = self.rng.lowercase_string(6);
                let _ = writeln!(self.out, "val s{i} = \"{s1}\" ^ \"{s2}\"");
                let _ = writeln!(self.out, "val _ = print s{i}");
                let _ = writeln!(self.out, "val _ = print \"|\"");
                self.print_int(&format!("size s{i}"));
                self.print_int(&format!("if s{i} < \"{s2}\" then 1 else 0"));
            }
            // Exception raise across a call, caught by a handler.
            5 => {
                let threshold = self.rng.range_usize(0, 10);
                let arg = self.rng.range_usize(0, 10);
                let fallback = self.int_lit(-99, 99);
                let _ = writeln!(self.out, "exception E{i}");
                let _ = writeln!(
                    self.out,
                    "fun h{i} n = if n < {threshold} then raise E{i} else n * 3"
                );
                let _ = writeln!(
                    self.out,
                    "val r{i} = (h{i} {arg}) handle E{i} => {fallback}"
                );
                self.int_vars.push(format!("r{i}"));
                self.print_int(&format!("r{i}"));
            }
            // Curried higher-order application (closure chains).
            6 => {
                let c = self.int_lit(-9, 9);
                let a = self.int_exp(depth.min(2));
                let b = self.int_exp(depth.min(2));
                let _ = writeln!(
                    self.out,
                    "val k{i} = (fn x => fn y => x + y * {c}) ({a}) ({b})"
                );
                self.int_vars.push(format!("k{i}"));
                self.print_int(&format!("k{i}"));
            }
            // Tuple construction and selection.
            7 => {
                let e1 = self.int_exp(depth.min(2));
                let e2 = self.int_exp(depth.min(2));
                let e3 = self.int_exp(depth.min(2));
                let sel = self.rng.range_usize(1, 4);
                let _ = writeln!(self.out, "val t{i} = ({e1}, {e2}, {e3})");
                self.print_int(&format!("#{sel} t{i}"));
            }
            // Polymorphic equality on structured data.
            8 => {
                let e1 = self.int_exp(1);
                let e2 = self.int_exp(1);
                let e3 = self.int_exp(1);
                let e4 = self.int_exp(1);
                self.print_int(&format!(
                    "if (({e1}), ({e2})) = (({e3}), ({e4})) then 1 else 0"
                ));
            }
            // Real arithmetic (boxed under nrp/rep, unboxed under ffb):
            // print both the formatted value and its floor.
            _ => {
                let e = self.real_exp(depth.min(3));
                let _ = writeln!(self.out, "val w{i} : real = {e}");
                let _ = writeln!(self.out, "val _ = print (rtos w{i})");
                let _ = writeln!(self.out, "val _ = print \"|\"");
                self.print_int(&format!("floor (w{i} * 0.5)"));
            }
        }
    }
}

/// Generates one closed, well-typed, terminating SML program. The same
/// `rng` state yields the same source; drive it from [`crate::run_cases`]
/// or a fixed seed loop for reproducibility.
pub fn gen_program(rng: &mut Rng, cfg: &GenConfig) -> String {
    let mut g = Gen {
        rng,
        int_vars: Vec::new(),
        out: String::new(),
    };
    for i in 0..cfg.items.max(1) {
        g.item(i, cfg.expr_depth, cfg.floats);
    }
    g.out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::default();
        let a = gen_program(&mut Rng::new(7), &cfg);
        let b = gen_program(&mut Rng::new(7), &cfg);
        assert_eq!(a, b);
        let c = gen_program(&mut Rng::new(8), &cfg);
        assert_ne!(a, c, "different seeds should diverge");
    }

    #[test]
    fn programs_are_nonempty_and_print() {
        for seed in 0..50 {
            let src = gen_program(&mut Rng::new(seed), &GenConfig::default());
            assert!(src.contains("print"), "no print in\n{src}");
            assert!(src.lines().count() >= 2);
        }
    }
}
