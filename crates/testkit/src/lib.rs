//! A tiny, deterministic, `std`-only randomized-testing harness.
//!
//! The workspace originally used `proptest` for its property tests, but
//! this build environment has no network access to crates.io, so every
//! third-party dependency must go. This crate replaces the subset of
//! proptest the tests actually used: a seeded PRNG with convenience
//! samplers, and a [`run_cases`] driver that runs a property over many
//! deterministic seeds and reports the failing seed on panic.
//!
//! There is no shrinking; instead every case is reproducible from the
//! `(name, case index)` pair printed on failure, e.g.
//!
//! ```text
//! testkit: property `graphs_survive_collection` failed at case 17 (seed 0x6b8b4567327b23c6)
//! ```
//!
//! Re-running the same test binary reproduces the identical sequence —
//! seeds are derived from the property name alone, never from time.

#![warn(missing_docs)]

pub mod mutate;
pub mod progen;

/// A deterministic pseudo-random number generator (splitmix64 core).
///
/// Good enough statistical quality for test-case generation, trivially
/// seedable, and `Copy`-cheap. Not for cryptography.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Rng {
        Rng {
            state: seed.wrapping_add(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// The next raw 64-bit value (splitmix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `i64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = hi.wrapping_sub(lo) as u64;
        lo.wrapping_add((self.next_u64() % span) as i64)
    }

    /// Uniform `i32` in `[lo, hi)`.
    pub fn range_i32(&mut self, lo: i32, hi: i32) -> i32 {
        self.range_i64(lo as i64, hi as i64) as i32
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_i64(lo as i64, hi as i64) as usize
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }

    /// A fair coin.
    pub fn flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Picks one element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.range_usize(0, xs.len())]
    }

    /// A random lowercase ASCII string of length in `[0, max_len]`.
    pub fn lowercase_string(&mut self, max_len: usize) -> String {
        let n = self.range_usize(0, max_len + 1);
        (0..n)
            .map(|_| (b'a' + self.range_usize(0, 26) as u8) as char)
            .collect()
    }
}

/// FNV-1a over the property name: a stable, platform-independent base
/// seed so runs are reproducible across machines.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runs `property` over `cases` deterministic seeds derived from `name`.
///
/// On panic, prints the case index and seed (so the failure reproduces
/// by itself on the next run — seeds do not depend on time) and
/// re-raises the panic for the test harness.
pub fn run_cases<F>(name: &str, cases: u32, property: F)
where
    F: Fn(&mut Rng) + std::panic::RefUnwindSafe,
{
    let base = fnv1a(name);
    for case in 0..cases {
        let seed = base ^ (0x51ed_2701_a2b3_c4d5u64.wrapping_mul(case as u64 + 1));
        let result = std::panic::catch_unwind(|| {
            let mut rng = Rng::new(seed);
            property(&mut rng);
        });
        if let Err(payload) = result {
            eprintln!("testkit: property `{name}` failed at case {case} (seed {seed:#x})");
            std::panic::resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Rng::new(7);
        for _ in 0..1000 {
            let v = r.range_i64(-5, 5);
            assert!((-5..5).contains(&v));
            let f = r.f64_in(1.0, 2.0);
            assert!((1.0..2.0).contains(&f));
            let s = r.lowercase_string(12);
            assert!(s.len() <= 12 && s.bytes().all(|b| b.is_ascii_lowercase()));
        }
    }

    #[test]
    fn run_cases_executes_all() {
        use std::sync::atomic::{AtomicU32, Ordering};
        static N: AtomicU32 = AtomicU32::new(0);
        run_cases("count", 16, |_| {
            N.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(N.load(Ordering::SeqCst), 16);
    }
}
