//! Seeded IR-corruption catalog for mutation-testing the verifiers.
//!
//! Each mutation is a deterministic, single-site corruption of one
//! intermediate representation — translated lambda ([`sml_lambda::Lexp`]),
//! CPS ([`sml_cps::CpsProgram`]), first-order CPS
//! ([`sml_cps::ClosedProgram`]), or bytecode
//! ([`sml_vm::MachineProgram`]) — chosen so the corresponding verifier
//! (`verify_lexp`, `verify_cps`, `verify_closed_program`,
//! `verify_bytecode`) must reject the mutant. The harness in
//! `crates/core/tests/verify_ir.rs` applies every mutation to real
//! compiler output and asserts rejection at the introducing stage.
//!
//! `apply` returns `false` when the given IR has no applicable site
//! (e.g. no `Wrap` node to corrupt); the harness then tries the next
//! fixture program. When `expect_rule` is `Some`, the corruption
//! determines the violated rule exactly and the harness asserts the
//! reported rule tag too; `None` means the mutant trips one of several
//! rules depending on surrounding context, and only rejection itself is
//! asserted.

use sml_cps::{CVar, Cexp, ClosedProgram, CpsProgram, Cty, Value};
use sml_lambda::{Lexp, Lty, LtyInterner};
use sml_vm::isa::AllocKind;
use sml_vm::{Instr, MachineProgram};

/// A variable id far above anything a real translation allocates, used
/// to manufacture unbound references.
const FAR: u32 = 1_000_000;

// ---------------------------------------------------------------------
// Lambda (LEXP) mutations
// ---------------------------------------------------------------------

/// One seeded corruption of a translated lambda program.
pub struct LexpMutation {
    /// Stable mutation name (reported by the harness).
    pub name: &'static str,
    /// The exact rule tag the verifier must report, when determined.
    pub expect_rule: Option<&'static str>,
    /// Applies the corruption in place; `false` = no applicable site.
    pub apply: fn(&mut Lexp, &mut LtyInterner) -> bool,
}

/// Pre-order walk; stops at the first subexpression `f` rewrites.
fn walk_lexp(e: &mut Lexp, f: &mut dyn FnMut(&mut Lexp) -> bool) -> bool {
    if f(e) {
        return true;
    }
    match e {
        Lexp::Var(_) | Lexp::Int(_) | Lexp::Real(_) | Lexp::Str(_) => false,
        Lexp::Fn(_, _, _, b)
        | Lexp::Select(_, b)
        | Lexp::Wrap(_, b)
        | Lexp::Unwrap(_, b)
        | Lexp::Raise(b, _) => walk_lexp(b, f),
        Lexp::App(a, b) | Lexp::Let(_, a, b) | Lexp::Handle(a, b) => {
            walk_lexp(a, f) || walk_lexp(b, f)
        }
        Lexp::Fix(binds, rest) => {
            for (_, _, body) in binds.iter_mut() {
                if walk_lexp(body, f) {
                    return true;
                }
            }
            walk_lexp(rest, f)
        }
        Lexp::Record(fs) | Lexp::SRecord(fs) | Lexp::PrimApp(_, fs) => {
            fs.iter_mut().any(|x| walk_lexp(x, f))
        }
        Lexp::If(c, a, b) => walk_lexp(c, f) || walk_lexp(a, f) || walk_lexp(b, f),
        Lexp::SwitchInt(s, arms, d) => {
            if walk_lexp(s, f) {
                return true;
            }
            for (_, a) in arms.iter_mut() {
                if walk_lexp(a, f) {
                    return true;
                }
            }
            d.as_mut().is_some_and(|x| walk_lexp(x, f))
        }
    }
}

/// The word type least compatible with `t`: `REAL` unless `t` is
/// already `REAL`, in which case `INT` (`compat` never relates the two).
fn flip_lty(i: &mut LtyInterner, t: Lty) -> Lty {
    if i.same(t, i.real()) {
        i.int()
    } else {
        i.real()
    }
}

/// The full LEXP corruption catalog (11 mutations).
pub fn lexp_mutations() -> Vec<LexpMutation> {
    vec![
        LexpMutation {
            name: "lexp-unbound-var",
            expect_rule: Some("unbound-var"),
            apply: |e, _| {
                walk_lexp(e, &mut |x| {
                    if let Lexp::Var(v) = x {
                        *v += FAR;
                        return true;
                    }
                    false
                })
            },
        },
        LexpMutation {
            name: "lexp-wrap-unwrap-mismatch",
            expect_rule: Some("wrap-unwrap-pair"),
            apply: |e, i| {
                let mut flipped = None;
                let applied = walk_lexp(e, &mut |x| {
                    if let Lexp::Wrap(t, _) = x {
                        flipped = Some(*t);
                        return true;
                    }
                    false
                });
                if !applied {
                    return false;
                }
                // Rewrap the found node: WRAP(t, e) becomes
                // UNWRAP(t', WRAP(t, e)) with an incompatible t'.
                let t = flipped.unwrap();
                let bad = flip_lty(i, t);
                walk_lexp(e, &mut |x| {
                    if matches!(x, Lexp::Wrap(wt, _) if *wt == t) {
                        let inner = std::mem::replace(x, Lexp::Int(0));
                        *x = Lexp::Unwrap(bad, Box::new(inner));
                        return true;
                    }
                    false
                })
            },
        },
        LexpMutation {
            name: "lexp-if-cond-real",
            expect_rule: Some("if-cond"),
            apply: |e, _| {
                walk_lexp(e, &mut |x| {
                    if let Lexp::If(c, _, _) = x {
                        **c = Lexp::Real(0.5);
                        return true;
                    }
                    false
                })
            },
        },
        LexpMutation {
            name: "lexp-prim-extra-arg",
            expect_rule: Some("prim-arity"),
            apply: |e, _| {
                walk_lexp(e, &mut |x| {
                    if let Lexp::PrimApp(_, args) = x {
                        args.push(Lexp::Int(0));
                        return true;
                    }
                    false
                })
            },
        },
        LexpMutation {
            name: "lexp-raise-real",
            expect_rule: Some("raise-non-exn"),
            apply: |e, _| {
                walk_lexp(e, &mut |x| {
                    if let Lexp::Raise(p, _) = x {
                        **p = Lexp::Real(2.5);
                        return true;
                    }
                    false
                })
            },
        },
        LexpMutation {
            name: "lexp-unwrap-real",
            expect_rule: Some("unwrap-non-boxed"),
            apply: |e, _| {
                walk_lexp(e, &mut |x| {
                    if let Lexp::Unwrap(_, p) = x {
                        **p = Lexp::Real(3.5);
                        return true;
                    }
                    false
                })
            },
        },
        LexpMutation {
            name: "lexp-switch-real",
            expect_rule: Some("switch-scrutinee"),
            apply: |e, _| {
                walk_lexp(e, &mut |x| {
                    if let Lexp::SwitchInt(s, _, _) = x {
                        **s = Lexp::Real(1.5);
                        return true;
                    }
                    false
                })
            },
        },
        LexpMutation {
            name: "lexp-app-non-function",
            expect_rule: Some("app-non-function"),
            apply: |e, _| {
                walk_lexp(e, &mut |x| {
                    if let Lexp::App(f, _) = x {
                        **f = Lexp::Int(7);
                        return true;
                    }
                    false
                })
            },
        },
        LexpMutation {
            // Depending on the record's width the select either runs
            // off the end (select-bounds) or the operand check fires.
            name: "lexp-select-oob",
            expect_rule: None,
            apply: |e, _| {
                walk_lexp(e, &mut |x| {
                    if let Lexp::Select(idx, _) = x {
                        *idx += 100;
                        return true;
                    }
                    false
                })
            },
        },
        LexpMutation {
            // Flips a function's declared result type; trips fn-result
            // directly, or fix-binding when the Fn is a fix binding.
            name: "lexp-fn-result-flip",
            expect_rule: None,
            apply: |e, i| {
                walk_lexp(e, &mut |x| {
                    if let Lexp::Fn(_, _, rt, _) = x {
                        *rt = flip_lty(i, *rt);
                        return true;
                    }
                    false
                })
            },
        },
        LexpMutation {
            // Declares a fix binding at REAL; the binding check or any
            // recursive call through the binding rejects it.
            name: "lexp-fix-type-real",
            expect_rule: None,
            apply: |e, i| {
                walk_lexp(e, &mut |x| {
                    if let Lexp::Fix(binds, _) = x {
                        if binds.is_empty() {
                            return false;
                        }
                        binds[0].1 = i.real();
                        return true;
                    }
                    false
                })
            },
        },
    ]
}

// ---------------------------------------------------------------------
// CPS mutations
// ---------------------------------------------------------------------

/// One seeded corruption of a (pre-closure) CPS program.
pub struct CpsMutation {
    /// Stable mutation name.
    pub name: &'static str,
    /// The exact rule tag the verifier must report, when determined.
    pub expect_rule: Option<&'static str>,
    /// Applies the corruption in place; `false` = no applicable site.
    pub apply: fn(&mut CpsProgram) -> bool,
}

/// Pre-order walk over CPS expressions; stops at the first node `f`
/// rewrites.
fn walk_cexp(e: &mut Cexp, f: &mut dyn FnMut(&mut Cexp) -> bool) -> bool {
    if f(e) {
        return true;
    }
    match e {
        Cexp::Record { rest, .. }
        | Cexp::Select { rest, .. }
        | Cexp::Pure { rest, .. }
        | Cexp::Alloc { rest, .. }
        | Cexp::Look { rest, .. }
        | Cexp::Set { rest, .. } => walk_cexp(rest, f),
        Cexp::Branch { tru, fls, .. } => walk_cexp(tru, f) || walk_cexp(fls, f),
        Cexp::Switch { arms, default, .. } => {
            arms.iter_mut().any(|a| walk_cexp(a, f)) || walk_cexp(default, f)
        }
        Cexp::Fix { funs, rest } => {
            for fun in funs.iter_mut() {
                if walk_cexp(&mut fun.body, f) {
                    return true;
                }
            }
            walk_cexp(rest, f)
        }
        Cexp::App { .. } | Cexp::Halt { .. } => false,
    }
}

/// Pre-order walk over every [`Value`] position; stops at the first
/// value `f` rewrites.
fn walk_values(e: &mut Cexp, f: &mut dyn FnMut(&mut Value) -> bool) -> bool {
    walk_cexp(e, &mut |x| match x {
        Cexp::Record { fields, .. } => fields.iter_mut().any(|(v, _)| f(v)),
        Cexp::Select { rec, .. } => f(rec),
        Cexp::Pure { args, .. }
        | Cexp::Alloc { args, .. }
        | Cexp::Look { args, .. }
        | Cexp::Set { args, .. }
        | Cexp::Branch { args, .. } => args.iter_mut().any(&mut *f),
        Cexp::Switch { v, .. } => f(v),
        Cexp::App { f: callee, args } => f(callee) || args.iter_mut().any(&mut *f),
        Cexp::Halt { v } => f(v),
        Cexp::Fix { .. } => false,
    })
}

/// The destination variable of a binding operator, if `e` is one.
fn binder_of(e: &mut Cexp) -> Option<&mut CVar> {
    match e {
        Cexp::Record { dst, .. }
        | Cexp::Select { dst, .. }
        | Cexp::Pure { dst, .. }
        | Cexp::Alloc { dst, .. }
        | Cexp::Look { dst, .. } => Some(dst),
        _ => None,
    }
}

/// The full CPS corruption catalog (8 mutations).
pub fn cps_mutations() -> Vec<CpsMutation> {
    vec![
        CpsMutation {
            name: "cps-unbound-var",
            expect_rule: Some("unbound-var"),
            apply: |p| {
                walk_values(&mut p.body, &mut |v| {
                    if let Value::Var(x) = v {
                        *x += FAR;
                        return true;
                    }
                    false
                })
            },
        },
        CpsMutation {
            name: "cps-var-range",
            expect_rule: Some("var-range"),
            apply: |p| {
                let limit = p.next_var;
                walk_cexp(&mut p.body, &mut |x| {
                    if let Some(dst) = binder_of(x) {
                        *dst = limit + 7;
                        return true;
                    }
                    false
                })
            },
        },
        CpsMutation {
            name: "cps-rebinding",
            expect_rule: Some("rebinding"),
            apply: |p| {
                // Make the second binder in pre-order shadow the first;
                // pre-order guarantees it sits inside the first's scope.
                let mut first: Option<CVar> = None;
                walk_cexp(&mut p.body, &mut |x| {
                    if let Some(dst) = binder_of(x) {
                        match first {
                            None => {
                                first = Some(*dst);
                                false
                            }
                            Some(a) => {
                                *dst = a;
                                true
                            }
                        }
                    } else {
                        false
                    }
                })
            },
        },
        CpsMutation {
            name: "cps-prim-extra-arg",
            expect_rule: Some("prim-arity"),
            apply: |p| {
                walk_cexp(&mut p.body, &mut |x| {
                    if let Cexp::Pure { args, .. } = x {
                        args.push(Value::Int(0));
                        return true;
                    }
                    false
                })
            },
        },
        CpsMutation {
            name: "cps-pure-cty-flip",
            expect_rule: Some("pure-cty"),
            apply: |p| {
                walk_cexp(&mut p.body, &mut |x| {
                    if let Cexp::Pure { cty, .. } = x {
                        *cty = if cty.is_word() { Cty::Flt } else { Cty::Int };
                        return true;
                    }
                    false
                })
            },
        },
        CpsMutation {
            name: "cps-param-dup",
            expect_rule: Some("param-dup"),
            apply: |p| {
                walk_cexp(&mut p.body, &mut |x| {
                    if let Cexp::Fix { funs, .. } = x {
                        for fun in funs.iter_mut() {
                            if fun.params.len() >= 2 {
                                fun.params[1].0 = fun.params[0].0;
                                return true;
                            }
                        }
                    }
                    false
                })
            },
        },
        CpsMutation {
            name: "cps-label-early",
            expect_rule: Some("label-before-closure"),
            apply: |p| {
                walk_cexp(&mut p.body, &mut |x| {
                    if let Cexp::Halt { v } = x {
                        *v = Value::Label(0);
                        return true;
                    }
                    false
                })
            },
        },
        CpsMutation {
            name: "cps-app-extra-arg",
            expect_rule: Some("app-arity"),
            apply: |p| {
                // Find a fix-bound function and a direct call to it,
                // then grow the call by one argument.
                let mut names: Vec<CVar> = Vec::new();
                walk_cexp(&mut p.body, &mut |x| {
                    if let Cexp::Fix { funs, .. } = x {
                        names.extend(funs.iter().map(|fun| fun.name));
                    }
                    false
                });
                walk_cexp(&mut p.body, &mut |x| {
                    if let Cexp::App {
                        f: Value::Var(v),
                        args,
                    } = x
                    {
                        if names.contains(v) {
                            args.push(Value::Int(0));
                            return true;
                        }
                    }
                    false
                })
            },
        },
    ]
}

// ---------------------------------------------------------------------
// Closed (first-order) CPS mutations
// ---------------------------------------------------------------------

/// One seeded corruption of a closure-converted program.
pub struct ClosedMutation {
    /// Stable mutation name.
    pub name: &'static str,
    /// The exact rule tag the verifier must report, when determined.
    pub expect_rule: Option<&'static str>,
    /// Applies the corruption in place; `false` = no applicable site.
    pub apply: fn(&mut ClosedProgram) -> bool,
}

/// Walks entry then every function body.
fn walk_closed_values(p: &mut ClosedProgram, f: &mut dyn FnMut(&mut Value) -> bool) -> bool {
    if walk_values(&mut p.entry, f) {
        return true;
    }
    for fun in p.funs.iter_mut() {
        if walk_values(&mut fun.body, f) {
            return true;
        }
    }
    false
}

/// The full closed-program corruption catalog (5 mutations).
pub fn closed_mutations() -> Vec<ClosedMutation> {
    vec![
        ClosedMutation {
            name: "closed-fix-dup",
            expect_rule: Some("fix-dup"),
            apply: |p| {
                if p.funs.len() < 2 {
                    return false;
                }
                p.funs[1].name = p.funs[0].name;
                true
            },
        },
        ClosedMutation {
            name: "closed-entry-unbound",
            expect_rule: Some("unbound-var"),
            apply: |p| {
                p.entry = Cexp::Halt {
                    v: Value::Var(p.next_var.saturating_sub(1)),
                };
                true
            },
        },
        ClosedMutation {
            name: "closed-nested-fix",
            expect_rule: Some("nested-fix"),
            apply: |p| {
                let Some(fun) = p.funs.first_mut() else {
                    return false;
                };
                let body = std::mem::replace(&mut *fun.body, Cexp::Halt { v: Value::Int(0) });
                *fun.body = Cexp::Fix {
                    funs: Vec::new(),
                    rest: Box::new(body),
                };
                true
            },
        },
        ClosedMutation {
            name: "closed-unknown-label",
            expect_rule: Some("unknown-label"),
            apply: |p| {
                let bad = p.funs.iter().map(|f| f.name).max().unwrap_or(0) + FAR;
                walk_closed_values(p, &mut |v| {
                    if let Value::Label(l) = v {
                        *l = bad;
                        return true;
                    }
                    false
                })
            },
        },
        ClosedMutation {
            name: "closed-label-extra-arg",
            expect_rule: Some("app-arity"),
            apply: |p| {
                let grow = |e: &mut Cexp| {
                    walk_cexp(e, &mut |x| {
                        if let Cexp::App {
                            f: Value::Label(_),
                            args,
                        } = x
                        {
                            args.push(Value::Int(0));
                            return true;
                        }
                        false
                    })
                };
                if grow(&mut p.entry) {
                    return true;
                }
                for fun in p.funs.iter_mut() {
                    if grow(&mut fun.body) {
                        return true;
                    }
                }
                false
            },
        },
    ]
}

// ---------------------------------------------------------------------
// Bytecode mutations
// ---------------------------------------------------------------------

/// One seeded corruption of a machine program.
pub struct BytecodeMutation {
    /// Stable mutation name.
    pub name: &'static str,
    /// The exact rule tag the verifier must report, when determined.
    pub expect_rule: Option<&'static str>,
    /// Applies the corruption in place; `false` = no applicable site.
    pub apply: fn(&mut MachineProgram) -> bool,
}

/// First instruction (in block order) matched by `f`.
fn walk_instrs(p: &mut MachineProgram, f: &mut dyn FnMut(&mut Instr) -> bool) -> bool {
    for b in p.blocks.iter_mut() {
        for i in b.instrs.iter_mut() {
            if f(i) {
                return true;
            }
        }
    }
    false
}

/// The full bytecode corruption catalog (9 mutations).
pub fn bytecode_mutations() -> Vec<BytecodeMutation> {
    vec![
        BytecodeMutation {
            name: "bc-entry-range",
            expect_rule: Some("entry-range"),
            apply: |p| {
                p.entry = p.blocks.len() as u32;
                true
            },
        },
        BytecodeMutation {
            name: "bc-missing-terminator",
            expect_rule: Some("block-terminator"),
            apply: |p| {
                let Some(b) = p.blocks.first_mut() else {
                    return false;
                };
                b.instrs.push(Instr::Move { d: 0, s: 0 });
                true
            },
        },
        BytecodeMutation {
            name: "bc-reg-range",
            expect_rule: Some("reg-range"),
            apply: |p| {
                walk_instrs(p, &mut |i| {
                    if let Instr::Move { d, .. } | Instr::LoadI { d, .. } = i {
                        *d = 200;
                        return true;
                    }
                    false
                })
            },
        },
        BytecodeMutation {
            name: "bc-branch-target",
            expect_rule: Some("branch-target"),
            apply: |p| {
                for b in p.blocks.iter_mut() {
                    let len = b.instrs.len() as u32;
                    for i in b.instrs.iter_mut() {
                        match i {
                            Instr::Branch { target, .. }
                            | Instr::FBranch { target, .. }
                            | Instr::SBranch { target, .. }
                            | Instr::PolyEqBranch { target, .. } => {
                                *target = len + 7;
                                return true;
                            }
                            _ => {}
                        }
                    }
                }
                false
            },
        },
        BytecodeMutation {
            name: "bc-jump-range",
            expect_rule: Some("jump-range"),
            apply: |p| {
                let n = p.blocks.len() as u32;
                walk_instrs(p, &mut |i| {
                    if let Instr::Jump { label } = i {
                        *label = n + 3;
                        return true;
                    }
                    false
                })
            },
        },
        BytecodeMutation {
            name: "bc-pool-range",
            expect_rule: Some("pool-range"),
            apply: |p| {
                let n = p.pool.len() as u32;
                walk_instrs(p, &mut |i| {
                    if let Instr::LoadStr { pool, .. } = i {
                        *pool = n + 2;
                        return true;
                    }
                    false
                })
            },
        },
        BytecodeMutation {
            name: "bc-ref-shape",
            expect_rule: Some("ref-shape"),
            apply: |p| {
                walk_instrs(p, &mut |i| {
                    if let Instr::Alloc {
                        kind, words, flts, ..
                    } = i
                    {
                        if words.len() != 1 || !flts.is_empty() {
                            *kind = AllocKind::Ref;
                            return true;
                        }
                    }
                    false
                })
            },
        },
        BytecodeMutation {
            name: "bc-pool-string-size",
            expect_rule: Some("pool-string-size"),
            apply: |p| {
                let Some(s) = p.pool.first_mut() else {
                    return false;
                };
                *s = "x".repeat(40_000);
                true
            },
        },
        BytecodeMutation {
            name: "bc-alloc-descriptor",
            expect_rule: Some("alloc-descriptor"),
            apply: |p| {
                walk_instrs(p, &mut |i| {
                    if let Instr::Alloc { words, .. } = i {
                        // 40_000 scanned fields overflow the 15-bit
                        // descriptor length field.
                        *words = vec![0; 40_000];
                        return true;
                    }
                    false
                })
            },
        },
    ]
}
