//! A minimal hand-rolled JSON document builder and serializer.
//!
//! The build environment has no network access to crates.io, so the
//! observability layer cannot depend on `serde`; this module provides
//! the small subset we need: building a [`Json`] tree and rendering it
//! with deterministic field order (insertion order — objects are
//! ordered pairs, not maps), correct string escaping, and a stable
//! float format.

use std::fmt::Write as _;

/// A JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (serialized without a decimal point).
    Int(i64),
    /// A float, rendered with Rust's shortest-roundtrip `{:?}` format;
    /// non-finite values render as `null` (JSON has no NaN/Inf).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds (or appends — keys are not deduplicated) a field to an
    /// object, returning `self` for chaining.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_owned(), value.into())),
            other => panic!("Json::field on non-object {other:?}"),
        }
        self
    }

    /// Serializes compactly (no whitespace).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Float(x) => {
                if x.is_finite() {
                    // `{:?}` keeps a trailing `.0` on integral floats, so
                    // the value re-parses as a float everywhere.
                    let _ = write!(out, "{x:?}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, level, '[', ']', items.len(), |out, i| {
                    items[i].write(out, indent, level + 1);
                });
            }
            Json::Obj(fields) => {
                write_seq(out, indent, level, '{', '}', fields.len(), |out, i| {
                    let (k, v) = &fields[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, level + 1);
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    open: char,
    close: char,
    n: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if n == 0 {
        out.push(close);
        return;
    }
    for i in 0..n {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (level + 1)));
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * level));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Int(n)
    }
}

impl From<u64> for Json {
    /// Saturates at `i64::MAX` instead of wrapping: counter totals near
    /// the top of the `u64` range must never serialize negative.
    fn from(n: u64) -> Json {
        Json::Int(i64::try_from(n).unwrap_or(i64::MAX))
    }
}

impl From<usize> for Json {
    /// Saturates at `i64::MAX` instead of wrapping (see `From<u64>`).
    fn from(n: usize) -> Json {
        Json::Int(i64::try_from(n).unwrap_or(i64::MAX))
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Float(x)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_owned())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(xs: Vec<T>) -> Json {
        Json::Arr(xs.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_and_shapes() {
        let j = Json::obj()
            .field("s", "a\"b\\c\nd\u{1}")
            .field("n", 42u64)
            .field("f", 1.5)
            .field("whole", 2.0)
            .field("neg", -7i64)
            .field("arr", vec![1u64, 2, 3])
            .field("nested", Json::obj().field("ok", true))
            .field("empty", Json::obj())
            .field("nan", f64::NAN);
        assert_eq!(
            j.to_string_compact(),
            r#"{"s":"a\"b\\c\nd\u0001","n":42,"f":1.5,"whole":2.0,"neg":-7,"arr":[1,2,3],"nested":{"ok":true},"empty":{},"nan":null}"#
        );
    }

    #[test]
    fn unsigned_conversions_saturate_instead_of_wrapping() {
        // `u64::MAX as i64` would be -1; counters must never serialize
        // negative, so the conversion saturates.
        assert_eq!(
            Json::from(u64::MAX).to_string_compact(),
            i64::MAX.to_string()
        );
        assert_eq!(
            Json::from(i64::MAX as u64 + 1).to_string_compact(),
            i64::MAX.to_string()
        );
        assert_eq!(
            Json::from(usize::MAX).to_string_compact(),
            i64::MAX.to_string()
        );
        assert_eq!(Json::from(42u64).to_string_compact(), "42");
    }

    #[test]
    fn pretty_is_indented_and_reparses_same_tokens() {
        let j = Json::obj().field("a", vec![1u64]).field("b", Json::Null);
        let pretty = j.to_string_pretty();
        assert_eq!(pretty, "{\n  \"a\": [\n    1\n  ],\n  \"b\": null\n}");
        // Stripping whitespace outside strings recovers the compact form.
        let stripped: String = pretty.chars().filter(|c| !c.is_whitespace()).collect();
        assert_eq!(stripped, j.to_string_compact());
    }
}
