//! A minimal hand-rolled JSON document builder, serializer, and parser.
//!
//! The build environment has no network access to crates.io, so the
//! observability layer cannot depend on `serde`; this module provides
//! the small subset we need: building a [`Json`] tree and rendering it
//! with deterministic field order (insertion order — objects are
//! ordered pairs, not maps), correct string escaping, and a stable
//! float format. [`Json::parse`] is the inverse, used by the compile
//! server's newline-delimited-JSON wire protocol (`docs/SERVER.md`).

use std::fmt::Write as _;

/// A JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (serialized without a decimal point).
    Int(i64),
    /// A float, rendered with Rust's shortest-roundtrip `{:?}` format;
    /// non-finite values render as `null` (JSON has no NaN/Inf).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds (or appends — keys are not deduplicated) a field to an
    /// object, returning `self` for chaining.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_owned(), value.into())),
            other => panic!("Json::field on non-object {other:?}"),
        }
        self
    }

    /// Parses a JSON document (the whole input must be one value plus
    /// optional surrounding whitespace). Numbers without `.`/`e` parse
    /// as [`Json::Int`], everything else numeric as [`Json::Float`];
    /// duplicate object keys are kept in order (last-wins under
    /// [`Json::get`] would be surprising, so `get` returns the first).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] with a byte offset and a short message
    /// on malformed input.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(value)
    }

    /// The value of the first field named `key`, if `self` is an object
    /// that has one.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string value, if `self` is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer value, if `self` is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean value, if `self` is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Float(x) => {
                if x.is_finite() {
                    // `{:?}` keeps a trailing `.0` on integral floats, so
                    // the value re-parses as a float everywhere.
                    let _ = write!(out, "{x:?}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, level, '[', ']', items.len(), |out, i| {
                    items[i].write(out, indent, level + 1);
                });
            }
            Json::Obj(fields) => {
                write_seq(out, indent, level, '{', '}', fields.len(), |out, i| {
                    let (k, v) = &fields[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, level + 1);
                });
            }
        }
    }
}

/// A JSON parse error: what went wrong and the byte offset where.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Short description of the problem.
    pub message: &'static str,
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError {
            message,
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.pos += 1; // consume `[`
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.pos += 1; // consume `{`
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Copy unescaped runs wholesale; the input is valid UTF-8
            // by construction (`&str`), so any non-escape, non-quote
            // run is safe to append as-is.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).expect("valid utf-8"));
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        _ => return Err(self.err("invalid escape character")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut n = 0u32;
        for _ in 0..4 {
            let d = self
                .peek()
                .and_then(|b| (b as char).to_digit(16))
                .ok_or_else(|| self.err("expected four hex digits in \\u escape"))?;
            n = n * 16 + d;
            self.pos += 1;
        }
        Ok(n)
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let hi = self.hex4()?;
        // Surrogate pairs arrive as two consecutive \u escapes.
        if (0xD800..0xDC00).contains(&hi) {
            if self.peek() == Some(b'\\') && self.bytes.get(self.pos + 1) == Some(&b'u') {
                self.pos += 2;
                let lo = self.hex4()?;
                if !(0xDC00..0xE000).contains(&lo) {
                    return Err(self.err("invalid low surrogate"));
                }
                let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                return char::from_u32(c).ok_or_else(|| self.err("invalid surrogate pair"));
            }
            return Err(self.err("unpaired high surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("valid utf-8");
        if float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| self.err("invalid number"))
        } else {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|_| self.err("invalid number"))
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    open: char,
    close: char,
    n: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if n == 0 {
        out.push(close);
        return;
    }
    for i in 0..n {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (level + 1)));
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * level));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Int(n)
    }
}

impl From<u64> for Json {
    /// Saturates at `i64::MAX` instead of wrapping: counter totals near
    /// the top of the `u64` range must never serialize negative.
    fn from(n: u64) -> Json {
        Json::Int(i64::try_from(n).unwrap_or(i64::MAX))
    }
}

impl From<usize> for Json {
    /// Saturates at `i64::MAX` instead of wrapping (see `From<u64>`).
    fn from(n: usize) -> Json {
        Json::Int(i64::try_from(n).unwrap_or(i64::MAX))
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Float(x)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_owned())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(xs: Vec<T>) -> Json {
        Json::Arr(xs.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_and_shapes() {
        let j = Json::obj()
            .field("s", "a\"b\\c\nd\u{1}")
            .field("n", 42u64)
            .field("f", 1.5)
            .field("whole", 2.0)
            .field("neg", -7i64)
            .field("arr", vec![1u64, 2, 3])
            .field("nested", Json::obj().field("ok", true))
            .field("empty", Json::obj())
            .field("nan", f64::NAN);
        assert_eq!(
            j.to_string_compact(),
            r#"{"s":"a\"b\\c\nd\u0001","n":42,"f":1.5,"whole":2.0,"neg":-7,"arr":[1,2,3],"nested":{"ok":true},"empty":{},"nan":null}"#
        );
    }

    #[test]
    fn unsigned_conversions_saturate_instead_of_wrapping() {
        // `u64::MAX as i64` would be -1; counters must never serialize
        // negative, so the conversion saturates.
        assert_eq!(
            Json::from(u64::MAX).to_string_compact(),
            i64::MAX.to_string()
        );
        assert_eq!(
            Json::from(i64::MAX as u64 + 1).to_string_compact(),
            i64::MAX.to_string()
        );
        assert_eq!(
            Json::from(usize::MAX).to_string_compact(),
            i64::MAX.to_string()
        );
        assert_eq!(Json::from(42u64).to_string_compact(), "42");
    }

    #[test]
    fn parse_roundtrips_builder_output() {
        let j = Json::obj()
            .field("s", "a\"b\\c\nd\u{1}é")
            .field("n", 42u64)
            .field("f", 1.5)
            .field("neg", -7i64)
            .field("big", i64::MAX)
            .field("arr", vec![1u64, 2, 3])
            .field("nested", Json::obj().field("ok", true).field("no", false))
            .field("empty", Json::obj())
            .field("nothing", Json::Null);
        assert_eq!(Json::parse(&j.to_string_compact()).unwrap(), j);
        assert_eq!(Json::parse(&j.to_string_pretty()).unwrap(), j);
    }

    #[test]
    fn parse_accepts_standard_forms() {
        assert_eq!(Json::parse(" null ").unwrap(), Json::Null);
        assert_eq!(Json::parse("-0").unwrap(), Json::Int(0));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Float(1000.0));
        assert_eq!(Json::parse("2.5E-1").unwrap(), Json::Float(0.25));
        assert_eq!(
            Json::parse(r#""\u0041\/""#).unwrap(),
            Json::Str("A/".into())
        );
        // Surrogate pair for U+1F600.
        assert_eq!(
            Json::parse(r#""\ud83d\ude00""#).unwrap(),
            Json::Str("😀".into())
        );
        assert_eq!(Json::parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(Json::parse("{ }").unwrap(), Json::obj());
    }

    #[test]
    fn parse_rejects_malformed_input_with_offsets() {
        for bad in [
            "",
            "{",
            "[1,",
            "tru",
            "\"ab",
            "{\"a\"1}",
            "1 2",
            "{\"a\":}",
            "\"\\q\"",
            "nullx",
            "\"\\ud800\"",
            "01a",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} wrongly accepted");
        }
        let e = Json::parse("[1, @]").unwrap_err();
        assert_eq!(e.offset, 4);
        assert!(e.to_string().contains("at byte 4"));
    }

    #[test]
    fn get_and_scalar_accessors() {
        let j = Json::parse(r#"{"op":"compile","id":7,"run":true,"x":null}"#).unwrap();
        assert_eq!(j.get("op").and_then(Json::as_str), Some("compile"));
        assert_eq!(j.get("id").and_then(Json::as_i64), Some(7));
        assert_eq!(j.get("run").and_then(Json::as_bool), Some(true));
        assert_eq!(j.get("x"), Some(&Json::Null));
        assert_eq!(j.get("missing"), None);
        assert_eq!(Json::Null.get("op"), None);
    }

    #[test]
    fn pretty_is_indented_and_reparses_same_tokens() {
        let j = Json::obj().field("a", vec![1u64]).field("b", Json::Null);
        let pretty = j.to_string_pretty();
        assert_eq!(pretty, "{\n  \"a\": [\n    1\n  ],\n  \"b\": null\n}");
        // Stripping whitespace outside strings recovers the compact form.
        let stripped: String = pretty.chars().filter(|c| !c.is_whitespace()).collect();
        assert_eq!(stripped, j.to_string_compact());
    }
}
