//! The compile server behind `smlc serve` (see `docs/SERVER.md`).
//!
//! A [`CompileServer`] wraps one [`Session`] in a long-lived daemon
//! speaking newline-delimited JSON: each request line is one job
//! (`compile`, `stats`, or `shutdown`), each response is one line, and
//! responses to a connection come back **in request order** even though
//! jobs from all connections are dispatched onto a shared worker pool.
//! Because every worker compiles through the same session, all clients
//! share the artifact cache, the component-checkpoint cache, and the
//! LTY hash-cons arena — the whole point of keeping the compiler
//! resident — and the session's determinism contract guarantees each
//! client's artifacts are byte-identical to a solo compile.
//!
//! Two front ends share the machinery: [`CompileServer::serve_stdio`]
//! serves a single client over stdin/stdout and shuts down cleanly at
//! EOF, [`CompileServer::serve_unix`] accepts any number of concurrent
//! clients on a Unix socket and shuts down when the caller's flag is
//! raised (the CLI raises it from a SIGTERM handler) or a client sends
//! `{"op":"shutdown"}`. Both drain in-flight jobs before returning the
//! final [`ServerStats`], which the CLI flushes to stderr.

use crate::error::CompileError;
use crate::json::Json;
use crate::metrics::{result_tag, Metrics};
use crate::pipeline::VerifyIr;
use crate::session::{Job, Session};
use std::collections::{BTreeMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixListener;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::Duration;

/// Cumulative counters for one server lifetime; the `server` object of
/// the metrics schema (`docs/OBSERVABILITY.md`) and the server's final
/// stderr flush.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Requests dispatched to workers (all ops, including malformed
    /// requests that produced an error response).
    pub jobs: u64,
    /// Connections accepted (1 for a stdio server).
    pub clients: u64,
    /// Most jobs ever waiting in the dispatch queue at once — the
    /// backlog high-water mark, the number to watch when deciding
    /// whether a server needs more workers.
    pub queue_depth_peak: usize,
}

/// One queued request: the raw line, its position in its connection's
/// request order, and the channel its response goes back on.
struct WorkItem {
    seq: u64,
    line: String,
    respond: mpsc::Sender<(u64, String)>,
    client: Arc<ClientState>,
}

/// Per-connection counters, reported by the `stats` op.
#[derive(Default)]
struct ClientState {
    jobs: AtomicU64,
}

struct QueueState {
    items: VecDeque<WorkItem>,
    closed: bool,
}

/// Everything workers and connection pumps share.
struct Shared<'a> {
    session: &'a Session,
    queue: Mutex<QueueState>,
    ready: Condvar,
    stats: Mutex<ServerStats>,
    /// Raised by a `shutdown` request; checked alongside the caller's
    /// external flag.
    stop: AtomicBool,
}

impl Shared<'_> {
    /// Enqueues a request for the worker pool; `false` when the server
    /// is already shutting down (the caller should stop reading).
    fn enqueue(&self, item: WorkItem) -> bool {
        let mut q = self.queue.lock().expect("server queue poisoned");
        if q.closed {
            return false;
        }
        q.items.push_back(item);
        let depth = q.items.len();
        drop(q);
        let mut s = self.stats.lock().expect("server stats poisoned");
        s.jobs += 1;
        s.queue_depth_peak = s.queue_depth_peak.max(depth);
        drop(s);
        self.ready.notify_one();
        true
    }

    fn close(&self) {
        self.queue.lock().expect("server queue poisoned").closed = true;
        self.ready.notify_all();
    }

    /// Worker loop: pull requests until the queue is closed and empty.
    fn work(&self) {
        loop {
            let item = {
                let mut q = self.queue.lock().expect("server queue poisoned");
                loop {
                    if let Some(item) = q.items.pop_front() {
                        break Some(item);
                    }
                    if q.closed {
                        break None;
                    }
                    q = self.ready.wait(q).expect("server queue poisoned");
                }
            };
            let Some(item) = item else { return };
            let (response, shutdown) = self.handle(&item.line, &item.client);
            if shutdown {
                self.stop.store(true, Ordering::SeqCst);
            }
            // A disconnected client just drops its remaining responses.
            let _ = item.respond.send((item.seq, response));
        }
    }

    /// Executes one request line, returning the response line and
    /// whether the request asked the whole server to shut down.
    fn handle(&self, line: &str, client: &ClientState) -> (String, bool) {
        let req = match Json::parse(line) {
            Ok(req) => req,
            Err(e) => return (error_response(0, "request", &e.to_string(), 2), false),
        };
        let id = req.get("id").and_then(Json::as_i64).unwrap_or(0);
        match req.get("op").and_then(Json::as_str).unwrap_or("compile") {
            "compile" => (self.compile(id, &req, client), false),
            "stats" => (self.stats_response(id, client), false),
            "shutdown" => (
                Json::obj()
                    .field("id", id)
                    .field("ok", true)
                    .field("shutting_down", true)
                    .to_string_compact(),
                true,
            ),
            other => (
                error_response(id, "request", &format!("unknown op `{other}`"), 2),
                false,
            ),
        }
    }

    fn compile(&self, id: i64, req: &Json, client: &ClientState) -> String {
        client.jobs.fetch_add(1, Ordering::Relaxed);
        let Some(src) = req.get("src").and_then(Json::as_str) else {
            return error_response(id, "request", "compile request without `src`", 2);
        };
        let mut job = Job::new(src);
        if let Some(name) = req.get("variant").and_then(Json::as_str) {
            // Accept both the flag spelling (`ffb`) and the paper's
            // full name (`sml.ffb`).
            match name.strip_prefix("sml.").unwrap_or(name).parse() {
                Ok(v) => job = job.variant(v),
                Err(e) => return error_response(id, "request", &e.to_string(), 2),
            }
        }
        if let Some(mode) = req.get("verify_ir").and_then(Json::as_str) {
            match mode.parse::<VerifyIr>() {
                Ok(m) => job = job.verify_ir(m),
                Err(e) => return error_response(id, "request", &e.to_string(), 2),
            }
        }
        let compiled = match self.session.compile_job(&job) {
            Ok(c) => c,
            Err(e) => return compile_error_response(id, &e),
        };
        let mut resp = Json::obj()
            .field("id", id)
            .field("ok", true)
            .field("variant", compiled.variant.name())
            .field("from_cache", compiled.from_cache)
            .field(
                "components",
                Json::obj()
                    .field("enabled", compiled.stats.components.enabled)
                    .field("scc_count", compiled.stats.components.scc_count)
                    .field("recompiled", compiled.stats.components.recompiled)
                    .field("cache_hits", compiled.stats.components.cache_hits)
                    .field("topo_depth", compiled.stats.components.topo_depth),
            );
        let outcome = req
            .get("run")
            .and_then(Json::as_bool)
            .unwrap_or(false)
            .then(|| self.session.run(&compiled));
        if let Some(outcome) = &outcome {
            resp = resp
                .field("output", outcome.output.as_str())
                .field("result", result_tag(&outcome.result))
                .field(
                    "value",
                    match outcome.result {
                        sml_vm::VmResult::Value(v) => Json::Int(v),
                        _ => Json::Null,
                    },
                )
                .field("cycles", outcome.stats.cycles);
        }
        if req.get("stats").and_then(Json::as_bool).unwrap_or(false) {
            let mut m = match &outcome {
                Some(o) => Metrics::of_run(&compiled, o),
                None => Metrics::of_compile(&compiled),
            };
            m = m
                .with_cache(self.session.cache_stats())
                .with_arena(self.session.arena_stats())
                .with_server(*self.stats.lock().expect("server stats poisoned"));
            resp = resp.field("metrics", m.to_json());
        }
        resp.to_string_compact()
    }

    fn stats_response(&self, id: i64, client: &ClientState) -> String {
        let s = *self.stats.lock().expect("server stats poisoned");
        let cache = self.session.cache_stats();
        Json::obj()
            .field("id", id)
            .field("ok", true)
            .field(
                "server",
                Json::obj()
                    .field("jobs", s.jobs)
                    .field("clients", s.clients)
                    .field("queue_depth_peak", s.queue_depth_peak),
            )
            .field(
                "client",
                Json::obj().field("jobs", client.jobs.load(Ordering::Relaxed)),
            )
            .field(
                "cache",
                Json::obj()
                    .field("hits", cache.hits)
                    .field("misses", cache.misses)
                    .field("entries", cache.entries),
            )
            .to_string_compact()
    }
}

fn error_response(id: i64, kind: &str, message: &str, exit_code: u8) -> String {
    Json::obj()
        .field("id", id)
        .field("ok", false)
        .field(
            "error",
            Json::obj()
                .field("kind", kind)
                .field("phase", kind)
                .field("message", message),
        )
        .field("exit_code", u64::from(exit_code))
        .to_string_compact()
}

fn compile_error_response(id: i64, e: &CompileError) -> String {
    Json::obj()
        .field("id", id)
        .field("ok", false)
        .field(
            "error",
            Json::obj()
                .field("kind", e.kind())
                .field("phase", e.phase())
                .field("message", e.to_string()),
        )
        .field("exit_code", u64::from(e.exit_code()))
        .to_string_compact()
}

/// A compile daemon around one [`Session`]; see the module docs.
pub struct CompileServer {
    session: Session,
    workers: usize,
}

impl CompileServer {
    /// Wraps a session in a server with the default worker count (the
    /// machine's available parallelism).
    pub fn new(session: Session) -> CompileServer {
        CompileServer {
            session,
            workers: 0,
        }
    }

    /// Sets the worker-pool size (`0`, the default, uses the machine's
    /// available parallelism).
    pub fn workers(mut self, n: usize) -> CompileServer {
        self.workers = n;
        self
    }

    /// The wrapped session (for tests that want to compare a server
    /// response against a solo compile through the same session).
    pub fn session(&self) -> &Session {
        &self.session
    }

    fn worker_count(&self) -> usize {
        if self.workers == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            self.workers
        }
    }

    fn shared(&self) -> Shared<'_> {
        Shared {
            session: &self.session,
            queue: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            stats: Mutex::new(ServerStats::default()),
            stop: AtomicBool::new(false),
        }
    }

    /// Serves one client over stdin/stdout until EOF (or a `shutdown`
    /// request), drains in-flight jobs, and returns the final counters.
    pub fn serve_stdio(&self) -> ServerStats {
        let shared = self.shared();
        let stdin = std::io::stdin();
        std::thread::scope(|s| {
            for _ in 0..self.worker_count() {
                s.spawn(|| shared.work());
            }
            // `Stdout` (unlike `StdoutLock`) is `Send`, which the
            // writer thread needs; its internal lock serializes lines.
            serve_connection(
                &shared,
                stdin.lock(),
                std::io::stdout(),
                &AtomicBool::new(false),
            );
            shared.close();
        });
        let stats = *shared.stats.lock().expect("server stats poisoned");
        stats
    }

    /// Binds `path` and serves any number of concurrent clients until
    /// `shutdown` is raised externally (the CLI's SIGTERM handler) or a
    /// client sends `{"op":"shutdown"}`; drains in-flight jobs and
    /// returns the final counters. The socket file is removed on the
    /// way out.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the socket cannot be bound
    /// or configured.
    pub fn serve_unix(&self, path: &Path, shutdown: &AtomicBool) -> std::io::Result<ServerStats> {
        let listener = UnixListener::bind(path)?;
        listener.set_nonblocking(true)?;
        let shared = self.shared();
        std::thread::scope(|s| -> std::io::Result<()> {
            for _ in 0..self.worker_count() {
                s.spawn(|| shared.work());
            }
            loop {
                if shutdown.load(Ordering::SeqCst) || shared.stop.load(Ordering::SeqCst) {
                    break;
                }
                match listener.accept() {
                    Ok((stream, _)) => {
                        // Bounded reads so connection pumps notice
                        // shutdown instead of blocking in `read` forever.
                        stream.set_read_timeout(Some(Duration::from_millis(50)))?;
                        let reader = stream.try_clone()?;
                        let shared = &shared;
                        s.spawn(move || {
                            serve_connection(shared, BufReader::new(reader), stream, shutdown);
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(50));
                    }
                    Err(e) => return Err(e),
                }
            }
            shared.close();
            Ok(())
        })?;
        let _ = std::fs::remove_file(path);
        let stats = *shared.stats.lock().expect("server stats poisoned");
        Ok(stats)
    }
}

/// Pumps one connection: reads request lines and enqueues them, while a
/// writer thread puts responses back **in request order** (workers
/// finish out of order; a reorder buffer serializes them). Returns once
/// the peer hits EOF / the server shuts down *and* every accepted
/// request has been answered — which is what makes EOF shutdown
/// graceful.
fn serve_connection(
    shared: &Shared<'_>,
    mut reader: impl BufRead,
    mut writer: impl Write + Send,
    external_stop: &AtomicBool,
) {
    shared.stats.lock().expect("server stats poisoned").clients += 1;
    let client = Arc::new(ClientState::default());
    let (tx, rx) = mpsc::channel::<(u64, String)>();
    std::thread::scope(|s| {
        s.spawn(move || {
            let mut next = 0u64;
            let mut pending: BTreeMap<u64, String> = BTreeMap::new();
            while let Ok((seq, response)) = rx.recv() {
                pending.insert(seq, response);
                while let Some(response) = pending.remove(&next) {
                    if writeln!(writer, "{response}").is_err() {
                        return; // client went away; drain silently
                    }
                    next += 1;
                }
                let _ = writer.flush();
            }
        });
        let mut seq = 0u64;
        let mut line = String::new();
        loop {
            if external_stop.load(Ordering::SeqCst) || shared.stop.load(Ordering::SeqCst) {
                break;
            }
            match reader.read_line(&mut line) {
                Ok(0) => break, // EOF
                Ok(_) => {
                    let l = std::mem::take(&mut line);
                    if l.trim().is_empty() {
                        continue;
                    }
                    let item = WorkItem {
                        seq,
                        line: l,
                        respond: tx.clone(),
                        client: Arc::clone(&client),
                    };
                    if !shared.enqueue(item) {
                        break;
                    }
                    seq += 1;
                }
                // A read timeout (socket mode) just re-checks shutdown;
                // a partial line stays in `line` and continues growing.
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock
                            | std::io::ErrorKind::TimedOut
                            | std::io::ErrorKind::Interrupted
                    ) => {}
                Err(_) => break,
            }
        }
        // Dropping our sender ends the writer thread once every queued
        // job's worker has sent (and dropped its clone) — the drain.
        drop(tx);
    });
}
