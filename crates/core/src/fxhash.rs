//! A first-party Fx-style hasher for content addressing.
//!
//! The artifact cache keys compilations by `(source_hash, variant,
//! config_fingerprint)`; both hashes come from this module. The
//! algorithm is the multiply-rotate word hash popularized by the
//! Firefox/rustc `FxHasher` — not cryptographic, but fast, portable,
//! and (unlike `std::collections::hash_map::DefaultHasher`'s seeded
//! SipHash) **stable across processes and runs**, which is what a
//! content-addressed key needs. Collisions are tolerated by design:
//! cache entries verify the full source text on lookup (see
//! `session::ArtifactCache`), so a hash collision costs a recompile,
//! never a wrong artifact.

use std::hash::Hasher;

/// The multiplier from the Fx hash family (a close relative of the
/// golden-ratio constant used by Fibonacci hashing), 64-bit flavor.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// A deterministic, process-stable `Hasher`.
///
/// # Examples
///
/// ```
/// use smlc::fxhash::{hash_bytes, FxHasher};
/// use std::hash::Hasher;
/// let a = hash_bytes(b"val x = 1");
/// let mut h = FxHasher::default();
/// h.write(b"val x = 1");
/// assert_eq!(a, h.finish());
/// assert_ne!(a, hash_bytes(b"val x = 2"));
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.state = (self.state.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // Fold the length in so "ab" ++ [0] and "ab\0" differ.
            self.add(u64::from_le_bytes(tail) ^ (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }
}

/// Hashes a byte string to a stable 64-bit digest.
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_and_discriminating() {
        let a = hash_bytes(b"fun f x = x");
        assert_eq!(a, hash_bytes(b"fun f x = x"), "same input, same digest");
        assert_ne!(a, hash_bytes(b"fun f x = x "), "trailing byte changes it");
        assert_ne!(hash_bytes(b""), hash_bytes(b"\0"), "length is folded in");
        assert_ne!(hash_bytes(b"ab"), hash_bytes(b"ab\0"));
    }

    #[test]
    fn word_writes_differ_from_byte_writes_of_same_value() {
        let mut a = FxHasher::default();
        a.write_u64(7);
        a.write_u64(9);
        let mut b = FxHasher::default();
        b.write_u64(9);
        b.write_u64(7);
        assert_ne!(a.finish(), b.finish(), "order matters");
    }
}
