//! The six compiler variants of the paper's evaluation (§6).
//!
//! Each variant is nothing more than a combination of middle-end,
//! back-end, and VM flags; the full matrix, cumulative from left to
//! right:
//!
//! | flag | `nrp` | `fag` | `rep` | `mtd` | `ffb` | `fp3` |
//! |------|-------|-------|-------|-------|-------|-------|
//! | `LambdaConfig::type_based` (representation analysis) | – | – | ✓ | ✓ | ✓ | ✓ |
//! | MTD pass ([`Variant::uses_mtd`]) | – | – | – | ✓ | ✓ | ✓ |
//! | `LambdaConfig::unboxed_floats` | – | – | – | – | ✓ | ✓ |
//! | `CpsConfig::spread` (argument flattening) | `None` | `KnownOnly` | `ByType` | `ByType` | `ByType` | `ByType` |
//! | `CpsConfig::fp_callee_save` (3 float callee-saves) | – | – | – | – | – | ✓ |
//! | `VmConfig::fp3_overhead` (save/restore cost) | – | – | – | – | – | ✓ |
//!
//! Two knobs are deliberately *not* varied: every variant hash-conses
//! LTYs (`InternMode::HashCons`) and memo-izes module coercions
//! (`memo_coercions`) — the paper treats both as implementation
//! necessities rather than measured features; their ablations live in
//! the `ablation_hashcons` / `ablation_memo` bench binaries instead.
//!
//! In prose: `sml.nrp` is the non-type-based baseline — everything
//! boxed, one argument, one result. `sml.fag` keeps boxed
//! representations but flattens arguments of *known* functions
//! (Kranz-style, ≈ SML/NJ 0.93). `sml.rep` switches flattening
//! decisions to be type-driven and turns on representation analysis for
//! records, but floats stay boxed. `sml.mtd` additionally runs the
//! minimum-typing-derivations pass, monomorphizing type derivations so
//! polymorphic code (e.g. equality in a hot loop) specializes.
//! `sml.ffb` unboxes floats — float arguments travel in float
//! registers and float records are flat. `sml.fp3` finally dedicates
//! three floating-point callee-save registers, which costs a small
//! per-call save/restore overhead modeled by the VM.

use sml_cps::{CpsConfig, SpreadMode};
use sml_lambda::{InternMode, LambdaConfig};
use sml_vm::VmConfig;

/// One of the six compilers measured in the paper (all are "simple
/// variations of the Standard ML of New Jersey compiler version 1.03z").
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Variant {
    /// `sml.nrp`: non-type-based; standard boxed representations;
    /// one argument, one result.
    Nrp,
    /// `sml.fag`: `Nrp` plus known-function argument flattening
    /// (Kranz-style); similar to SML/NJ 0.93.
    Fag,
    /// `sml.rep`: type-based representation analysis on records; floats
    /// still boxed.
    Rep,
    /// `sml.mtd`: `Rep` plus minimum typing derivations.
    Mtd,
    /// `sml.ffb`: `Mtd` plus unboxed floats — float arguments in float
    /// registers, flat float records.
    Ffb,
    /// `sml.fp3`: `Ffb` plus three floating-point callee-save registers.
    Fp3,
}

impl Variant {
    /// All six, in the paper's order.
    pub const ALL: [Variant; 6] = [
        Variant::Nrp,
        Variant::Fag,
        Variant::Rep,
        Variant::Mtd,
        Variant::Ffb,
        Variant::Fp3,
    ];

    /// The paper's name for the variant.
    pub fn name(self) -> &'static str {
        match self {
            Variant::Nrp => "sml.nrp",
            Variant::Fag => "sml.fag",
            Variant::Rep => "sml.rep",
            Variant::Mtd => "sml.mtd",
            Variant::Ffb => "sml.ffb",
            Variant::Fp3 => "sml.fp3",
        }
    }

    /// Whether the minimum-typing-derivations pass runs.
    pub fn uses_mtd(self) -> bool {
        matches!(self, Variant::Mtd | Variant::Ffb | Variant::Fp3)
    }

    /// Middle-end configuration.
    pub fn lambda_config(self) -> LambdaConfig {
        match self {
            Variant::Nrp | Variant::Fag => LambdaConfig {
                type_based: false,
                unboxed_floats: false,
                memo_coercions: true,
                intern_mode: InternMode::HashCons,
            },
            Variant::Rep | Variant::Mtd => LambdaConfig {
                type_based: true,
                unboxed_floats: false,
                memo_coercions: true,
                intern_mode: InternMode::HashCons,
            },
            Variant::Ffb | Variant::Fp3 => LambdaConfig {
                type_based: true,
                unboxed_floats: true,
                memo_coercions: true,
                intern_mode: InternMode::HashCons,
            },
        }
    }

    /// Back-end configuration.
    pub fn cps_config(self) -> CpsConfig {
        let spread = match self {
            Variant::Nrp => SpreadMode::None,
            Variant::Fag => SpreadMode::KnownOnly,
            _ => SpreadMode::ByType,
        };
        CpsConfig {
            spread,
            max_spread: 10,
            fp_callee_save: self == Variant::Fp3,
        }
    }

    /// Execution configuration.
    pub fn vm_config(self) -> VmConfig {
        VmConfig {
            fp3_overhead: self == Variant::Fp3,
            ..VmConfig::default()
        }
    }
}

impl std::fmt::Display for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The error of [`Variant::from_str`] on an unrecognized name; its
/// message lists the accepted spellings.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseVariantError {
    input: String,
}

impl std::fmt::Display for ParseVariantError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Derive the accepted spellings from `Variant::ALL` so this
        // message can never fall out of sync with the enum.
        let shorts: Vec<&str> = Variant::ALL
            .iter()
            .filter_map(|v| v.name().strip_prefix("sml."))
            .collect();
        write!(
            f,
            "unknown variant {:?} (expected one of {}, with or without the sml. prefix)",
            self.input,
            shorts.join(", ")
        )
    }
}

impl std::error::Error for ParseVariantError {}

impl std::str::FromStr for Variant {
    type Err = ParseVariantError;

    /// Parses either the short flag spelling (`ffb`) or the paper's
    /// full name (`sml.ffb`), case-insensitively.
    ///
    /// # Examples
    ///
    /// ```
    /// use smlc::Variant;
    /// assert_eq!("ffb".parse(), Ok(Variant::Ffb));
    /// assert_eq!("sml.fp3".parse(), Ok(Variant::Fp3));
    /// assert!("mlton".parse::<Variant>().is_err());
    /// ```
    fn from_str(s: &str) -> Result<Variant, ParseVariantError> {
        let lower = s.to_ascii_lowercase();
        let short = lower.strip_prefix("sml.").unwrap_or(&lower);
        Variant::ALL
            .into_iter()
            .find(|v| v.name().strip_prefix("sml.") == Some(short))
            .ok_or_else(|| ParseVariantError {
                input: s.to_owned(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Display → FromStr round-trips for every variant, under every
    /// spelling `from_str` documents: the full `sml.x` name, the short
    /// flag, and arbitrary ASCII case of either.
    #[test]
    fn variant_display_fromstr_round_trip() {
        for v in Variant::ALL {
            let full = v.to_string();
            assert_eq!(full.parse::<Variant>(), Ok(v), "full name {full}");
            let short = full.strip_prefix("sml.").expect("names are sml.-prefixed");
            assert_eq!(short.parse::<Variant>(), Ok(v), "short name {short}");
            assert_eq!(full.to_ascii_uppercase().parse::<Variant>(), Ok(v));
            assert_eq!(short.to_ascii_uppercase().parse::<Variant>(), Ok(v));
        }
    }

    #[test]
    fn parse_error_lists_every_variant() {
        let msg = "mlton".parse::<Variant>().unwrap_err().to_string();
        for v in Variant::ALL {
            let short = v.name().strip_prefix("sml.").unwrap();
            assert!(msg.contains(short), "{msg:?} should list {short}");
        }
    }
}
