//! Structured pipeline observability: one [`Metrics`] value captures a
//! whole compile (and optionally a run) as machine-readable data.
//!
//! This is the layer behind `smlc --stats=json` and the bench
//! harness's `BENCH_*.json` trajectory files: every per-phase
//! wall-clock span, LTY hash-cons hit/miss count, coercion-memo hit,
//! optimizer rewrite count, and VM runtime counter (allocation, Cheney
//! collections, cycle breakdown by instruction class) flows through
//! here. The JSON schema is documented field-by-field in
//! `docs/OBSERVABILITY.md`; a golden test pins the serialized shape.

use crate::json::Json;
use crate::pipeline::{CompileStats, Compiled};
use crate::server::ServerStats;
use crate::session::CacheStats;
use sml_lambda::InternStats;
use sml_vm::{DispatchStats, InstrClass, Outcome, RunStats, SchedStats, VmResult};

/// Version stamped into every emitted document as `schema_version`;
/// bump when a field is renamed, removed, or changes meaning (pure
/// additions keep the version).
///
/// Version history: **1** — initial schema. **2** — `compile.lty`
/// counters became strictly per-compile (a warm session no longer
/// reports `interned` as the shared-table total, so `interned ==
/// hashcons_misses` now holds for every compile, not just a session's
/// first) and the top-level `arena` object (shared LTY arena totals)
/// was added. Still 2 after the bounded-pause GC work: the `gc` pause
/// histograms/slice counters and the top-level `sched` object are pure
/// additions. **3** — the top-level `components` object
/// (SCC-incremental elaboration counters, always present) and the
/// top-level `server` object (compile-server counters, `null` outside
/// `smlc serve`) were added; bumped because `components` changes what
/// a "complete" document looks like for schema-checking consumers.
/// **4** — the top-level `dispatch` object (execution engine, fused
/// superinstruction count, pre-decoded stream length; `null` for
/// compile-only documents) was added, and `run` counters can now
/// reflect the floor-semantics div/mod (a `"fault"` result where
/// division by zero previously produced a value); bumped because the
/// arithmetic-semantics change alters the meaning of existing runs.
/// **5** — the `sched` object grew the policy-driven scheduler's
/// counters (`policy`, `rejected`, `ready_peak`, `deadline_missed`)
/// and two fields changed meaning: `rounds` is now the maximum slices
/// any one tenant consumed (identical for round-robin, defined for
/// every policy) and `max_overshoot` is measured against each
/// tenant's *own* quantum (identical when all tenants share the
/// global quantum); bumped for those redefinitions.
pub const METRICS_SCHEMA_VERSION: u64 = 5;

/// A structured snapshot of one compilation and (optionally) one run.
#[derive(Clone, Debug)]
pub struct Metrics {
    /// The paper's name for the compiler variant (`sml.nrp` … `sml.fp3`).
    pub variant: String,
    /// Compile-side statistics: phase spans, IR sizes, hash-consing,
    /// coercions, optimizer rewrites.
    pub compile: CompileStats,
    /// Run-side counters, when the program was executed.
    pub run: Option<RunMetrics>,
    /// Which execution engine ran the program and its pre-decode facts
    /// (fused superinstruction count, threaded stream length), when the
    /// program was executed; `None` serializes as `"dispatch": null`.
    pub dispatch: Option<DispatchStats>,
    /// Session artifact-cache counters, when the compile went through a
    /// session whose counters were captured (see
    /// `Session::cache_stats`); `None` serializes as `"cache": null`.
    pub cache: Option<CacheStats>,
    /// Shared LTY arena totals, when captured from a session (see
    /// `Session::arena_stats`); `None` serializes as `"arena": null`.
    /// Arena totals span every compile of the session and their
    /// per-shard split is scheduling-dependent — only the per-compile
    /// `compile.lty` counters are deterministic.
    pub arena: Option<InternStats>,
    /// Multi-tenant scheduler fairness counters, when the run went
    /// through a `VmScheduler` (see `smlc --tenants`); `None`
    /// serializes as `"sched": null`.
    pub sched: Option<SchedStats>,
    /// Compile-server counters, when the compile was served by `smlc
    /// serve` (see `docs/SERVER.md`); `None` serializes as
    /// `"server": null`.
    pub server: Option<ServerStats>,
}

/// Run-side portion of a [`Metrics`] snapshot.
#[derive(Clone, Debug)]
pub struct RunMetrics {
    /// How the run ended: `"value"`, `"uncaught"`, `"out-of-fuel"`,
    /// `"heap-exhausted"`, or `"fault"`.
    pub result: &'static str,
    /// The VM's performance counters.
    pub stats: RunStats,
}

impl Default for Metrics {
    /// A zeroed snapshot with the run side present — it serializes every
    /// field of the schema, which is what the documentation cross-check
    /// and golden tests want.
    fn default() -> Metrics {
        Metrics {
            variant: "sml.nrp".to_owned(),
            compile: CompileStats::default(),
            run: Some(RunMetrics {
                result: "value",
                stats: RunStats::default(),
            }),
            dispatch: Some(DispatchStats::default()),
            cache: Some(CacheStats::default()),
            arena: Some(InternStats::default()),
            sched: Some(SchedStats::default()),
            server: Some(ServerStats::default()),
        }
    }
}

/// The stable tag for a [`VmResult`] in metrics output.
pub fn result_tag(r: &VmResult) -> &'static str {
    match r {
        VmResult::Value(_) => "value",
        VmResult::Uncaught(_) => "uncaught",
        VmResult::OutOfFuel => "out-of-fuel",
        VmResult::HeapExhausted => "heap-exhausted",
        VmResult::Fault(_) => "fault",
    }
}

/// Renders a compile failure as a metrics-schema document: same
/// `schema_version`/`variant` envelope as a successful run, with an
/// `error` object instead of `compile`/`run` payloads, so `--stats=json`
/// consumers see structured output on every path.
pub fn error_json(variant: crate::Variant, e: &crate::CompileError) -> Json {
    let mut err = Json::obj()
        .field("kind", e.kind())
        .field("phase", e.phase())
        .field("message", e.to_string());
    if let crate::CompileError::Config(c) = e {
        err = err
            .field("field", c.field())
            .field("given", c.given())
            .field("allowed", c.allowed());
    }
    err = match e.violation() {
        Some(v) => err.field(
            "violation",
            Json::obj()
                .field("stage", v.stage)
                .field(
                    "pass",
                    v.pass.map(|p| Json::Int(p.into())).unwrap_or(Json::Null),
                )
                .field("rule", v.rule)
                .field("detail", v.detail.as_str()),
        ),
        None => err.field("violation", Json::Null),
    };
    Json::obj()
        .field("schema_version", METRICS_SCHEMA_VERSION)
        .field("variant", variant.name())
        .field("error", err)
        .field("compile", Json::Null)
        .field("run", Json::Null)
        .field("dispatch", Json::Null)
        .field("cache", Json::Null)
        .field("arena", Json::Null)
        .field("sched", Json::Null)
        .field("components", Json::Null)
        .field("server", Json::Null)
}

impl Metrics {
    /// Captures a compile without a run.
    pub fn of_compile(c: &Compiled) -> Metrics {
        Metrics {
            variant: c.variant.name().to_owned(),
            compile: c.stats.clone(),
            run: None,
            dispatch: None,
            cache: None,
            arena: None,
            sched: None,
            server: None,
        }
    }

    /// Captures a compile plus the outcome of running it.
    pub fn of_run(c: &Compiled, o: &Outcome) -> Metrics {
        Metrics {
            variant: c.variant.name().to_owned(),
            compile: c.stats.clone(),
            run: Some(RunMetrics {
                result: result_tag(&o.result),
                stats: o.stats,
            }),
            dispatch: Some(o.dispatch),
            cache: None,
            arena: None,
            sched: None,
            server: None,
        }
    }

    /// Attaches a session's artifact-cache counters to the snapshot.
    pub fn with_cache(mut self, stats: CacheStats) -> Metrics {
        self.cache = Some(stats);
        self
    }

    /// Attaches a session's shared-arena counters to the snapshot
    /// (usually from `Session::arena_stats`; `None` is a valid input
    /// for `reuse_types(false)` sessions and keeps `"arena": null`).
    pub fn with_arena(mut self, stats: Option<InternStats>) -> Metrics {
        self.arena = stats;
        self
    }

    /// Attaches multi-tenant scheduler counters to the snapshot (from
    /// `VmScheduler::run_all`).
    pub fn with_sched(mut self, stats: SchedStats) -> Metrics {
        self.sched = Some(stats);
        self
    }

    /// Attaches compile-server counters to the snapshot (from
    /// `CompileServer::stats`).
    pub fn with_server(mut self, stats: ServerStats) -> Metrics {
        self.server = Some(stats);
        self
    }

    /// Renders the snapshot as a JSON document (see
    /// `docs/OBSERVABILITY.md` for the schema).
    pub fn to_json(&self) -> Json {
        let mut doc = Json::obj()
            .field("schema_version", METRICS_SCHEMA_VERSION)
            .field("variant", self.variant.as_str())
            .field("compile", compile_json(&self.compile));
        doc = match &self.run {
            Some(run) => doc.field("run", run_json(run)),
            None => doc.field("run", Json::Null),
        };
        doc = match &self.dispatch {
            Some(dispatch) => doc.field("dispatch", dispatch_json(dispatch)),
            None => doc.field("dispatch", Json::Null),
        };
        doc = match &self.cache {
            Some(cache) => doc.field("cache", cache_json(cache)),
            None => doc.field("cache", Json::Null),
        };
        doc = match &self.arena {
            Some(arena) => doc.field("arena", arena_json(arena)),
            None => doc.field("arena", Json::Null),
        };
        doc = match &self.sched {
            Some(sched) => doc.field("sched", sched_json(sched)),
            None => doc.field("sched", Json::Null),
        };
        // Always present (unlike the optional session attachments):
        // every compile reports its component counters, zeroed with
        // `enabled: false` when elaboration ran whole-program.
        doc = doc.field("components", components_json(&self.compile.components));
        doc = match &self.server {
            Some(server) => doc.field("server", server_json(server)),
            None => doc.field("server", Json::Null),
        };
        doc
    }
}

fn components_json(c: &crate::component::ComponentStats) -> Json {
    Json::obj()
        .field("enabled", c.enabled)
        .field("scc_count", c.scc_count)
        .field("recompiled", c.recompiled)
        .field("cache_hits", c.cache_hits)
        .field("topo_depth", c.topo_depth)
}

fn server_json(s: &ServerStats) -> Json {
    Json::obj()
        .field("jobs", s.jobs)
        .field("clients", s.clients)
        .field("queue_depth_peak", s.queue_depth_peak)
}

fn arena_json(a: &InternStats) -> Json {
    let shards: Vec<Json> = a
        .shards
        .iter()
        .map(|s| {
            Json::obj()
                .field("resident", s.resident)
                .field("hits", s.hits)
                .field("misses", s.misses)
                .field("retries", s.retries)
        })
        .collect();
    Json::obj()
        .field("resident", a.resident())
        .field("hits", a.hits())
        .field("misses", a.misses())
        .field("retries", a.retries())
        .field("queries", a.queries())
        .field("shards", Json::Arr(shards))
}

fn cache_json(c: &CacheStats) -> Json {
    Json::obj()
        .field("enabled", c.enabled)
        .field("hits", c.hits)
        .field("misses", c.misses)
        .field("evictions", c.evictions)
        .field("insertions", c.insertions)
        .field("entries", c.entries)
        .field("capacity", c.capacity)
}

fn ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn compile_json(s: &CompileStats) -> Json {
    let phases: Vec<Json> = s
        .phase_times
        .iter()
        .map(|(name, d)| Json::obj().field("name", *name).field("ms", ms(*d)))
        .collect();
    let lty = Json::obj()
        .field("interned", s.lty.interned)
        .field("intern_calls", s.lty.intern_calls)
        .field("hashcons_hits", s.lty.hashcons_hits)
        .field("hashcons_misses", s.lty.hashcons_misses)
        .field("deep_compares", s.lty.deep_compares)
        .field("hit_rate", s.lty.hit_rate());
    Json::obj()
        .field("total_ms", ms(s.compile_time))
        .field("phases", Json::Arr(phases))
        .field(
            "sizes",
            Json::obj()
                .field("lexp", s.lexp_size)
                .field("cps_before", s.cps_size_before)
                .field("cps_after", s.cps_size_after)
                .field("code", s.code_size),
        )
        .field("lty", lty)
        .field("coerce", counters_json(&s.coerce.counters()))
        .field("opt", counters_json(&s.opt.rules()))
        .field(
            "verify",
            Json::obj()
                .field("mode", s.verify.mode.as_str())
                .field("lexp_checks", s.verify.lexp_checks)
                .field("cps_checks", s.verify.cps_checks)
                .field("bytecode_checks", s.verify.bytecode_checks)
                .field("ms", ms(s.verify.time)),
        )
        .field("warnings", s.warnings.len())
}

fn counters_json(counters: &[(&'static str, u64)]) -> Json {
    let mut obj = Json::obj();
    for (name, value) in counters {
        obj = obj.field(name, *value);
    }
    obj
}

fn run_json(r: &RunMetrics) -> Json {
    let s = &r.stats;
    Json::obj()
        .field("result", r.result)
        .field("cycles", s.cycles)
        .field("instrs", s.instrs)
        .field("alloc_words", s.alloc_words)
        .field("n_allocs", s.n_allocs)
        .field(
            "gc",
            Json::obj()
                .field("collections", s.n_gcs)
                .field("copied_words", s.gc_copied_words)
                .field("cycles", s.gc_cycles)
                .field("minor_collections", s.n_minor_gcs)
                .field("major_collections", s.n_major_gcs)
                .field("promoted_words", s.promoted_words)
                .field("remembered_set_peak", s.remembered_peak)
                .field("minor_cycles", s.minor_gc_cycles)
                .field("major_cycles", s.major_gc_cycles)
                .field("max_minor_pause_cycles", s.max_minor_pause)
                .field("max_major_pause_cycles", s.max_major_pause)
                .field("major_slices", s.major_slices)
                .field("barrier_words", s.barrier_words)
                .field("pause_overruns", s.pause_overruns)
                .field("pause_hist_minor", hist_json(&s.pause_hist_minor))
                .field("pause_hist_major", hist_json(&s.pause_hist_major)),
        )
        .field("cycles_by_class", by_class_json(&s.cycles_by_class))
        .field("instrs_by_class", by_class_json(&s.instrs_by_class))
}

fn dispatch_json(d: &DispatchStats) -> Json {
    Json::obj()
        .field("engine", d.engine.name())
        .field("superinstructions", d.superinstructions)
        .field("stream_len", d.stream_len)
}

fn hist_json(hist: &[u64; sml_vm::N_PAUSE_BUCKETS]) -> Json {
    Json::Arr(hist.iter().map(|&c| Json::from(c)).collect())
}

fn sched_json(s: &SchedStats) -> Json {
    Json::obj()
        .field("policy", s.policy.name())
        .field("quantum", s.quantum)
        .field("tenants", s.tenants)
        .field("rejected", s.rejected)
        .field("rounds", s.rounds)
        .field("slices", s.slices)
        .field("preemptions", s.preemptions)
        .field("max_overshoot", s.max_overshoot)
        .field("ready_peak", s.ready_peak)
        .field("done", s.done)
        .field("heap_exhausted", s.heap_exhausted)
        .field("fault", s.fault)
        .field("out_of_fuel", s.out_of_fuel)
        .field("deadline_missed", s.deadline_missed)
}

fn by_class_json(counts: &[u64; sml_vm::N_INSTR_CLASSES]) -> Json {
    let mut obj = Json::obj();
    for class in InstrClass::all() {
        obj = obj.field(class.name(), counts[class as usize]);
    }
    obj
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_breakdown_covers_every_class() {
        let m = Metrics::default();
        let json = m.to_json().to_string_compact();
        for class in InstrClass::all() {
            assert!(
                json.contains(&format!("\"{}\":", class.name())),
                "class {} missing from {json}",
                class.name()
            );
        }
    }

    #[test]
    fn compile_only_has_null_run() {
        let m = Metrics {
            run: None,
            ..Metrics::default()
        };
        assert!(m.to_json().to_string_compact().contains("\"run\":null"));
    }
}
