//! Long-lived compilation sessions (the service-shaped entry point).
//!
//! A [`Session`] consolidates the compiler's scattered knobs —
//! [`Variant`], [`OptConfig`], [`Limits`], [`VmConfig`], and
//! [`FaultInject`] — into one validated configuration object built by
//! [`SessionBuilder`], and owns the state worth amortizing across
//! compiles:
//!
//! * a **content-addressed artifact cache** keyed by `(source_hash,
//!   variant, config_fingerprint)` — repeat compiles of the same source
//!   under the same configuration return the cached [`Compiled`]
//!   artifact and record a hit (see [`CacheStats`]);
//! * a **shared LTY hash-cons arena** ([`sml_lambda::LtyArena`]):
//!   every compile — the serial path *and* every batch worker — opens
//!   a private per-compile view onto one sharded concurrent arena, so
//!   the paper's global static hash-consing (§4.1, §4.5) is actually
//!   global across compiles, not rebuilt per compile (the string
//!   interner is already process-global, see `sml_ast::Symbol`);
//! * a **deterministic parallel batch driver**,
//!   [`Session::compile_batch`], which fans jobs out over a shared
//!   atomic work queue and reassembles results in input order.
//!
//! Determinism contract: compilation output is a pure function of
//! `(source, variant, configuration)`. The arena hands equal type
//! structures equal handles no matter which thread interns them first
//! (children are interned before parents, so a parent's kind is
//! canonical on arrival — insertion-order independence), and nothing
//! downstream reads a raw handle value, so a *warm parallel* batch is
//! byte-identical to the same jobs compiled serially on a cold session
//! regardless of scheduling — the property the scheduling-permutation
//! differential test pins across thread counts and shuffled job
//! orders. Per-compile LTY statistics come from the compile's private
//! view, never the shared arena, so even the reported counters are
//! warmth- and schedule-invariant (arena-wide totals are a separate,
//! explicitly nondeterministic surface: [`Session::arena_stats`]).
//! The full argument lives in `docs/ARCHITECTURE.md`.
//!
//! # Examples
//!
//! ```
//! use smlc::{Session, Variant, VmResult};
//! let session = Session::builder()
//!     .variant(Variant::Ffb)
//!     .cache_capacity(64)
//!     .build()
//!     .unwrap();
//! let a = session.compile("val _ = print (itos 42)").unwrap();
//! let b = session.compile("val _ = print (itos 42)").unwrap();
//! assert!(!a.from_cache && b.from_cache);
//! assert_eq!(session.cache_stats().hits, 1);
//! assert_eq!(session.run(&a).result, VmResult::Value(0));
//! ```

use crate::component::{ComponentCache, IncrCtx};
use crate::config::Variant;
use crate::error::{CompileError, ConfigError};
use crate::fxhash::{hash_bytes, FxHasher};
use crate::pipeline::{compile_engine, Compiled, Limits, VerifyIr};
use sml_cps::OptConfig;
use sml_lambda::{InternMode, InternStats, LtyArena, LtyInterner};
use sml_vm::{
    AdmissionError, FaultInject, Outcome, SchedStats, SchedulerBuilder, TenantReport, TenantSpec,
    VmConfig, VmScheduler,
};
use std::collections::HashMap;
use std::hash::Hasher;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// The description of one compilation — the single unit of work every
/// compile entry point reduces to.
///
/// [`Session::compile`] and [`Session::compile_variant`] are thin
/// wrappers that build a `Job` and call [`Session::compile_job`];
/// [`Session::compile_batch`] fans a slice of jobs out in parallel. A
/// job can override the session's variant, IR-verification mode,
/// resource budgets, and optimizer settings per compile; every `None`
/// field inherits the session's value. Overrides fold into the job's
/// effective configuration fingerprint, so cached artifacts never leak
/// between differently-configured jobs.
///
/// # Examples
///
/// ```
/// use smlc::{Job, Session, Variant, VerifyIr};
/// let session = Session::default();
/// let job = Job::with_variant("val x = 1 + 2", Variant::Mtd).verify_ir(VerifyIr::Always);
/// let compiled = session.compile_job(&job).unwrap();
/// assert_eq!(compiled.variant, Variant::Mtd);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Job {
    /// The SML source text.
    pub src: String,
    /// Compiler variant; `None` uses the session's default.
    pub variant: Option<Variant>,
    /// IR-verification mode; `None` uses the session's mode.
    pub verify_ir: Option<VerifyIr>,
    /// Resource budgets; `None` uses the session's limits.
    pub limits: Option<Limits>,
    /// Optimizer settings; `None` uses the session's settings.
    pub opt: Option<OptConfig>,
}

impl Job {
    /// A job compiled under the session's default configuration.
    pub fn new(src: impl Into<String>) -> Job {
        Job {
            src: src.into(),
            ..Job::default()
        }
    }

    /// A job with an explicit variant.
    pub fn with_variant(src: impl Into<String>, variant: Variant) -> Job {
        Job {
            src: src.into(),
            variant: Some(variant),
            ..Job::default()
        }
    }

    /// Overrides the session's variant for this job.
    pub fn variant(mut self, v: Variant) -> Job {
        self.variant = Some(v);
        self
    }

    /// Overrides the session's IR-verification mode for this job.
    pub fn verify_ir(mut self, mode: VerifyIr) -> Job {
        self.verify_ir = Some(mode);
        self
    }

    /// Overrides the session's resource budgets for this job. Validated
    /// by [`Session::compile_job`] exactly like the builder's knobs.
    pub fn limits(mut self, limits: Limits) -> Job {
        self.limits = Some(limits);
        self
    }

    /// Overrides the session's optimizer settings for this job.
    /// Validated by [`Session::compile_job`] exactly like the builder's
    /// knobs.
    pub fn opt_config(mut self, opt: OptConfig) -> Job {
        self.opt = Some(opt);
        self
    }

    /// Whether any per-job configuration override is set (the variant
    /// is dispatch, not configuration — it is part of every cache key
    /// already).
    fn has_overrides(&self) -> bool {
        self.verify_ir.is_some() || self.limits.is_some() || self.opt.is_some()
    }
}

/// A snapshot of the artifact cache's counters (all zero and
/// `enabled: false` for a cache-disabled session). These flow into the
/// metrics schema; see `docs/OBSERVABILITY.md`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Whether the cache is enabled at all.
    pub enabled: bool,
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to compile (including compiles that then
    /// failed — errors are never cached).
    pub misses: u64,
    /// Artifacts evicted to respect the capacity bound.
    pub evictions: u64,
    /// Artifacts stored.
    pub insertions: u64,
    /// Artifacts currently resident.
    pub entries: usize,
    /// Maximum resident artifacts.
    pub capacity: usize,
}

/// Content address of one compilation: source digest + length (the
/// length guards 64-bit digest collisions cheaply; the full source is
/// verified on lookup), the variant, and the session configuration
/// fingerprint.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct CacheKey {
    src_hash: u64,
    src_len: usize,
    variant: Variant,
    fingerprint: u64,
}

struct CacheEntry {
    /// Full source text, compared on lookup so a digest collision costs
    /// a recompile instead of returning the wrong artifact.
    src: String,
    artifact: Compiled,
    last_used: u64,
}

struct ArtifactCache {
    capacity: usize,
    tick: u64,
    map: HashMap<CacheKey, CacheEntry>,
    hits: u64,
    misses: u64,
    evictions: u64,
    insertions: u64,
}

impl ArtifactCache {
    fn new(capacity: usize) -> ArtifactCache {
        ArtifactCache {
            capacity,
            tick: 0,
            map: HashMap::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
            insertions: 0,
        }
    }

    fn lookup(&mut self, key: &CacheKey, src: &str) -> Option<Compiled> {
        self.tick += 1;
        match self.map.get_mut(key) {
            Some(e) if e.src == src => {
                e.last_used = self.tick;
                self.hits += 1;
                let mut artifact = e.artifact.clone();
                artifact.from_cache = true;
                Some(artifact)
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    fn insert(&mut self, key: CacheKey, src: &str, artifact: &Compiled) {
        self.tick += 1;
        if !self.map.contains_key(&key) && self.map.len() >= self.capacity {
            // Evict the least-recently-used entry. The linear scan is
            // fine at artifact-cache sizes (dozens to hundreds).
            if let Some(&victim) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k)
            {
                self.map.remove(&victim);
                self.evictions += 1;
            }
        }
        self.insertions += 1;
        self.map.insert(
            key,
            CacheEntry {
                src: src.to_owned(),
                artifact: artifact.clone(),
                last_used: self.tick,
            },
        );
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            enabled: true,
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            insertions: self.insertions,
            entries: self.map.len(),
            capacity: self.capacity,
        }
    }
}

/// Builder for [`Session`]; every compilation knob plus the VM surface
/// in one place. `build` validates the whole configuration up front and
/// reports the first bad field as a [`ConfigError`].
#[derive(Clone, Debug)]
pub struct SessionBuilder {
    variant: Variant,
    opt: OptConfig,
    limits: Limits,
    vm: Option<VmConfig>,
    fault: Option<FaultInject>,
    cache_enabled: bool,
    cache_capacity: usize,
    reuse_types: bool,
    batch_workers: usize,
    verify: VerifyIr,
    incremental: bool,
    component_cache_capacity: usize,
}

impl Default for SessionBuilder {
    fn default() -> SessionBuilder {
        // The `SMLC_VERIFY_IR` environment variable (off / debug /
        // always) overrides the default verification mode, so a test
        // harness can force `always` across a whole run without
        // plumbing a flag through every driver. An explicit
        // `.verify_ir(..)` call still wins, and an unparsable value
        // falls back to the default.
        let verify = std::env::var("SMLC_VERIFY_IR")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or_default();
        SessionBuilder {
            variant: Variant::Ffb,
            opt: OptConfig::default(),
            limits: Limits::default(),
            vm: None,
            fault: None,
            cache_enabled: true,
            cache_capacity: 256,
            reuse_types: true,
            batch_workers: 0,
            verify,
            incremental: true,
            component_cache_capacity: 64,
        }
    }
}

impl SessionBuilder {
    /// Default compiler variant ([`Variant::Ffb`] if never set).
    pub fn variant(mut self, v: Variant) -> SessionBuilder {
        self.variant = v;
        self
    }

    /// Optimizer settings.
    pub fn opt_config(mut self, opt: OptConfig) -> SessionBuilder {
        self.opt = opt;
        self
    }

    /// Resource budgets (see `docs/ROBUSTNESS.md`).
    pub fn limits(mut self, limits: Limits) -> SessionBuilder {
        self.limits = limits;
        self
    }

    /// Explicit VM configuration for [`Session::run`] /
    /// [`Session::compile_and_run`]. When never set, each run uses its
    /// variant's default VM configuration (so `sml.fp3` keeps its
    /// callee-save overhead).
    pub fn vm_config(mut self, vm: VmConfig) -> SessionBuilder {
        self.vm = Some(vm);
        self
    }

    /// Fault-injection overlay applied to whatever VM configuration a
    /// run uses (explicit or variant-derived).
    pub fn fault_inject(mut self, fault: FaultInject) -> SessionBuilder {
        self.fault = Some(fault);
        self
    }

    /// Enables or disables the artifact cache (enabled by default).
    pub fn cache(mut self, enabled: bool) -> SessionBuilder {
        self.cache_enabled = enabled;
        self
    }

    /// Maximum cached artifacts (default 256); least-recently-used
    /// artifacts are evicted beyond this.
    pub fn cache_capacity(mut self, capacity: usize) -> SessionBuilder {
        self.cache_capacity = capacity;
        self
    }

    /// Whether compiles share the session's LTY hash-cons arena
    /// (default true) — the serial path and batch workers alike. When
    /// disabled, every compile builds a private cold arena; output is
    /// byte-identical either way (see the module docs), sharing only
    /// changes interning speed.
    pub fn reuse_types(mut self, reuse: bool) -> SessionBuilder {
        self.reuse_types = reuse;
        self
    }

    /// Worker-thread count for [`Session::compile_batch`]; `0` (the
    /// default) uses the machine's available parallelism, `1` degrades
    /// to a serial in-order loop (the differential-testing reference).
    pub fn batch_workers(mut self, workers: usize) -> SessionBuilder {
        self.batch_workers = workers;
        self
    }

    /// When the typed-IR verification pipeline runs (default
    /// [`VerifyIr::Debug`]: active in debug builds, skipped in release
    /// builds). See `docs/VERIFY_IR.md`. The mode is part of the
    /// session fingerprint, so cached artifacts never cross modes.
    pub fn verify_ir(mut self, mode: VerifyIr) -> SessionBuilder {
        self.verify = mode;
        self
    }

    /// Enables or disables SCC-incremental elaboration (enabled by
    /// default). When on, the session keeps elaborator checkpoints per
    /// top-level component (see [`crate::component`]) so recompiling an
    /// edited program replays only the dirtied suffix of components.
    /// Output is byte-identical either way — the flag is deliberately
    /// *not* part of the configuration fingerprint, so warm incremental
    /// and cold whole-program compiles share the artifact cache.
    pub fn incremental(mut self, enabled: bool) -> SessionBuilder {
        self.incremental = enabled;
        self
    }

    /// Maximum retained component checkpoints (default 64);
    /// least-recently-used checkpoints are evicted beyond this. Only
    /// meaningful with [`SessionBuilder::incremental`] enabled.
    pub fn component_cache_capacity(mut self, capacity: usize) -> SessionBuilder {
        self.component_cache_capacity = capacity;
        self
    }

    /// Validates the configuration and builds the session.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] naming the offending field when a knob
    /// is out of range: a zero resource budget, a zero cache capacity
    /// with the cache enabled, a degenerate VM geometry (zero-sized
    /// nursery or semispace, nursery larger than the heap), or a zero
    /// fault-injection threshold (both are 1-based).
    pub fn build(self) -> Result<Session, ConfigError> {
        let nonzero = |field: &'static str| Err(ConfigError::MustBeNonzero { field });
        if self.limits.max_source_bytes == 0 {
            return nonzero("limits.max_source_bytes");
        }
        if self.limits.max_lexp_nodes == 0 {
            return nonzero("limits.max_lexp_nodes");
        }
        if self.limits.max_cps_ops == 0 {
            return nonzero("limits.max_cps_ops");
        }
        if self.opt.max_rounds == 0 {
            return nonzero("opt.max_rounds");
        }
        if self.cache_enabled && self.cache_capacity == 0 {
            return nonzero("cache_capacity");
        }
        if self.incremental && self.component_cache_capacity == 0 {
            return nonzero("component_cache_capacity");
        }
        if let Some(vm) = &self.vm {
            if vm.nursery_words == 0 {
                return nonzero("vm.nursery_words");
            }
            if vm.tenured_words == 0 {
                return nonzero("vm.tenured_words");
            }
            if vm.nursery_words > vm.tenured_words {
                return Err(ConfigError::OutOfRange {
                    field: "vm.nursery_words",
                    given: vm.nursery_words as u64,
                    min: 1,
                    max: vm.tenured_words as u64,
                });
            }
            if vm.promote_after == 0 {
                return nonzero("vm.promote_after");
            }
            if vm.max_cycles == 0 {
                return nonzero("vm.max_cycles");
            }
            // 0 means unbounded; a nonzero budget below the fixed
            // per-collection cost could never be met, so reject it.
            if vm.max_pause_cycles != 0 && vm.max_pause_cycles < 256 {
                return Err(ConfigError::OutOfRange {
                    field: "vm.max_pause_cycles",
                    given: vm.max_pause_cycles,
                    min: 256,
                    max: u64::MAX,
                });
            }
        }
        let faults = [self.fault, self.vm.map(|v| v.fault)];
        for fault in faults.into_iter().flatten() {
            if fault.fail_alloc_at == Some(0) {
                return nonzero("fault.fail_alloc_at");
            }
            if fault.gc_every_n_allocs == Some(0) {
                return nonzero("fault.gc_every_n_allocs");
            }
            if fault.yield_every_n_slices == Some(0) {
                return nonzero("fault.yield_every_n_slices");
            }
        }
        let fingerprint = fingerprint(&self);
        Ok(Session {
            variant: self.variant,
            opt: self.opt,
            limits: self.limits,
            vm: self.vm,
            fault: self.fault,
            batch_workers: self.batch_workers,
            verify: self.verify,
            fingerprint,
            cache: self
                .cache_enabled
                .then(|| Mutex::new(ArtifactCache::new(self.cache_capacity))),
            arena: self.reuse_types.then(|| Arc::new(LtyArena::new())),
            incr: self
                .incremental
                .then(|| Mutex::new(ComponentCache::new(self.component_cache_capacity))),
        })
    }
}

/// Stable digest of every compilation-relevant knob, computed over the
/// builder's settings. Folded into each cache key so artifacts can
/// never leak between configurations, even if caches are ever shared
/// or persisted.
fn fingerprint(b: &SessionBuilder) -> u64 {
    fingerprint_of(b.verify, &b.opt, &b.limits, &b.vm, &b.fault)
}

/// The digest behind [`fingerprint`], parameterized so a [`Job`] with
/// per-job overrides can compute its *effective* fingerprint from the
/// same encoding the session used — an overridden job whose effective
/// knobs equal the session's hashes identically, so it still hits the
/// session's cached artifacts. The `incremental` flag is deliberately
/// excluded: incremental and whole-program compiles are byte-identical
/// and must share cache entries.
fn fingerprint_of(
    verify: VerifyIr,
    opt: &OptConfig,
    limits: &Limits,
    vm: &Option<VmConfig>,
    fault: &Option<FaultInject>,
) -> u64 {
    let mut h = FxHasher::default();
    // The verification mode never changes generated code, but a mode
    // byte keeps cache diagnostics honest if artifacts are ever shared
    // or persisted across differently-verified sessions.
    h.write_u8(match verify {
        VerifyIr::Off => 0,
        VerifyIr::Debug => 1,
        VerifyIr::Always => 2,
    });
    h.write_usize(opt.max_rounds);
    h.write_usize(opt.inline_size);
    h.write_usize(opt.inline_passes);
    h.write_usize(limits.max_source_bytes);
    h.write_usize(limits.max_lexp_nodes);
    h.write_usize(limits.max_cps_ops);
    match vm {
        None => h.write_u8(0),
        Some(vm) => {
            h.write_u8(1);
            h.write_u8(vm.fp3_overhead as u8);
            h.write_u8(match vm.gc_mode {
                sml_vm::GcMode::Generational => 0,
                sml_vm::GcMode::Semispace => 1,
            });
            h.write_usize(vm.nursery_words);
            h.write_u64(vm.max_cycles);
            h.write_usize(vm.tenured_words);
            h.write_u32(vm.promote_after);
            h.write_u64(vm.max_pause_cycles);
            h.write_u8(match vm.dispatch {
                sml_vm::Dispatch::Decode => 0,
                sml_vm::Dispatch::Threaded => 1,
            });
            h.write_u64(vm.fault.fail_alloc_at.map_or(0, |n| n ^ u64::MAX));
            h.write_u64(vm.fault.gc_every_n_allocs.map_or(0, |n| n ^ u64::MAX));
            h.write_u64(vm.fault.yield_every_n_slices.map_or(0, |n| n ^ u64::MAX));
        }
    }
    match fault {
        None => h.write_u8(0),
        Some(f) => {
            h.write_u8(1);
            h.write_u64(f.fail_alloc_at.map_or(0, |n| n ^ u64::MAX));
            h.write_u64(f.gc_every_n_allocs.map_or(0, |n| n ^ u64::MAX));
            h.write_u64(f.yield_every_n_slices.map_or(0, |n| n ^ u64::MAX));
        }
    }
    h.finish()
}

/// A reusable compilation session; see the module docs. Cheap to share
/// across threads (`&Session` is all [`Session::compile_batch`]'s
/// workers need), expensive state lives behind internal locks.
pub struct Session {
    variant: Variant,
    opt: OptConfig,
    limits: Limits,
    vm: Option<VmConfig>,
    fault: Option<FaultInject>,
    batch_workers: usize,
    verify: VerifyIr,
    fingerprint: u64,
    cache: Option<Mutex<ArtifactCache>>,
    /// The shared hash-cons arena (`None` when `reuse_types(false)`
    /// forces every compile onto a private cold arena).
    arena: Option<Arc<LtyArena>>,
    /// Elaborator checkpoints per component chain (`None` when
    /// `incremental(false)` forces whole-program elaboration).
    incr: Option<Mutex<ComponentCache>>,
}

impl Default for Session {
    fn default() -> Session {
        Session::builder()
            .build()
            .expect("default session configuration is valid")
    }
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("variant", &self.variant)
            .field("fingerprint", &self.fingerprint)
            .field("cache", &self.cache_stats())
            .finish_non_exhaustive()
    }
}

impl Session {
    /// Starts building a session.
    pub fn builder() -> SessionBuilder {
        SessionBuilder::default()
    }

    /// A default session for the given variant (never fails — every
    /// default knob validates).
    pub fn with_variant(variant: Variant) -> Session {
        Session::builder()
            .variant(variant)
            .build()
            .expect("default session configuration is valid")
    }

    /// The session's default variant.
    pub fn variant(&self) -> Variant {
        self.variant
    }

    /// The optimizer settings every compile uses.
    pub fn opt_config(&self) -> &OptConfig {
        &self.opt
    }

    /// The resource budgets every compile runs under.
    pub fn limits(&self) -> &Limits {
        &self.limits
    }

    /// The configuration fingerprint folded into every cache key.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The configured batch worker count (`0` = available parallelism);
    /// see [`SessionBuilder::batch_workers`].
    pub fn batch_workers(&self) -> usize {
        self.batch_workers
    }

    /// The configured IR-verification mode; see
    /// [`SessionBuilder::verify_ir`].
    pub fn verify_ir(&self) -> VerifyIr {
        self.verify
    }

    /// Whether SCC-incremental elaboration is on; see
    /// [`SessionBuilder::incremental`].
    pub fn incremental(&self) -> bool {
        self.incr.is_some()
    }

    /// The VM configuration a run of `variant` would use: the explicit
    /// [`SessionBuilder::vm_config`] if one was given (otherwise the
    /// variant's default), with the [`SessionBuilder::fault_inject`]
    /// overlay applied.
    pub fn vm_config(&self, variant: Variant) -> VmConfig {
        let mut vm = self.vm.unwrap_or_else(|| variant.vm_config());
        if let Some(fault) = self.fault {
            vm.fault = fault;
        }
        vm
    }

    /// Compiles under the session's default variant, consulting the
    /// artifact cache first. Equivalent to
    /// `compile_job(&Job::new(src))`.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError`] on syntax or type errors, exceeded
    /// budgets, or contained compiler bugs. Errors are never cached: a
    /// failed source recompiles (and re-fails) on every request.
    pub fn compile(&self, src: &str) -> Result<Compiled, CompileError> {
        self.compile_job(&Job::new(src))
    }

    /// Compiles under an explicit variant (same caching and errors as
    /// [`Session::compile`]). Equivalent to
    /// `compile_job(&Job::with_variant(src, variant))`.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError`]; see [`Session::compile`].
    pub fn compile_variant(&self, src: &str, variant: Variant) -> Result<Compiled, CompileError> {
        self.compile_job(&Job::with_variant(src, variant))
    }

    /// Compiles one [`Job`] — the single entry point every other
    /// compile surface reduces to. Applies the job's configuration
    /// overrides on top of the session's (validating them exactly like
    /// [`SessionBuilder::build`]), computes the job's effective
    /// configuration fingerprint, and consults the artifact cache under
    /// that fingerprint, so overridden jobs never collide with plain
    /// ones and two jobs with equal effective configurations share
    /// entries.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::Config`] for a degenerate override (a
    /// zero resource budget or zero `opt.max_rounds`), otherwise
    /// exactly the errors of [`Session::compile`].
    pub fn compile_job(&self, job: &Job) -> Result<Compiled, CompileError> {
        let nonzero =
            |field: &'static str| Err(CompileError::Config(ConfigError::MustBeNonzero { field }));
        if let Some(limits) = &job.limits {
            if limits.max_source_bytes == 0 {
                return nonzero("job.limits.max_source_bytes");
            }
            if limits.max_lexp_nodes == 0 {
                return nonzero("job.limits.max_lexp_nodes");
            }
            if limits.max_cps_ops == 0 {
                return nonzero("job.limits.max_cps_ops");
            }
        }
        if let Some(opt) = &job.opt {
            if opt.max_rounds == 0 {
                return nonzero("job.opt.max_rounds");
            }
        }
        let variant = job.variant.unwrap_or(self.variant);
        let verify = job.verify_ir.unwrap_or(self.verify);
        let opt = job.opt.as_ref().unwrap_or(&self.opt);
        let limits = job.limits.as_ref().unwrap_or(&self.limits);
        self.compile_inner(
            &job.src,
            variant,
            verify,
            opt,
            limits,
            self.job_fingerprint(job),
        )
    }

    /// Runs a compiled program under the session's VM configuration
    /// (see [`Session::vm_config`]) — this is how heap ceilings and
    /// fault injection configured on the session reach the VM.
    pub fn run(&self, compiled: &Compiled) -> Outcome {
        compiled.run_with(&self.vm_config(compiled.variant))
    }

    /// Compiles and runs in one call, honoring the session's VM
    /// configuration — heap sizing and fault injection configured on
    /// the builder reach the run.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError`]; see [`Session::compile`].
    pub fn compile_and_run(&self, src: &str) -> Result<Outcome, CompileError> {
        Ok(self.run(&self.compile(src)?))
    }

    /// Runs a set of tenants to completion under a default
    /// (round-robin, uncapped) scheduler — the multi-tenant mirror of
    /// [`Session::compile_job`]: one entry point taking declarative
    /// [`TenantSpec`]s. Reports are indexed by spec order.
    ///
    /// # Errors
    ///
    /// Returns the first [`AdmissionError`] if a spec's heap/fuel
    /// quota oversubscribes the machine capacity (never happens with
    /// the default uncapped scheduler).
    pub fn run_tenants(
        &self,
        specs: &[TenantSpec],
    ) -> Result<(Vec<TenantReport>, SchedStats), AdmissionError> {
        let sched = SchedulerBuilder::new()
            .build()
            .expect("default scheduler config always validates");
        self.run_tenants_with(sched, specs)
    }

    /// Like [`Session::run_tenants`] but against a caller-configured
    /// scheduler (policy, quantum, capacity — see
    /// [`SchedulerBuilder`]). Admission is all-or-nothing: the first
    /// rejected spec fails the whole call, so a partial tenant set
    /// never runs silently.
    ///
    /// # Errors
    ///
    /// Returns the first [`AdmissionError`] raised by
    /// [`VmScheduler::admit`].
    pub fn run_tenants_with(
        &self,
        mut sched: VmScheduler,
        specs: &[TenantSpec],
    ) -> Result<(Vec<TenantReport>, SchedStats), AdmissionError> {
        for spec in specs {
            sched.admit(spec.clone())?;
        }
        Ok(sched.run_all())
    }

    /// Current artifact-cache counters (all zero, `enabled: false`,
    /// when the cache is off).
    pub fn cache_stats(&self) -> CacheStats {
        match &self.cache {
            Some(cache) => cache.lock().expect("artifact cache poisoned").stats(),
            None => CacheStats::default(),
        }
    }

    /// A per-shard snapshot of the shared LTY arena's counters
    /// (resident kinds, hits, misses, contention retries), or `None`
    /// for a `reuse_types(false)` session, whose compiles use private
    /// arenas. Unlike every per-compile statistic, these arena-wide
    /// totals aggregate *all* compiles so far, and the per-shard split
    /// of hits vs. retries depends on thread scheduling; the totals
    /// balance exactly at quiescence (`hits + misses == queries`,
    /// `misses == resident`). Surfaced as the `arena` object of
    /// `smlc --stats=json`; see `docs/OBSERVABILITY.md`.
    pub fn arena_stats(&self) -> Option<InternStats> {
        self.arena.as_ref().map(|a| a.stats())
    }

    /// Compiles a batch of jobs in parallel, returning results in job
    /// order. Duplicate jobs (same source, variant, and configuration)
    /// are compiled once and served to the remaining indices from the
    /// cache. Workers pull from a shared atomic queue (work stealing by
    /// idleness) and all intern through the session's shared LTY arena,
    /// so later jobs reuse every type earlier jobs interned — yet the
    /// result vector stays byte-identical to a serial cold run of the
    /// same jobs regardless of worker count, scheduling, or submission
    /// order (see the module docs' determinism contract).
    pub fn compile_batch(&self, jobs: &[Job]) -> Vec<Result<Compiled, CompileError>> {
        // Within-batch dedup only makes sense when hits can be served
        // from the cache; without it every job compiles independently.
        let class_of: Vec<usize> = if self.cache.is_some() {
            let mut first: HashMap<CacheKey, usize> = HashMap::new();
            jobs.iter()
                .enumerate()
                .map(|(i, job)| {
                    let key = self.key_of(
                        &job.src,
                        job.variant.unwrap_or(self.variant),
                        self.job_fingerprint(job),
                    );
                    *first.entry(key).or_insert(i)
                })
                .collect()
        } else {
            (0..jobs.len()).collect()
        };
        let unique: Vec<usize> = class_of
            .iter()
            .enumerate()
            .filter(|&(i, &c)| i == c)
            .map(|(i, _)| i)
            .collect();
        let mut compiled: Vec<Option<Result<Compiled, CompileError>>> =
            par_map(&unique, self.batch_workers, |_, &ji| {
                self.compile_job(&jobs[ji])
            })
            .into_iter()
            .map(Some)
            .collect();
        let mut slot_of: HashMap<usize, usize> =
            unique.iter().enumerate().map(|(s, &ji)| (ji, s)).collect();
        class_of
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                if let Some(slot) = slot_of.remove(&i) {
                    compiled[slot].take().expect("each unique slot taken once")
                } else {
                    // A duplicate of job `c`: served from the cache when
                    // the original succeeded (a hit by construction), or
                    // recompiled to reproduce its error.
                    self.compile_job(&jobs[c])
                }
            })
            .collect()
    }

    fn key_of(&self, src: &str, variant: Variant, fingerprint: u64) -> CacheKey {
        CacheKey {
            src_hash: hash_bytes(src.as_bytes()),
            src_len: src.len(),
            variant,
            fingerprint,
        }
    }

    /// A job's effective configuration fingerprint: the session's when
    /// nothing is overridden (the overwhelmingly common case, free),
    /// otherwise recomputed from the effective knobs — which makes an
    /// override whose values equal the session's hash identically.
    fn job_fingerprint(&self, job: &Job) -> u64 {
        if !job.has_overrides() {
            return self.fingerprint;
        }
        fingerprint_of(
            job.verify_ir.unwrap_or(self.verify),
            job.opt.as_ref().unwrap_or(&self.opt),
            job.limits.as_ref().unwrap_or(&self.limits),
            &self.vm,
            &self.fault,
        )
    }

    /// The compile path behind every public entry point: cache lookup,
    /// then a pipeline run through a fresh view on the shared LTY
    /// arena (resuming from component checkpoints when incremental
    /// elaboration is on), then cache insertion.
    fn compile_inner(
        &self,
        src: &str,
        variant: Variant,
        verify: VerifyIr,
        opt: &OptConfig,
        limits: &Limits,
        fingerprint: u64,
    ) -> Result<Compiled, CompileError> {
        let key = self.key_of(src, variant, fingerprint);
        if let Some(cache) = &self.cache {
            let hit = cache
                .lock()
                .expect("artifact cache poisoned")
                .lookup(&key, src);
            if let Some(artifact) = hit {
                return Ok(artifact);
            }
        }
        // Every compile gets its own interner view; with type reuse on
        // (and a hash-consing variant — all of them today) the views
        // share the session arena, otherwise each is a private cold
        // store. Views are cheap: the arena holds the actual kinds.
        let mode = variant.lambda_config().intern_mode;
        let view = match (&self.arena, mode) {
            (Some(arena), InternMode::HashCons) => LtyInterner::with_arena(Arc::clone(arena)),
            _ => LtyInterner::new(mode),
        };
        // Checkpoints are keyed by variant + effective fingerprint (MTD
        // variants mutate schemes in place; differently-limited jobs
        // may observe different elaborator behavior at the budget), so
        // the component cache never resumes across configurations.
        let incr = self.incr.as_ref().map(|cache| IncrCtx {
            cache,
            variant,
            fingerprint,
        });
        let result = compile_engine(src, variant, opt, limits, verify, view, incr.as_ref());
        match result {
            Ok(artifact) => {
                if let Some(cache) = &self.cache {
                    cache
                        .lock()
                        .expect("artifact cache poisoned")
                        .insert(key, src, &artifact);
                }
                Ok(artifact)
            }
            Err(e) => Err(e),
        }
    }
}

/// Order-preserving parallel map over a slice: `workers` scoped threads
/// (0 = available parallelism) pull indices from a shared atomic
/// counter and results are reassembled in input order, so the output is
/// deterministic for a deterministic `f`. With one worker (or one
/// item) this degrades to a plain in-order loop. This is the driver
/// under [`Session::compile_batch`] and the bench matrix's run phase.
///
/// # Panics
///
/// Propagates a panic from `f` after all workers finish.
pub fn par_map<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let workers = if workers == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    } else {
        workers
    }
    .min(n);
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let mut done: Vec<(usize, R)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        out.push((i, f(i, &items[i])));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("par_map worker panicked"))
            .collect()
    });
    done.sort_by_key(|(i, _)| *i);
    done.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order_and_covers_all_items() {
        let items: Vec<usize> = (0..100).collect();
        for workers in [0, 1, 3, 16] {
            let out = par_map(&items, workers, |i, &x| {
                assert_eq!(i, x);
                x * 2
            });
            assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn fingerprint_distinguishes_configs() {
        let base = fingerprint(&SessionBuilder::default());
        let tighter = fingerprint(&SessionBuilder::default().limits(Limits {
            max_source_bytes: 1,
            ..Limits::default()
        }));
        assert_ne!(base, tighter);
        let faulty = fingerprint(&SessionBuilder::default().fault_inject(FaultInject {
            fail_alloc_at: Some(1),
            gc_every_n_allocs: None,
            yield_every_n_slices: None,
        }));
        assert_ne!(base, faulty);
        // `Some(0)` is rejected by validation, but the fingerprint must
        // still not confuse `None` with any `Some` encoding.
        let zeroish = fingerprint(&SessionBuilder::default().fault_inject(FaultInject {
            fail_alloc_at: None,
            gc_every_n_allocs: None,
            yield_every_n_slices: None,
        }));
        assert_ne!(base, zeroish);
        let verified = fingerprint(&SessionBuilder::default().verify_ir(VerifyIr::Always));
        let unverified = fingerprint(&SessionBuilder::default().verify_ir(VerifyIr::Off));
        assert_ne!(verified, unverified);
        let threaded = fingerprint(&SessionBuilder::default().vm_config(VmConfig {
            dispatch: sml_vm::Dispatch::Threaded,
            ..VmConfig::default()
        }));
        let decode = fingerprint(&SessionBuilder::default().vm_config(VmConfig::default()));
        assert_ne!(threaded, decode, "dispatch engine must be fingerprinted");
    }

    #[test]
    fn builder_rejects_degenerate_knobs() {
        let e = Session::builder()
            .limits(Limits {
                max_lexp_nodes: 0,
                ..Limits::default()
            })
            .build()
            .unwrap_err();
        assert_eq!(e.field(), "limits.max_lexp_nodes");
        assert_eq!(
            e,
            ConfigError::MustBeNonzero {
                field: "limits.max_lexp_nodes"
            }
        );
        let e = Session::builder().cache_capacity(0).build().unwrap_err();
        assert_eq!(e.field(), "cache_capacity");
        assert!(Session::builder()
            .cache(false)
            .cache_capacity(0)
            .build()
            .is_ok());
        let e = Session::builder()
            .fault_inject(FaultInject {
                fail_alloc_at: Some(0),
                gc_every_n_allocs: None,
                yield_every_n_slices: None,
            })
            .build()
            .unwrap_err();
        assert_eq!(e.field(), "fault.fail_alloc_at");
        let vm = VmConfig {
            nursery_words: 1024,
            tenured_words: 512,
            ..VmConfig::default()
        };
        let e = Session::builder().vm_config(vm).build().unwrap_err();
        assert_eq!(
            e,
            ConfigError::OutOfRange {
                field: "vm.nursery_words",
                given: 1024,
                min: 1,
                max: 512,
            }
        );
        assert_eq!(e.allowed(), "1..=512");
        let vm = VmConfig {
            promote_after: 0,
            ..VmConfig::default()
        };
        let e = Session::builder().vm_config(vm).build().unwrap_err();
        assert_eq!(e.field(), "vm.promote_after");
    }

    #[test]
    fn builder_validates_pause_budget_and_yield_knobs() {
        // A nonzero budget below the fixed minor-pause floor could never
        // be honored; reject it up front. Zero (unbounded) and anything
        // at or above the floor are fine.
        let vm = VmConfig {
            max_pause_cycles: 100,
            ..VmConfig::default()
        };
        let e = Session::builder().vm_config(vm).build().unwrap_err();
        assert_eq!(
            e,
            ConfigError::OutOfRange {
                field: "vm.max_pause_cycles",
                given: 100,
                min: 256,
                max: u64::MAX,
            }
        );
        for ok in [0, 256, 1200, u64::MAX] {
            let vm = VmConfig {
                max_pause_cycles: ok,
                ..VmConfig::default()
            };
            assert!(
                Session::builder().vm_config(vm).build().is_ok(),
                "budget {ok} wrongly rejected"
            );
        }
        let e = Session::builder()
            .fault_inject(FaultInject {
                fail_alloc_at: None,
                gc_every_n_allocs: None,
                yield_every_n_slices: Some(0),
            })
            .build()
            .unwrap_err();
        assert_eq!(e.field(), "fault.yield_every_n_slices");
        assert!(Session::builder()
            .fault_inject(FaultInject {
                fail_alloc_at: None,
                gc_every_n_allocs: None,
                yield_every_n_slices: Some(1),
            })
            .build()
            .is_ok());
    }

    #[test]
    fn fingerprint_distinguishes_pause_budget_and_yield() {
        let base = fingerprint(&SessionBuilder::default());
        let budgeted = fingerprint(&SessionBuilder::default().vm_config(VmConfig {
            max_pause_cycles: 4096,
            ..VmConfig::default()
        }));
        assert_ne!(base, budgeted);
        let yielding = fingerprint(&SessionBuilder::default().fault_inject(FaultInject {
            fail_alloc_at: None,
            gc_every_n_allocs: None,
            yield_every_n_slices: Some(1),
        }));
        let quiet = fingerprint(&SessionBuilder::default().fault_inject(FaultInject {
            fail_alloc_at: None,
            gc_every_n_allocs: None,
            yield_every_n_slices: None,
        }));
        assert_ne!(yielding, quiet);
    }

    #[test]
    fn config_error_converts_into_compile_error() {
        let e = Session::builder().cache_capacity(0).build().unwrap_err();
        let ce: CompileError = e.into();
        assert_eq!(ce.kind(), "config");
        assert_eq!(ce.phase(), "config");
        assert!(ce.to_string().contains("cache_capacity"));
    }

    #[test]
    fn verify_ir_mode_is_recorded_and_counted() {
        let session = Session::builder()
            .verify_ir(VerifyIr::Always)
            .build()
            .unwrap();
        assert_eq!(session.verify_ir(), VerifyIr::Always);
        let c = session.compile("val _ = print (itos 42)").unwrap();
        assert_eq!(c.stats.verify.mode, VerifyIr::Always);
        assert_eq!(c.stats.verify.lexp_checks, 1);
        assert_eq!(c.stats.verify.bytecode_checks, 1);
        // Post-convert + at least one optimizer pass + closed program.
        assert!(c.stats.verify.cps_checks >= 3);

        let off = Session::builder().verify_ir(VerifyIr::Off).build().unwrap();
        let c_off = off.compile("val _ = print (itos 42)").unwrap();
        assert_eq!(c_off.stats.verify.total_checks(), 0);
        // Verification never rewrites: identical code either way.
        assert_eq!(format!("{}", c.machine), format!("{}", c_off.machine));
    }
}
