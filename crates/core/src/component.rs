//! Component-wise incremental compilation: SCC partitioning of the
//! top-level declaration dependency graph, content/chain hashing, and
//! the checkpoint cache that lets an edited program resume elaboration
//! from the deepest still-valid prefix.
//!
//! # Partitioning
//!
//! [`partition`] builds a dependency graph over a program's top-level
//! declarations from the purely syntactic name extraction in
//! [`sml_ast::dec_names`], collapses it with Tarjan's SCC algorithm,
//! fuses each `signature` declaration into the component of the
//! declaration that follows it (a signature is inert until something is
//! ascribed to it), and normalizes the result into *contiguous,
//! source-ordered* declaration ranges. Mutual recursion via `and`
//! (`fun f .. and g ..`, `datatype t .. and u ..`) is a single
//! declaration in the AST, so it lands in one component by
//! construction; Tarjan guards the invariant for any cyclic shape the
//! extractor may report.
//!
//! # Invalidation is content-based
//!
//! Each component is addressed by `(component_hash, deps_fingerprint,
//! variant, config_fingerprint)` where `component_hash` digests the
//! component's own pretty-printed declarations and `deps_fingerprint`
//! is the *chain hash* of everything before it (the hash of the
//! previous component's key material, recursively). Editing declaration
//! `k` therefore changes the chain for every component at or after `k`:
//! the cached checkpoints for the unedited prefix still match and are
//! reused, while the dirtied suffix re-elaborates. Because the key
//! covers the full prefix *content*, the (approximate) dependency graph
//! can never cause a stale checkpoint to be reused — it only determines
//! component granularity and the statistics reported in
//! [`ComponentStats`].
//!
//! # Checkpoints
//!
//! A [`Checkpoint`] is an [`ElabSession`] deep-forked at a component
//! boundary (see `sml_elab::incremental`). The fork is a *closed* graph
//! — no `Rc` inside it is reachable from outside — which is what makes
//! the `unsafe impl Send` sound: a checkpoint may move between worker
//! threads, and all access (lookup-fork, insertion, eviction) happens
//! under the [`ComponentCache`] mutex, so no two threads ever touch one
//! checkpoint's interior concurrently.

use crate::config::Variant;
use crate::fxhash::{hash_bytes, FxHasher};
use sml_ast::{self as ast, dec_names, print_dec, DecKind, Symbol};
use sml_elab::incremental::ElabSession;
use sml_elab::ElabResult;
use std::collections::{HashMap, HashSet};
use std::hash::Hasher;
use std::ops::Range;

/// Per-compile component statistics, reported as the `components`
/// object of the metrics schema (v3); see `docs/OBSERVABILITY.md`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ComponentStats {
    /// Whether the compile ran the incremental component path at all
    /// (false for `SessionBuilder::incremental(false)` sessions and for
    /// whole-program fallbacks).
    pub enabled: bool,
    /// Number of components the program partitioned into.
    pub scc_count: usize,
    /// Components actually (re-)elaborated this compile.
    pub recompiled: usize,
    /// Components served from cached checkpoints.
    pub cache_hits: usize,
    /// Length of the longest dependency chain in the component DAG.
    pub topo_depth: usize,
}

/// One component: a contiguous run of top-level declarations compiled
/// as a unit.
#[derive(Clone, Debug)]
pub struct Component {
    /// The half-open range of top-level declaration indices.
    pub decs: Range<usize>,
    /// Content hash of the component's own declarations (pretty-printed,
    /// so whitespace/comment edits do not dirty it).
    pub hash: u64,
    /// Chain hash of everything *before* this component — the
    /// `deps_fingerprint` of the component's cache key.
    pub chain_prev: u64,
    /// Chain hash *including* this component (the next one's
    /// `chain_prev`).
    pub chain: u64,
    /// Indices of earlier components this one references (deduplicated,
    /// ascending). Drives `topo_depth` and the partitioner tests; not
    /// used for invalidation (see the module docs).
    pub deps: Vec<usize>,
}

/// The partition of a program into ordered components.
#[derive(Clone, Debug, Default)]
pub struct ComponentGraph {
    /// Components in source (and hence topological) order.
    pub components: Vec<Component>,
    /// Length of the longest dependency chain (0 for an empty program).
    pub topo_depth: usize,
}

impl ComponentGraph {
    /// Number of components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// True for an empty program.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }
}

/// The value-level chain seed; any fixed odd constant works, this one is
/// the usual 64-bit golden ratio.
const CHAIN_SEED: u64 = 0x9E37_79B9_7F4A_7C15;

/// Dependency edges of each declaration on *earlier* declarations, from
/// the syntactic name extraction. Namespaced binder maps track the
/// latest declaration binding each name, so shadowing splits
/// components: a reference reaches the most recent binder only.
fn dec_edges(decs: &[ast::Dec]) -> Vec<Vec<usize>> {
    let names: Vec<_> = decs.iter().map(dec_names).collect();
    let mut latest_val: HashMap<Symbol, usize> = HashMap::new();
    let mut latest_ty: HashMap<Symbol, usize> = HashMap::new();
    let mut latest_str: HashMap<Symbol, usize> = HashMap::new();
    let mut latest_sig: HashMap<Symbol, usize> = HashMap::new();
    let mut latest_fct: HashMap<Symbol, usize> = HashMap::new();
    // Names currently bound as constructors (so a bare pattern name can
    // be recognized as a constructor *reference* rather than a binder).
    let mut cons: HashSet<Symbol> = HashSet::new();
    let mut edges: Vec<Vec<usize>> = Vec::with_capacity(decs.len());
    for (i, n) in names.iter().enumerate() {
        let mut dep: HashSet<usize> = HashSet::new();
        let reach = |map: &HashMap<Symbol, usize>, name: &Symbol| {
            map.get(name).copied().filter(|&j| j != i)
        };
        for name in &n.refs_vals {
            dep.extend(reach(&latest_val, name));
        }
        for name in &n.refs_tys {
            dep.extend(reach(&latest_ty, name));
        }
        for name in &n.refs_strs {
            dep.extend(reach(&latest_str, name));
        }
        for name in &n.refs_sigs {
            dep.extend(reach(&latest_sig, name));
        }
        for name in &n.refs_fcts {
            dep.extend(reach(&latest_fct, name));
        }
        for name in &n.pat_vars {
            if cons.contains(name) {
                dep.extend(reach(&latest_val, name));
            }
        }
        // Now install this declaration's binders (after resolving its
        // own references, so `val x = x + 1` reaches the previous x).
        for name in &n.binds_vals {
            // A bare pattern name that is a known constructor matches
            // rather than binds; it must not shadow the constructor.
            if n.pat_vars.contains(name) && cons.contains(name) && !n.binds_cons.contains(name) {
                continue;
            }
            latest_val.insert(*name, i);
            if n.binds_cons.contains(name) {
                cons.insert(*name);
            } else {
                cons.remove(name);
            }
        }
        for name in &n.binds_tys {
            latest_ty.insert(*name, i);
        }
        for name in &n.binds_strs {
            latest_str.insert(*name, i);
        }
        for name in &n.binds_sigs {
            latest_sig.insert(*name, i);
        }
        for name in &n.binds_fcts {
            latest_fct.insert(*name, i);
        }
        let mut dep: Vec<usize> = dep.into_iter().collect();
        dep.sort_unstable();
        edges.push(dep);
    }
    edges
}

/// Iterative Tarjan strongly-connected components. Returns each
/// declaration's SCC id; ids are arbitrary but equal within an SCC.
fn tarjan_sccs(edges: &[Vec<usize>]) -> Vec<usize> {
    let n = edges.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut scc_of = vec![usize::MAX; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut next_scc = 0usize;
    // Explicit DFS frames: (node, next child position).
    let mut frames: Vec<(usize, usize)> = Vec::new();
    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        frames.push((root, 0));
        while let Some(&mut (v, ref mut child)) = frames.last_mut() {
            if *child == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if let Some(&w) = edges[v].get(*child) {
                *child += 1;
                if index[w] == usize::MAX {
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        scc_of[w] = next_scc;
                        if w == v {
                            break;
                        }
                    }
                    next_scc += 1;
                }
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    low[parent] = low[parent].min(low[v]);
                }
            }
        }
    }
    scc_of
}

/// Partitions a program into ordered components; see the module docs.
pub fn partition(prog: &ast::Program) -> ComponentGraph {
    let decs = &prog.decs;
    let edges = dec_edges(decs);
    let scc_of = tarjan_sccs(&edges);

    // Group declarations by SCC, then fuse each `signature` declaration
    // forward into the immediately following declaration's group.
    let mut group_of: Vec<usize> = scc_of.clone();
    for i in 0..decs.len() {
        if matches!(decs[i].kind, DecKind::Signature(_)) && i + 1 < decs.len() {
            let from = group_of[i];
            let to = group_of[i + 1];
            for g in group_of.iter_mut() {
                if *g == from {
                    *g = to;
                }
            }
        }
    }

    // Normalize to contiguous source-ordered ranges: every group spans
    // the interval [first member, last member]; interleaving groups have
    // overlapping intervals, so a standard interval-merge sweep yields
    // disjoint, contiguous, source-ordered components covering all decs.
    let mut span_of: HashMap<usize, (usize, usize)> = HashMap::new();
    for (i, &g) in group_of.iter().enumerate() {
        let span = span_of.entry(g).or_insert((i, i));
        span.1 = i;
    }
    let mut intervals: Vec<(usize, usize)> = span_of.values().copied().collect();
    intervals.sort_unstable();
    let mut ranges: Vec<Range<usize>> = Vec::with_capacity(intervals.len());
    for (lo, hi) in intervals {
        match ranges.last_mut() {
            Some(last) if last.end > lo => last.end = last.end.max(hi + 1),
            _ => ranges.push(lo..hi + 1),
        }
    }

    // Component-level dependency edges and hashes.
    let mut comp_of_dec = vec![0usize; decs.len()];
    for (c, r) in ranges.iter().enumerate() {
        for d in r.clone() {
            comp_of_dec[d] = c;
        }
    }
    let mut components: Vec<Component> = Vec::with_capacity(ranges.len());
    let mut chain = CHAIN_SEED;
    let mut depth: Vec<usize> = Vec::with_capacity(ranges.len());
    let mut topo_depth = 0usize;
    for (c, r) in ranges.iter().enumerate() {
        let mut h = FxHasher::default();
        h.write_usize(r.len());
        for d in r.clone() {
            let text = print_dec(&decs[d]);
            h.write_u64(hash_bytes(text.as_bytes()));
            h.write_usize(text.len());
        }
        let hash = h.finish();
        let mut deps: HashSet<usize> = HashSet::new();
        for d in r.clone() {
            for &e in &edges[d] {
                let dc = comp_of_dec[e];
                if dc != c {
                    deps.insert(dc);
                }
            }
        }
        let mut deps: Vec<usize> = deps.into_iter().collect();
        deps.sort_unstable();
        let d = 1 + deps.iter().map(|&p| depth[p]).max().unwrap_or(0);
        depth.push(d);
        topo_depth = topo_depth.max(d);
        let chain_prev = chain;
        let mut ch = FxHasher::default();
        ch.write_u64(chain_prev);
        ch.write_u64(hash);
        chain = ch.finish();
        components.push(Component {
            decs: r.clone(),
            hash,
            chain_prev,
            chain,
            deps,
        });
    }
    ComponentGraph {
        components,
        topo_depth,
    }
}

// ---------------------------------------------------------------------
// Checkpoint cache
// ---------------------------------------------------------------------

/// An elaboration snapshot at a component boundary.
///
/// The wrapped session is a deep fork ([`ElabSession::fork`]): a closed
/// graph whose `Rc`/`RefCell` cells are reachable only through this
/// value. It is therefore sound to move between threads as long as it
/// is never *shared* between threads — which the [`ComponentCache`]
/// mutex enforces: every fork-out and drop happens under the lock.
struct Checkpoint(ElabSession);

// SAFETY: see the `Checkpoint` docs — the graph is closed by
// construction (the fork walker rebuilds every `Rc`), and all access is
// serialized by the owning `Mutex<ComponentCache>`.
unsafe impl Send for Checkpoint {}

/// Cache key of one component checkpoint: own content, full prefix
/// content, variant, and session-configuration fingerprint.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub(crate) struct ComponentKey {
    /// The component's own content hash.
    pub comp_hash: u64,
    /// Chain hash of the whole prefix before it (`deps_fingerprint`).
    pub chain_prev: u64,
    /// Compiler variant.
    pub variant: Variant,
    /// Session/job configuration fingerprint.
    pub fingerprint: u64,
}

struct CacheSlot {
    checkpoint: Checkpoint,
    last_used: u64,
}

/// An LRU cache of elaboration checkpoints, keyed per component.
pub(crate) struct ComponentCache {
    capacity: usize,
    tick: u64,
    map: HashMap<ComponentKey, CacheSlot>,
    pub(crate) hits: u64,
    pub(crate) misses: u64,
}

impl ComponentCache {
    pub(crate) fn new(capacity: usize) -> ComponentCache {
        ComponentCache {
            capacity,
            tick: 0,
            map: HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    fn fork_out(&mut self, key: &ComponentKey) -> Option<ElabSession> {
        self.tick += 1;
        let tick = self.tick;
        let slot = self.map.get_mut(key)?;
        slot.last_used = tick;
        Some(slot.checkpoint.0.fork())
    }

    fn insert_if_absent(&mut self, key: ComponentKey, session: &ElabSession) {
        self.tick += 1;
        if self.map.contains_key(&key) {
            return;
        }
        if self.map.len() >= self.capacity {
            if let Some(&victim) = self
                .map
                .iter()
                .min_by_key(|(_, s)| s.last_used)
                .map(|(k, _)| k)
            {
                self.map.remove(&victim);
            }
        }
        self.map.insert(
            key,
            CacheSlot {
                checkpoint: Checkpoint(session.fork()),
                last_used: self.tick,
            },
        );
    }

    /// Resident checkpoints (capacity-bound enforcement is visible to
    /// tests through this).
    #[cfg(test)]
    pub(crate) fn entries(&self) -> usize {
        self.map.len()
    }
}

/// Everything the incremental elaboration path needs from the session.
pub(crate) struct IncrCtx<'a> {
    pub cache: &'a std::sync::Mutex<ComponentCache>,
    pub variant: Variant,
    pub fingerprint: u64,
}

impl IncrCtx<'_> {
    fn key(&self, c: &Component) -> ComponentKey {
        ComponentKey {
            comp_hash: c.hash,
            chain_prev: c.chain_prev,
            variant: self.variant,
            fingerprint: self.fingerprint,
        }
    }
}

/// Elaborates a program component by component, resuming from the
/// deepest cached checkpoint whose key still matches and storing a new
/// checkpoint at every component boundary it (re-)elaborates.
///
/// The typed program this returns is isomorphic to what
/// `sml_elab::elaborate` produces on the same source — forks preserve
/// cell identity-structure and replay re-runs the identical per-
/// declaration elaboration — so everything downstream (translation,
/// CPS, codegen) produces byte-identical artifacts. The differential
/// tests in `tests/components.rs` and the `incr_bench` gate pin that.
pub(crate) fn elaborate_incremental(
    prog: &ast::Program,
    ctx: &IncrCtx<'_>,
) -> ElabResult<(sml_elab::Elaboration, ComponentStats)> {
    let graph = partition(prog);
    let n = graph.components.len();
    // Deepest prefix checkpoint whose key matches, forked under the
    // cache lock (checkpoint interiors must never be touched
    // concurrently).
    let (mut session, start) = {
        let mut cache = ctx.cache.lock().expect("component cache poisoned");
        let found = (0..n).rev().find_map(|i| {
            cache
                .fork_out(&ctx.key(&graph.components[i]))
                .map(|s| (s, i + 1))
        });
        let (session, start) = found.unwrap_or_else(|| (ElabSession::new(), 0));
        cache.hits += start as u64;
        cache.misses += (n - start) as u64;
        (session, start)
    };
    for comp in &graph.components[start..] {
        for dec in &prog.decs[comp.decs.clone()] {
            session.elab_dec(dec)?;
        }
        // The fork for storage happens outside the lock (the working
        // session is thread-local); only insertion is serialized.
        ctx.cache
            .lock()
            .expect("component cache poisoned")
            .insert_if_absent(ctx.key(comp), &session);
    }
    let stats = ComponentStats {
        enabled: true,
        scc_count: n,
        recompiled: n - start,
        cache_hits: start,
        topo_depth: graph.topo_depth,
    };
    Ok((session.finish()?, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    fn graph(src: &str) -> ComponentGraph {
        partition(&sml_ast::parse(src).unwrap())
    }

    #[test]
    fn independent_decs_are_separate_components() {
        let g = graph("val a = 1 val b = 2 val c = a + 1");
        assert_eq!(g.len(), 3);
        assert_eq!(g.components[2].deps, vec![0]);
        assert_eq!(g.topo_depth, 2);
    }

    #[test]
    fn chain_hash_distinguishes_prefixes() {
        let g1 = graph("val a = 1 val b = a");
        let g2 = graph("val a = 2 val b = a");
        assert_ne!(
            g1.components[1].chain_prev, g2.components[1].chain_prev,
            "an edited prefix must dirty downstream keys"
        );
        assert_eq!(
            g1.components[1].hash, g2.components[1].hash,
            "the unedited dec's own hash is unchanged"
        );
    }

    #[test]
    fn whitespace_edits_do_not_dirty() {
        let g1 = graph("val a = 1   val b = a");
        let g2 = graph("val  a  =  1\nval b = a");
        assert_eq!(g1.components[0].hash, g2.components[0].hash);
        assert_eq!(g1.components[1].chain, g2.components[1].chain);
    }

    #[test]
    fn signature_fuses_with_following_structure() {
        let g = graph(
            "val unrelated = 0 \
             signature SIG = sig val x : int end \
             structure S : SIG = struct val x = 1 end \
             val y = S.x",
        );
        assert_eq!(g.len(), 3, "sig + structure must form one component");
        assert_eq!(g.components[1].decs, 1..3);
        assert_eq!(g.components[2].deps, vec![1]);
    }

    #[test]
    fn incremental_replay_caches_prefix() {
        let cache = Mutex::new(ComponentCache::new(32));
        let ctx = IncrCtx {
            cache: &cache,
            variant: Variant::Ffb,
            fingerprint: 7,
        };
        let p1 = sml_ast::parse("val a = 1 val b = a + 1 val c = b + 1").unwrap();
        let (_, s1) = elaborate_incremental(&p1, &ctx).unwrap();
        assert_eq!((s1.scc_count, s1.recompiled, s1.cache_hits), (3, 3, 0));
        // Edit only the last declaration: both predecessors replay from
        // cache.
        let p2 = sml_ast::parse("val a = 1 val b = a + 1 val c = b + 2").unwrap();
        let (_, s2) = elaborate_incremental(&p2, &ctx).unwrap();
        assert_eq!((s2.scc_count, s2.recompiled, s2.cache_hits), (3, 1, 2));
        // Edit the middle: the suffix from there is dirty.
        let p3 = sml_ast::parse("val a = 1 val b = a + 10 val c = b + 2").unwrap();
        let (_, s3) = elaborate_incremental(&p3, &ctx).unwrap();
        assert_eq!((s3.scc_count, s3.recompiled, s3.cache_hits), (3, 2, 1));
    }

    #[test]
    fn checkpoint_cache_is_capacity_bounded() {
        let cache = Mutex::new(ComponentCache::new(4));
        let ctx = IncrCtx {
            cache: &cache,
            variant: Variant::Ffb,
            fingerprint: 7,
        };
        // Each distinct program inserts three checkpoints; the LRU must
        // hold the line at its capacity.
        for k in 0..8 {
            let src = format!("val a = {k} val b = a + 1 val c = b + 1");
            let prog = sml_ast::parse(&src).unwrap();
            elaborate_incremental(&prog, &ctx).unwrap();
        }
        assert_eq!(cache.lock().unwrap().entries(), 4);
    }

    #[test]
    fn different_fingerprints_do_not_share_checkpoints() {
        let cache = Mutex::new(ComponentCache::new(32));
        let prog = sml_ast::parse("val a = 1 val b = a").unwrap();
        let ctx1 = IncrCtx {
            cache: &cache,
            variant: Variant::Ffb,
            fingerprint: 1,
        };
        let ctx2 = IncrCtx {
            cache: &cache,
            variant: Variant::Ffb,
            fingerprint: 2,
        };
        elaborate_incremental(&prog, &ctx1).unwrap();
        let (_, s) = elaborate_incremental(&prog, &ctx2).unwrap();
        assert_eq!(s.cache_hits, 0);
    }
}
