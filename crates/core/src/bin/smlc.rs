//! The `smlc` command-line compiler driver.
//!
//! ```sh
//! smlc run program.sml              # compile with sml.ffb and run
//! smlc compile program.sml          # compile only (type-check + codegen)
//! smlc bench program.sml            # compile and run under all six variants
//! smlc serve --socket /tmp/smlc.sock   # start a compile server
//! smlc client --socket /tmp/smlc.sock --run program.sml
//! smlc program.sml                  # no subcommand = `run` (legacy spelling)
//! smlc --variant nrp program.sml    # pick a compiler variant
//! smlc --stats program.sml          # print compile/run statistics
//! smlc --stats=json program.sml     # emit structured metrics as JSON
//! smlc --all program.sml            # run under all six variants
//! smlc --batch a.sml b.sml c.sml    # compile a batch in parallel, run in order
//! smlc -e 'val _ = print "hi\n"'    # compile a command-line snippet
//! smlc --emit asm program.sml       # disassemble instead of running
//! smlc run --dispatch=threaded p.sml   # pre-decoded threaded dispatch engine
//! smlc --verify-ir always prog.sml  # re-check every IR behind each phase
//! ```
//!
//! The first argument picks a subcommand — `compile`, `run`, `bench`,
//! `serve`, or `client`; anything else falls through to the legacy
//! flag-only spelling, which behaves exactly like `run` (every old
//! invocation keeps working, with the same exit codes and the same
//! `--stats=json` schema).
//!
//! Every compile goes through one [`Session`]: `--batch` fans the
//! file×variant job list out over [`Session::compile_batch`]'s parallel
//! driver (results are reported in input order regardless of
//! scheduling), and repeated sources are served from the session's
//! artifact cache. `serve` keeps that session resident and shares it
//! between every client of a stdio or Unix-socket server speaking
//! newline-delimited JSON (`docs/SERVER.md`); `client` is the matching
//! wire client.
//!
//! `--stats=json` prints one JSON document per compile on stdout (after
//! the program's own output) following the schema in
//! `docs/OBSERVABILITY.md` — the same schema the bench harness writes
//! into `BENCH_*.json` trajectory files — including the session's
//! artifact-cache counters under `"cache"`.

use smlc::{
    error_json, CompileError, CompileServer, Dispatch, Job, Json, Metrics, SchedPolicy,
    SchedulerBuilder, Session, TenantSpec, Variant, VerifyIr, VmResult,
};
use std::io::{BufRead, BufReader, Write};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Exit codes, documented in `docs/ROBUSTNESS.md`: syntax errors (and
/// usage mistakes) exit 2, type errors 3, exceeded resource budgets and
/// rejected configuration 4, abnormal VM terminations 5, and contained
/// internal compiler errors (including IR-verifier rejections) 101.
const EXIT_VM_TRAP: u8 = 5;

/// How much statistics reporting the user asked for.
#[derive(Clone, Copy, PartialEq, Eq)]
enum StatsMode {
    Off,
    Human,
    Json,
}

/// What the driver subcommand does after compiling.
#[derive(Clone, Copy, PartialEq, Eq)]
enum DriveMode {
    /// `smlc compile`: stop after code generation.
    CompileOnly,
    /// `smlc run` (and the legacy flag-only spelling): compile and run.
    Run,
    /// `smlc bench`: `run` forced across all six variants.
    Bench,
}

fn usage() -> ! {
    eprintln!(
        "usage: smlc [compile|run|bench] [--variant nrp|fag|rep|mtd|ffb|fp3] \
         [--verify-ir off|debug|always] [--stats[=json]] [--all] [--batch] [--emit asm] \
         [--tenants=N] [--policy=round-robin|priority|deadline] [--deadline=CYCLES] \
         [--dispatch=decode|threaded] (<file.sml>... | -e <source>)\n\
         \x20      smlc serve [--socket <path>] [--workers=N] [--variant V] [--verify-ir M]\n\
         \x20      smlc client --socket <path> [--run] [--stats] [--variant V] \
         (<file.sml>... | -e <source>)"
    );
    std::process::exit(2)
}

fn parse_variant(s: &str) -> Variant {
    match s.parse() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            usage()
        }
    }
}

/// One source text plus the name we report it under.
struct Input {
    label: String,
    src: String,
}

/// Reads positional inputs shared by every subcommand (`<file>` or
/// `-e <source>`).
fn read_input(inputs: &mut Vec<Input>, path: &str) -> Result<(), ExitCode> {
    match std::fs::read_to_string(path) {
        Ok(src) => {
            inputs.push(Input {
                label: path.to_owned(),
                src,
            });
            Ok(())
        }
        Err(e) => {
            eprintln!("smlc: cannot read {path}: {e}");
            Err(ExitCode::from(2))
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("compile") => drive(&args[1..], DriveMode::CompileOnly),
        Some("run") => drive(&args[1..], DriveMode::Run),
        Some("bench") => drive(&args[1..], DriveMode::Bench),
        Some("serve") => serve(&args[1..]),
        Some("client") => client(&args[1..]),
        // Legacy flag-only spelling: identical to `run`.
        _ => drive(&args, DriveMode::Run),
    }
}

/// The `compile` / `run` / `bench` driver (and the legacy no-subcommand
/// path).
fn drive(args: &[String], mode: DriveMode) -> ExitCode {
    let mut args = args.iter();
    let mut variant = Variant::Ffb;
    let mut verify: Option<VerifyIr> = None;
    let mut stats = StatsMode::Off;
    let mut all = mode == DriveMode::Bench;
    let mut batch = false;
    let mut emit_asm = false;
    let mut tenants: usize = 1;
    let mut policy = SchedPolicy::RoundRobin;
    let mut deadline: Option<u64> = None;
    let mut dispatch = Dispatch::default();
    let mut inputs: Vec<Input> = Vec::new();

    while let Some(a) = args.next() {
        match a.as_str() {
            "--variant" | "-v" => {
                let Some(v) = args.next() else { usage() };
                variant = parse_variant(v);
            }
            "--verify-ir" => {
                let Some(m) = args.next() else { usage() };
                match m.parse() {
                    Ok(m) => verify = Some(m),
                    Err(e) => {
                        eprintln!("{e}");
                        usage()
                    }
                }
            }
            "--stats" | "-s" => stats = StatsMode::Human,
            "--stats=json" => stats = StatsMode::Json,
            s if s.starts_with("--stats=") => {
                eprintln!(
                    "unknown stats format `{}` (only `json`)",
                    &s["--stats=".len()..]
                );
                usage()
            }
            s if s.starts_with("--tenants=") => match s["--tenants=".len()..].parse::<usize>() {
                Ok(n) if (1..=4096).contains(&n) => tenants = n,
                _ => {
                    eprintln!("--tenants takes a count between 1 and 4096");
                    usage()
                }
            },
            s if s.starts_with("--policy=") => match s["--policy=".len()..].parse() {
                Ok(p) => policy = p,
                Err(e) => {
                    eprintln!("{e}");
                    usage()
                }
            },
            s if s.starts_with("--deadline=") => match s["--deadline=".len()..].parse::<u64>() {
                Ok(n) if n > 0 => deadline = Some(n),
                _ => {
                    eprintln!("--deadline takes a nonzero cycle count");
                    usage()
                }
            },
            s if s.starts_with("--dispatch=") => match s["--dispatch=".len()..].parse() {
                Ok(d) => dispatch = d,
                Err(e) => {
                    eprintln!("{e}");
                    usage()
                }
            },
            "--all" | "-a" => all = true,
            "--batch" | "-b" => batch = true,
            "--emit" => {
                let Some(what) = args.next() else { usage() };
                match what.as_str() {
                    "asm" => emit_asm = true,
                    other => {
                        eprintln!("unknown --emit target `{other}` (only `asm`)");
                        usage()
                    }
                }
            }
            "-e" => {
                let Some(src) = args.next() else { usage() };
                inputs.push(Input {
                    label: "<cmdline>".to_owned(),
                    src: src.clone(),
                });
            }
            "--help" | "-h" => usage(),
            path => {
                if let Err(code) = read_input(&mut inputs, path) {
                    return code;
                }
            }
        }
    }
    if inputs.is_empty() {
        usage()
    }
    if !batch && inputs.len() > 1 {
        // Historic single-source behavior: the last input wins.
        inputs.drain(..inputs.len() - 1);
    }

    let variants: Vec<Variant> = if all {
        Variant::ALL.to_vec()
    } else {
        vec![variant]
    };

    let mut builder = Session::builder().variant(variant);
    if let Some(mode) = verify {
        builder = builder.verify_ir(mode);
    }
    let session = match builder.build() {
        Ok(s) => s,
        Err(e) => {
            let e: CompileError = e.into();
            eprintln!("smlc: {e}");
            if stats == StatsMode::Json {
                println!("{}", error_json(variant, &e).to_string_pretty());
            }
            return ExitCode::from(e.exit_code());
        }
    };
    let jobs: Vec<Job> = inputs
        .iter()
        .flat_map(|input| {
            variants
                .iter()
                .map(|&v| Job::with_variant(input.src.clone(), v))
        })
        .collect();
    let results = session.compile_batch(&jobs);

    let mut job_ix = 0;
    for input in &inputs {
        if batch && inputs.len() > 1 {
            println!("=== {} ===", input.label);
        }
        for &v in &variants {
            if all {
                println!("== {} ==", v.name());
            }
            let result = &results[job_ix];
            job_ix += 1;
            let compiled = match result {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("smlc: {e}");
                    // Structured output is emitted on failure paths too, so
                    // JSON consumers never have to parse stderr.
                    if stats == StatsMode::Json {
                        println!("{}", error_json(v, e).to_string_pretty());
                    }
                    return ExitCode::from(e.exit_code());
                }
            };
            for w in &compiled.stats.warnings {
                eprintln!("smlc: {w}");
            }
            if emit_asm {
                print!("{}", compiled.machine);
                continue;
            }
            if mode == DriveMode::CompileOnly {
                match stats {
                    StatsMode::Off => {}
                    StatsMode::Human => eprintln!(
                        "[{}] code {} instrs | compile {:?} | components {}/{} recompiled | \
                         cache {}",
                        v.name(),
                        compiled.stats.code_size,
                        compiled.stats.compile_time,
                        compiled.stats.components.recompiled,
                        compiled.stats.components.scc_count,
                        if compiled.from_cache { "hit" } else { "miss" },
                    ),
                    StatsMode::Json => {
                        let m = Metrics::of_compile(compiled)
                            .with_cache(session.cache_stats())
                            .with_arena(session.arena_stats());
                        println!("{}", m.to_json().to_string_pretty());
                    }
                }
                continue;
            }
            // With --tenants=N the compiled program runs as N
            // identically configured tenants sharing one program
            // handle under the policy-driven VM scheduler; tenant 0's
            // outcome (identical to a solo run) is reported and the
            // scheduler counters land in the metrics document under
            // "sched".
            let mut cfg = session.vm_config(compiled.variant);
            cfg.dispatch = dispatch;
            let (outcome, sched) = if tenants > 1 {
                let program = Arc::new(compiled.machine.clone());
                let mut spec = TenantSpec::new(program, &cfg);
                if let Some(d) = deadline {
                    spec = spec.deadline_cycles(d);
                }
                let specs = vec![spec; tenants];
                let sched = SchedulerBuilder::new()
                    .quantum(10_000)
                    .policy(policy)
                    .build()
                    .expect("the CLI scheduler config always validates");
                match session.run_tenants_with(sched, &specs) {
                    Ok((mut reports, stats)) => {
                        let first = reports.swap_remove(0);
                        (
                            smlc::Outcome {
                                result: first.result,
                                stats: first.stats,
                                output: first.output,
                                dispatch: first.dispatch,
                            },
                            Some(stats),
                        )
                    }
                    Err(e) => {
                        // Rejected configuration: same exit code as
                        // exceeded resource budgets (docs/ROBUSTNESS.md).
                        eprintln!("smlc: {e}");
                        return ExitCode::from(4);
                    }
                }
            } else {
                (compiled.run_with(&cfg), None)
            };
            print!("{}", outcome.output);
            // Abnormal terminations still report statistics below (the
            // metrics schema carries the result tag), but fail the process.
            let failed = match &outcome.result {
                VmResult::Value(_) => false,
                VmResult::Uncaught(name) => {
                    eprintln!("smlc: uncaught exception {name}");
                    true
                }
                VmResult::OutOfFuel => {
                    eprintln!("smlc: cycle budget exhausted");
                    true
                }
                VmResult::HeapExhausted => {
                    eprintln!("smlc: heap exhausted");
                    true
                }
                VmResult::Fault(why) => {
                    eprintln!("smlc: vm fault: {why}");
                    true
                }
            };
            match stats {
                StatsMode::Off => {}
                StatsMode::Human => eprintln!(
                    "[{}] code {} instrs | compile {:?} | cycles {} | instrs {} | \
                     alloc {} words | gcs {} ({} minor, {} major) | cache {}",
                    v.name(),
                    compiled.stats.code_size,
                    compiled.stats.compile_time,
                    outcome.stats.cycles,
                    outcome.stats.instrs,
                    outcome.stats.alloc_words,
                    outcome.stats.n_gcs,
                    outcome.stats.n_minor_gcs,
                    outcome.stats.n_major_gcs,
                    if compiled.from_cache { "hit" } else { "miss" },
                ),
                StatsMode::Json => {
                    let mut m = Metrics::of_run(compiled, &outcome)
                        .with_cache(session.cache_stats())
                        .with_arena(session.arena_stats());
                    if let Some(sched) = sched {
                        m = m.with_sched(sched);
                    }
                    println!("{}", m.to_json().to_string_pretty());
                }
            }
            if failed {
                return ExitCode::from(EXIT_VM_TRAP);
            }
        }
    }
    ExitCode::SUCCESS
}

/// Raised by the SIGTERM handler; polled by the Unix-socket accept
/// loop so `kill -TERM` drains in-flight jobs and flushes final stats
/// instead of killing the process mid-compile.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_sigterm(_sig: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Installs the SIGTERM handler through libc's `signal` (declared by
/// hand — the build environment has no `libc` crate; the symbol is
/// always present because std links libc on this platform).
fn install_sigterm_handler() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_sigterm as extern "C" fn(i32) as usize);
    }
}

/// The `serve` subcommand: a newline-delimited-JSON compile server on
/// stdio (default) or a Unix socket (`--socket`).
fn serve(args: &[String]) -> ExitCode {
    let mut args = args.iter();
    let mut variant = Variant::Ffb;
    let mut verify: Option<VerifyIr> = None;
    let mut socket: Option<String> = None;
    let mut workers: usize = 0;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--variant" | "-v" => {
                let Some(v) = args.next() else { usage() };
                variant = parse_variant(v);
            }
            "--verify-ir" => {
                let Some(m) = args.next() else { usage() };
                match m.parse() {
                    Ok(m) => verify = Some(m),
                    Err(e) => {
                        eprintln!("{e}");
                        usage()
                    }
                }
            }
            "--socket" => {
                let Some(p) = args.next() else { usage() };
                socket = Some(p.clone());
            }
            s if s.starts_with("--workers=") => match s["--workers=".len()..].parse::<usize>() {
                Ok(n) => workers = n,
                Err(_) => {
                    eprintln!("--workers takes a count");
                    usage()
                }
            },
            _ => usage(),
        }
    }
    let mut builder = Session::builder().variant(variant);
    if let Some(mode) = verify {
        builder = builder.verify_ir(mode);
    }
    let session = match builder.build() {
        Ok(s) => s,
        Err(e) => {
            let e: CompileError = e.into();
            eprintln!("smlc: {e}");
            return ExitCode::from(e.exit_code());
        }
    };
    let server = CompileServer::new(session).workers(workers);
    install_sigterm_handler();
    let stats = match socket {
        Some(path) => {
            let path = std::path::PathBuf::from(path);
            match server.serve_unix(&path, &SHUTDOWN) {
                Ok(stats) => stats,
                Err(e) => {
                    eprintln!("smlc: serve: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        None => server.serve_stdio(),
    };
    // The final stats flush promised by the shutdown contract: one JSON
    // line on stderr (stdout belongs to the wire protocol).
    eprintln!(
        "{}",
        Json::obj()
            .field(
                "server",
                Json::obj()
                    .field("jobs", stats.jobs)
                    .field("clients", stats.clients)
                    .field("queue_depth_peak", stats.queue_depth_peak),
            )
            .to_string_compact()
    );
    ExitCode::SUCCESS
}

/// The `client` subcommand: sends one compile request per input to a
/// running `smlc serve --socket` and reports the responses.
fn client(args: &[String]) -> ExitCode {
    let mut args = args.iter();
    let mut socket: Option<String> = None;
    let mut variant: Option<Variant> = None;
    let mut run = false;
    let mut stats = false;
    let mut inputs: Vec<Input> = Vec::new();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--socket" => {
                let Some(p) = args.next() else { usage() };
                socket = Some(p.clone());
            }
            "--variant" | "-v" => {
                let Some(v) = args.next() else { usage() };
                variant = Some(parse_variant(v));
            }
            "--run" => run = true,
            "--stats" => stats = true,
            "-e" => {
                let Some(src) = args.next() else { usage() };
                inputs.push(Input {
                    label: "<cmdline>".to_owned(),
                    src: src.clone(),
                });
            }
            path => {
                if let Err(code) = read_input(&mut inputs, path) {
                    return code;
                }
            }
        }
    }
    let Some(socket) = socket else {
        eprintln!("smlc: client requires --socket <path>");
        usage()
    };
    if inputs.is_empty() {
        usage()
    }
    let stream = match std::os::unix::net::UnixStream::connect(&socket) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("smlc: cannot connect to {socket}: {e}");
            return ExitCode::from(2);
        }
    };
    let mut writer = &stream;
    for (i, input) in inputs.iter().enumerate() {
        let mut req = Json::obj()
            .field("id", i as i64)
            .field("op", "compile")
            .field("src", input.src.as_str())
            .field("run", run)
            .field("stats", stats);
        if let Some(v) = variant {
            req = req.field("variant", v.name());
        }
        if writeln!(writer, "{}", req.to_string_compact()).is_err() {
            eprintln!("smlc: server went away");
            return ExitCode::from(2);
        }
    }
    // Half-close so the server sees EOF after the last request; the
    // responses still flow back on the read half, in request order.
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let reader = BufReader::new(&stream);
    let mut code = ExitCode::SUCCESS;
    let mut seen = 0usize;
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let resp = match Json::parse(&line) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("smlc: bad response: {e}");
                return ExitCode::from(2);
            }
        };
        let id = resp.get("id").and_then(Json::as_i64).unwrap_or(0) as usize;
        let label = inputs.get(id).map_or("<unknown>", |i| i.label.as_str());
        if resp.get("ok").and_then(Json::as_bool) == Some(true) {
            if let Some(output) = resp.get("output").and_then(Json::as_str) {
                print!("{output}");
            }
            if let Some(result) = resp.get("result").and_then(Json::as_str) {
                if result != "value" {
                    eprintln!("smlc: {label}: abnormal termination: {result}");
                    code = ExitCode::from(EXIT_VM_TRAP);
                }
            }
            if stats {
                if let Some(metrics) = resp.get("metrics") {
                    println!("{}", metrics.to_string_pretty());
                }
            }
        } else {
            let msg = resp
                .get("error")
                .and_then(|e| e.get("message"))
                .and_then(Json::as_str)
                .unwrap_or("unknown error");
            eprintln!("smlc: {label}: {msg}");
            let exit = resp.get("exit_code").and_then(Json::as_i64).unwrap_or(2);
            code = ExitCode::from(u8::try_from(exit).unwrap_or(2));
        }
        seen += 1;
        if seen == inputs.len() {
            break;
        }
    }
    if seen < inputs.len() {
        eprintln!(
            "smlc: server closed after {seen} of {} responses",
            inputs.len()
        );
        return ExitCode::from(2);
    }
    code
}
