//! The `smlc` command-line compiler driver.
//!
//! ```sh
//! smlc program.sml                  # compile with sml.ffb and run
//! smlc --variant nrp program.sml    # pick a compiler variant
//! smlc --stats program.sml          # print compile/run statistics
//! smlc --stats=json program.sml     # emit structured metrics as JSON
//! smlc --all program.sml            # run under all six variants
//! smlc --batch a.sml b.sml c.sml    # compile a batch in parallel, run in order
//! smlc -e 'val _ = print "hi\n"'    # compile a command-line snippet
//! smlc --emit asm program.sml       # disassemble instead of running
//! smlc --verify-ir always prog.sml  # re-check every IR behind each phase
//! ```
//!
//! Every compile goes through one [`Session`]: `--batch` fans the
//! file×variant job list out over [`Session::compile_batch`]'s parallel
//! driver (results are reported in input order regardless of
//! scheduling), and repeated sources are served from the session's
//! artifact cache.
//!
//! `--stats=json` prints one JSON document per compile on stdout (after
//! the program's own output) following the schema in
//! `docs/OBSERVABILITY.md` — the same schema the bench harness writes
//! into `BENCH_*.json` trajectory files — including the session's
//! artifact-cache counters under `"cache"`.

use sml_vm::VmScheduler;
use smlc::{error_json, CompileError, Job, Metrics, Session, Variant, VerifyIr, VmResult};
use std::process::ExitCode;

/// Exit codes, documented in `docs/ROBUSTNESS.md`: syntax errors (and
/// usage mistakes) exit 2, type errors 3, exceeded resource budgets and
/// rejected configuration 4, abnormal VM terminations 5, and contained
/// internal compiler errors (including IR-verifier rejections) 101.
const EXIT_PARSE: u8 = 2;
const EXIT_ELAB: u8 = 3;
const EXIT_LIMIT: u8 = 4;
const EXIT_VM_TRAP: u8 = 5;
const EXIT_ICE: u8 = 101;

fn exit_code_of(e: &CompileError) -> u8 {
    match e {
        CompileError::Parse(..) => EXIT_PARSE,
        CompileError::Elab(..) => EXIT_ELAB,
        CompileError::Config(..) | CompileError::Limit { .. } => EXIT_LIMIT,
        CompileError::Internal { .. } => EXIT_ICE,
    }
}

/// How much statistics reporting the user asked for.
#[derive(Clone, Copy, PartialEq, Eq)]
enum StatsMode {
    Off,
    Human,
    Json,
}

fn usage() -> ! {
    eprintln!(
        "usage: smlc [--variant nrp|fag|rep|mtd|ffb|fp3] [--verify-ir off|debug|always] \
         [--stats[=json]] [--all] [--batch] [--emit asm] [--tenants=N] \
         (<file.sml>... | -e <source>)"
    );
    std::process::exit(2)
}

fn parse_variant(s: &str) -> Variant {
    match s.parse() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            usage()
        }
    }
}

/// One source text plus the name we report it under.
struct Input {
    label: String,
    src: String,
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut variant = Variant::Ffb;
    let mut verify: Option<VerifyIr> = None;
    let mut stats = StatsMode::Off;
    let mut all = false;
    let mut batch = false;
    let mut emit_asm = false;
    let mut tenants: usize = 1;
    let mut inputs: Vec<Input> = Vec::new();

    while let Some(a) = args.next() {
        match a.as_str() {
            "--variant" | "-v" => {
                let Some(v) = args.next() else { usage() };
                variant = parse_variant(&v);
            }
            "--verify-ir" => {
                let Some(m) = args.next() else { usage() };
                match m.parse() {
                    Ok(m) => verify = Some(m),
                    Err(e) => {
                        eprintln!("{e}");
                        usage()
                    }
                }
            }
            "--stats" | "-s" => stats = StatsMode::Human,
            "--stats=json" => stats = StatsMode::Json,
            s if s.starts_with("--stats=") => {
                eprintln!(
                    "unknown stats format `{}` (only `json`)",
                    &s["--stats=".len()..]
                );
                usage()
            }
            s if s.starts_with("--tenants=") => match s["--tenants=".len()..].parse::<usize>() {
                Ok(n) if (1..=1024).contains(&n) => tenants = n,
                _ => {
                    eprintln!("--tenants takes a count between 1 and 1024");
                    usage()
                }
            },
            "--all" | "-a" => all = true,
            "--batch" | "-b" => batch = true,
            "--emit" => {
                let Some(what) = args.next() else { usage() };
                match what.as_str() {
                    "asm" => emit_asm = true,
                    other => {
                        eprintln!("unknown --emit target `{other}` (only `asm`)");
                        usage()
                    }
                }
            }
            "-e" => {
                let Some(src) = args.next() else { usage() };
                inputs.push(Input {
                    label: "<cmdline>".to_owned(),
                    src,
                });
            }
            "--help" | "-h" => usage(),
            path => match std::fs::read_to_string(path) {
                Ok(src) => inputs.push(Input {
                    label: path.to_owned(),
                    src,
                }),
                Err(e) => {
                    eprintln!("smlc: cannot read {path}: {e}");
                    return ExitCode::from(2);
                }
            },
        }
    }
    if inputs.is_empty() {
        usage()
    }
    if !batch && inputs.len() > 1 {
        // Historic single-source behavior: the last input wins.
        inputs.drain(..inputs.len() - 1);
    }

    let variants: Vec<Variant> = if all {
        Variant::ALL.to_vec()
    } else {
        vec![variant]
    };

    let mut builder = Session::builder().variant(variant);
    if let Some(mode) = verify {
        builder = builder.verify_ir(mode);
    }
    let session = match builder.build() {
        Ok(s) => s,
        Err(e) => {
            let e: CompileError = e.into();
            eprintln!("smlc: {e}");
            if stats == StatsMode::Json {
                println!("{}", error_json(variant, &e).to_string_pretty());
            }
            return ExitCode::from(exit_code_of(&e));
        }
    };
    let jobs: Vec<Job> = inputs
        .iter()
        .flat_map(|input| {
            variants
                .iter()
                .map(|&v| Job::with_variant(input.src.clone(), v))
        })
        .collect();
    let results = session.compile_batch(&jobs);

    let mut job_ix = 0;
    for input in &inputs {
        if batch && inputs.len() > 1 {
            println!("=== {} ===", input.label);
        }
        for &v in &variants {
            if all {
                println!("== {} ==", v.name());
            }
            let result = &results[job_ix];
            job_ix += 1;
            let compiled = match result {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("smlc: {e}");
                    // Structured output is emitted on failure paths too, so
                    // JSON consumers never have to parse stderr.
                    if stats == StatsMode::Json {
                        println!("{}", error_json(v, e).to_string_pretty());
                    }
                    return ExitCode::from(exit_code_of(e));
                }
            };
            for w in &compiled.stats.warnings {
                eprintln!("smlc: {w}");
            }
            if emit_asm {
                print!("{}", compiled.machine);
                continue;
            }
            // With --tenants=N the compiled program runs as N
            // identically configured tenants under the round-robin VM
            // scheduler; tenant 0's outcome (identical to a solo run)
            // is reported and the scheduler counters land in the
            // metrics document under "sched".
            let (outcome, sched) = if tenants > 1 {
                let cfg = session.vm_config(compiled.variant);
                let mut sched = VmScheduler::new(10_000);
                for _ in 0..tenants {
                    sched.spawn(&compiled.machine, &cfg);
                }
                let (mut reports, stats) = sched.run_all();
                let first = reports.swap_remove(0);
                (
                    smlc::Outcome {
                        result: first.result,
                        stats: first.stats,
                        output: first.output,
                    },
                    Some(stats),
                )
            } else {
                (session.run(compiled), None)
            };
            print!("{}", outcome.output);
            // Abnormal terminations still report statistics below (the
            // metrics schema carries the result tag), but fail the process.
            let failed = match &outcome.result {
                VmResult::Value(_) => false,
                VmResult::Uncaught(name) => {
                    eprintln!("smlc: uncaught exception {name}");
                    true
                }
                VmResult::OutOfFuel => {
                    eprintln!("smlc: cycle budget exhausted");
                    true
                }
                VmResult::HeapExhausted => {
                    eprintln!("smlc: heap exhausted");
                    true
                }
                VmResult::Fault(why) => {
                    eprintln!("smlc: vm fault: {why}");
                    true
                }
            };
            match stats {
                StatsMode::Off => {}
                StatsMode::Human => eprintln!(
                    "[{}] code {} instrs | compile {:?} | cycles {} | instrs {} | \
                     alloc {} words | gcs {} ({} minor, {} major) | cache {}",
                    v.name(),
                    compiled.stats.code_size,
                    compiled.stats.compile_time,
                    outcome.stats.cycles,
                    outcome.stats.instrs,
                    outcome.stats.alloc_words,
                    outcome.stats.n_gcs,
                    outcome.stats.n_minor_gcs,
                    outcome.stats.n_major_gcs,
                    if compiled.from_cache { "hit" } else { "miss" },
                ),
                StatsMode::Json => {
                    let mut m = Metrics::of_run(compiled, &outcome)
                        .with_cache(session.cache_stats())
                        .with_arena(session.arena_stats());
                    if let Some(sched) = sched {
                        m = m.with_sched(sched);
                    }
                    println!("{}", m.to_json().to_string_pretty());
                }
            }
            if failed {
                return ExitCode::from(EXIT_VM_TRAP);
            }
        }
    }
    ExitCode::SUCCESS
}
