//! `smlc` — a type-based compiler for a Standard ML subset, reproducing
//! Shao & Appel, *A Type-Based Compiler for Standard ML* (PLDI 1995).
//!
//! The crate wires the full pipeline of the paper's Figure 3: parsing,
//! elaboration with per-occurrence type instantiations, optional minimum
//! typing derivations, translation into the typed lambda language LEXP
//! with representation-analysis coercions, typed CPS conversion and
//! optimization, closure conversion, and code generation for an abstract
//! DECstation-class machine with a cycle-accounting interpreter.
//!
//! Six [`Variant`]s mirror the paper's measured compilers
//! (`sml.nrp` … `sml.fp3`).
//!
//! The entry point is a [`Session`] (see `docs/API.md`): it bundles the
//! configuration knobs, caches compiled artifacts by content, keeps the
//! LTY hash-cons table warm across compiles, and drives parallel
//! batches.
//!
//! # Examples
//!
//! ```
//! use smlc::{Session, Variant, VmResult};
//! let program = "
//!     fun fib n = if n < 2 then n else fib (n - 1) + fib (n - 2)
//!     val result = fib 10
//! ";
//! let session = Session::with_variant(Variant::Ffb);
//! let compiled = session.compile(program).unwrap();
//! let outcome = session.run(&compiled);
//! assert_eq!(outcome.result, VmResult::Value(0)); // programs return unit
//! assert!(outcome.stats.cycles > 0);
//! // The second compile of the same program is a cache hit.
//! assert!(session.compile(program).unwrap().from_cache);
//! ```

#![warn(missing_docs)]

pub mod component;
pub mod config;
pub mod error;
pub mod fxhash;
pub mod json;
pub mod metrics;
pub mod pipeline;
pub mod server;
pub mod session;

pub use component::{partition, Component, ComponentGraph, ComponentStats};
pub use config::{ParseVariantError, Variant};
pub use error::{CompileError, ConfigError, Violation};
pub use json::{Json, JsonError};
pub use metrics::{error_json, result_tag, Metrics, RunMetrics, METRICS_SCHEMA_VERSION};
pub use pipeline::{CompileStats, Compiled, Limits, ParseVerifyIrError, VerifyIr, VerifyStats};
pub use server::{CompileServer, ServerStats};
pub use session::{par_map, CacheStats, Job, Session, SessionBuilder};
pub use sml_cps::OptConfig;
pub use sml_vm::{
    AdmissionError, Dispatch, DispatchStats, FaultInject, GcMode, InstrClass, MachineProgram,
    Outcome, RunStats, SchedConfigError, SchedPolicy, SchedStats, SchedulerBuilder, TenantOutcome,
    TenantReport, TenantSpec, VmConfig, VmResult, VmScheduler,
};
