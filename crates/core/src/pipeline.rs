//! The compilation pipeline (the paper's Figure 3), end to end.

use crate::config::Variant;
use crate::error::CompileError;
use sml_cps::{close, convert, optimize, OptConfig, OptStats};
use sml_lambda::{translate, type_of, CoerceStats, LtyStats};
use sml_vm::{codegen, run as vm_run, MachineProgram, Outcome, VmConfig};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Per-phase and summary statistics of one compilation.
#[derive(Clone, Debug, Default)]
pub struct CompileStats {
    /// Wall-clock time of the whole compilation.
    pub compile_time: Duration,
    /// Wall-clock per phase: parse, elaborate (+MTD), translate, CPS
    /// convert, optimize, closure convert, codegen.
    pub phase_times: Vec<(&'static str, Duration)>,
    /// LEXP size after translation (nodes).
    pub lexp_size: usize,
    /// CPS size before optimization (operators).
    pub cps_size_before: usize,
    /// CPS size after optimization.
    pub cps_size_after: usize,
    /// Machine code size (instructions) — the paper's code-size metric.
    pub code_size: usize,
    /// Coercion statistics from translation.
    pub coerce: CoerceStats,
    /// Optimizer statistics.
    pub opt: OptStats,
    /// LTY interner statistics (hash-cons hits/misses, distinct types).
    pub lty: LtyStats,
    /// Front-end warnings (nonexhaustive matches, redundant rules).
    pub warnings: Vec<String>,
}

/// A compiled program ready to run.
#[derive(Clone, Debug)]
pub struct Compiled {
    /// The machine code.
    pub machine: MachineProgram,
    /// Which variant produced it.
    pub variant: Variant,
    /// Compilation statistics.
    pub stats: CompileStats,
}

/// Compiles `src` with the given compiler variant.
///
/// # Errors
///
/// Returns [`CompileError`] on syntax or type errors.
///
/// # Examples
///
/// ```
/// use smlc::{compile, Variant};
/// let c = compile("val x = 1 + 2", Variant::Ffb).unwrap();
/// assert!(c.stats.code_size > 0);
/// ```
pub fn compile(src: &str, variant: Variant) -> Result<Compiled, CompileError> {
    compile_with(src, variant, &OptConfig::default())
}

/// Compiles with explicit optimizer settings.
///
/// # Errors
///
/// Returns [`CompileError`] on syntax or type errors.
pub fn compile_with(
    src: &str,
    variant: Variant,
    opt_cfg: &OptConfig,
) -> Result<Compiled, CompileError> {
    let t0 = Instant::now();
    let mut phases = Vec::new();

    let t = Instant::now();
    let prog = sml_ast::parse(src).map_err(|e| CompileError::Parse(e, src.to_owned()))?;
    phases.push(("parse", t.elapsed()));

    let t = Instant::now();
    let mut elab = sml_elab::elaborate(&prog).map_err(|e| CompileError::Elab(e, src.to_owned()))?;
    if variant.uses_mtd() {
        sml_elab::minimum_typing(&mut elab);
    }
    phases.push(("elaborate", t.elapsed()));

    let t = Instant::now();
    let mut tr = translate(&elab, &variant.lambda_config());
    phases.push(("translate", t.elapsed()));
    let lexp_size = tr.lexp.size();
    debug_assert!(
        type_of(&tr.lexp, &mut HashMap::new(), &mut tr.interner).is_ok(),
        "internal: translated LEXP is ill-typed"
    );

    let t = Instant::now();
    let mut cps = convert(&tr.lexp, &mut tr.interner, tr.n_vars, &variant.cps_config());
    phases.push(("cps-convert", t.elapsed()));
    let cps_size_before = cps.body.size();

    let t = Instant::now();
    let opt = optimize(&mut cps, opt_cfg);
    phases.push(("cps-optimize", t.elapsed()));
    let cps_size_after = cps.body.size();

    let t = Instant::now();
    let closed = close(cps);
    phases.push(("closure-convert", t.elapsed()));

    let t = Instant::now();
    let machine = codegen(&closed);
    phases.push(("codegen", t.elapsed()));

    let stats = CompileStats {
        compile_time: t0.elapsed(),
        phase_times: phases,
        lexp_size,
        cps_size_before,
        cps_size_after,
        code_size: machine.code_size(),
        coerce: tr.stats,
        opt,
        lty: tr.interner.stats(),
        warnings: tr.warnings,
    };
    Ok(Compiled {
        machine,
        variant,
        stats,
    })
}

impl Compiled {
    /// Runs the compiled program on the abstract machine.
    pub fn run(&self) -> Outcome {
        vm_run(&self.machine, &self.variant.vm_config())
    }

    /// Runs with an explicit VM configuration.
    pub fn run_with(&self, cfg: &VmConfig) -> Outcome {
        vm_run(&self.machine, cfg)
    }
}

/// Convenience: compile with [`Variant::Ffb`] and run, returning the
/// outcome.
///
/// # Errors
///
/// Returns [`CompileError`] on syntax or type errors.
pub fn compile_and_run(src: &str) -> Result<Outcome, CompileError> {
    Ok(compile(src, Variant::Ffb)?.run())
}
