//! The compilation pipeline (the paper's Figure 3), end to end.
//!
//! The engine here is driven by [`crate::session::Session`], which is
//! the supported entry point; the free functions at the bottom of this
//! module are deprecated shims kept for one release of migration.

use crate::config::Variant;
use crate::error::CompileError;
use sml_cps::{close, convert, optimize, OptConfig, OptStats};
use sml_lambda::{translate, translate_seeded, type_of, CoerceStats, LtyInterner, LtyStats};
use sml_vm::{codegen, run as vm_run, MachineProgram, Outcome, VmConfig};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// Resource budgets for one compilation (see `docs/ROBUSTNESS.md`).
/// Exceeding one yields [`CompileError::Limit`], never a crash; the
/// defaults are far above anything the paper's benchmark suite needs.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Largest accepted source text, in bytes.
    pub max_source_bytes: usize,
    /// Largest accepted LEXP after translation, in nodes.
    pub max_lexp_nodes: usize,
    /// Largest accepted CPS program before optimization, in operators.
    pub max_cps_ops: usize,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            max_source_bytes: 16 << 20,
            max_lexp_nodes: 4_000_000,
            max_cps_ops: 8_000_000,
        }
    }
}

/// Extracts a printable message from a contained panic payload.
fn panic_msg(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic of unknown type".to_owned()
    }
}

/// Runs one phase with panic containment: a panic inside `f` becomes
/// [`CompileError::Internal`] carrying the phase name, so a compiler bug
/// is reported as a typed error instead of aborting the process.
/// (Stack overflow is not catchable this way — recursion-heavy phases
/// bound their depth up front; see the parser's nesting budget.)
fn contain<T>(phase: &'static str, f: impl FnOnce() -> T) -> Result<T, CompileError> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|p| CompileError::Internal {
        phase,
        msg: panic_msg(p),
    })
}

/// Per-phase and summary statistics of one compilation.
#[derive(Clone, Debug, Default)]
pub struct CompileStats {
    /// Wall-clock time of the whole compilation.
    pub compile_time: Duration,
    /// Wall-clock per phase: parse, elaborate (+MTD), translate, CPS
    /// convert, optimize, closure convert, codegen.
    pub phase_times: Vec<(&'static str, Duration)>,
    /// LEXP size after translation (nodes).
    pub lexp_size: usize,
    /// CPS size before optimization (operators).
    pub cps_size_before: usize,
    /// CPS size after optimization.
    pub cps_size_after: usize,
    /// Machine code size (instructions) — the paper's code-size metric.
    pub code_size: usize,
    /// Coercion statistics from translation.
    pub coerce: CoerceStats,
    /// Optimizer statistics.
    pub opt: OptStats,
    /// LTY interner statistics. When a session reuses a warm table, the
    /// counters (`intern_calls`, hits, misses, comparisons) are deltas
    /// for this compile alone, while `interned` remains the total size
    /// of the shared table.
    pub lty: LtyStats,
    /// Front-end warnings (nonexhaustive matches, redundant rules).
    pub warnings: Vec<String>,
}

/// A compiled program ready to run.
#[derive(Clone, Debug)]
pub struct Compiled {
    /// The machine code.
    pub machine: MachineProgram,
    /// Which variant produced it.
    pub variant: Variant,
    /// Compilation statistics.
    pub stats: CompileStats,
    /// Whether this artifact was served from a session's artifact cache
    /// rather than freshly compiled (in which case `stats` describes
    /// the original compilation, not this lookup).
    pub from_cache: bool,
}

/// Compiles `src`, optionally seeding translation with a warm LTY
/// hash-cons table, and hands the table back for reuse. Counter fields
/// of `stats.lty` are reported as per-compile deltas against the seed;
/// `interned` stays the total table size. Every phase runs under panic
/// containment, so the only ways out are a [`Compiled`] program or a
/// typed [`CompileError`].
pub(crate) fn compile_engine(
    src: &str,
    variant: Variant,
    opt_cfg: &OptConfig,
    limits: &Limits,
    seed: Option<LtyInterner>,
) -> Result<(Compiled, LtyInterner), CompileError> {
    if src.len() > limits.max_source_bytes {
        return Err(CompileError::Limit {
            phase: "parse",
            msg: format!(
                "source of {} bytes exceeds the {}-byte budget",
                src.len(),
                limits.max_source_bytes
            ),
        });
    }
    let t0 = Instant::now();
    let mut phases = Vec::new();

    let t = Instant::now();
    let prog = contain("parse", || sml_ast::parse(src))?.map_err(|e| {
        if e.limit {
            CompileError::Limit {
                phase: "parse",
                msg: e.msg,
            }
        } else {
            CompileError::Parse(e, src.to_owned())
        }
    })?;
    phases.push(("parse", t.elapsed()));

    let t = Instant::now();
    let elab = contain("elaborate", || {
        let mut e = sml_elab::elaborate(&prog)?;
        if variant.uses_mtd() {
            sml_elab::minimum_typing(&mut e);
        }
        Ok(e)
    })?
    .map_err(|e: sml_elab::ElabError| CompileError::Elab(e, src.to_owned()))?;
    phases.push(("elaborate", t.elapsed()));

    let t = Instant::now();
    let lambda_cfg = variant.lambda_config();
    // `translate_seeded` falls back to a fresh table on a mode
    // mismatch, so only a matching seed contributes a stats baseline.
    let baseline = seed
        .as_ref()
        .filter(|s| s.mode() == lambda_cfg.intern_mode)
        .map(|s| s.stats());
    let mut tr = contain("translate", || match seed {
        Some(s) => translate_seeded(&elab, &lambda_cfg, s),
        None => translate(&elab, &lambda_cfg),
    })?;
    phases.push(("translate", t.elapsed()));
    let lexp_size = tr.lexp.size();
    if lexp_size > limits.max_lexp_nodes {
        return Err(CompileError::Limit {
            phase: "translate",
            msg: format!(
                "LEXP of {lexp_size} nodes exceeds the {}-node budget",
                limits.max_lexp_nodes
            ),
        });
    }
    if cfg!(debug_assertions) {
        contain("translate", || {
            assert!(
                type_of(&tr.lexp, &mut HashMap::new(), &mut tr.interner).is_ok(),
                "translated LEXP is ill-typed"
            );
        })?;
    }

    let t = Instant::now();
    let mut cps = contain("cps-convert", || {
        convert(&tr.lexp, &mut tr.interner, tr.n_vars, &variant.cps_config())
    })?;
    phases.push(("cps-convert", t.elapsed()));
    let cps_size_before = cps.body.size();
    if cps_size_before > limits.max_cps_ops {
        return Err(CompileError::Limit {
            phase: "cps-convert",
            msg: format!(
                "CPS program of {cps_size_before} operators exceeds the {}-operator budget",
                limits.max_cps_ops
            ),
        });
    }

    let t = Instant::now();
    let opt = contain("cps-optimize", || optimize(&mut cps, opt_cfg))?;
    phases.push(("cps-optimize", t.elapsed()));
    let cps_size_after = cps.body.size();

    let t = Instant::now();
    let closed = contain("closure-convert", || close(cps))?;
    phases.push(("closure-convert", t.elapsed()));

    let t = Instant::now();
    let machine = contain("codegen", || codegen(&closed))?;
    phases.push(("codegen", t.elapsed()));

    let mut lty = tr.interner.stats();
    if let Some(b) = baseline {
        lty.intern_calls -= b.intern_calls;
        lty.hashcons_hits -= b.hashcons_hits;
        lty.hashcons_misses -= b.hashcons_misses;
        lty.deep_compares -= b.deep_compares;
    }
    let stats = CompileStats {
        compile_time: t0.elapsed(),
        phase_times: phases,
        lexp_size,
        cps_size_before,
        cps_size_after,
        code_size: machine.code_size(),
        coerce: tr.stats,
        opt,
        lty,
        warnings: tr.warnings,
    };
    Ok((
        Compiled {
            machine,
            variant,
            stats,
            from_cache: false,
        },
        tr.interner,
    ))
}

impl Compiled {
    /// Runs the compiled program on the abstract machine under the
    /// producing variant's default VM configuration. Prefer
    /// [`crate::session::Session::run`], which honors the session's
    /// tuned VM configuration and fault overlay.
    pub fn run(&self) -> Outcome {
        vm_run(&self.machine, &self.variant.vm_config())
    }

    /// Runs with an explicit VM configuration.
    pub fn run_with(&self, cfg: &VmConfig) -> Outcome {
        vm_run(&self.machine, cfg)
    }
}

/// Compiles `src` with the given compiler variant.
///
/// # Errors
///
/// Returns [`CompileError`] on syntax or type errors.
#[deprecated(
    since = "0.1.0",
    note = "build a `Session` and use `Session::compile` / `Session::compile_variant`"
)]
pub fn compile(src: &str, variant: Variant) -> Result<Compiled, CompileError> {
    compile_engine(
        src,
        variant,
        &OptConfig::default(),
        &Limits::default(),
        None,
    )
    .map(|(c, _)| c)
}

/// Compiles with explicit optimizer settings.
///
/// # Errors
///
/// Returns [`CompileError`] on syntax or type errors.
#[deprecated(
    since = "0.1.0",
    note = "build a `Session` with `.opt_config(..)` and use `Session::compile`"
)]
pub fn compile_with(
    src: &str,
    variant: Variant,
    opt_cfg: &OptConfig,
) -> Result<Compiled, CompileError> {
    compile_engine(src, variant, opt_cfg, &Limits::default(), None).map(|(c, _)| c)
}

/// Compiles with explicit optimizer settings and resource budgets.
///
/// # Errors
///
/// Returns [`CompileError`] on syntax or type errors
/// ([`CompileError::Parse`] / [`CompileError::Elab`]), exceeded budgets
/// ([`CompileError::Limit`]), or contained compiler bugs
/// ([`CompileError::Internal`]).
#[deprecated(
    since = "0.1.0",
    note = "build a `Session` with `.opt_config(..).limits(..)` and use `Session::compile`"
)]
pub fn compile_full(
    src: &str,
    variant: Variant,
    opt_cfg: &OptConfig,
    limits: &Limits,
) -> Result<Compiled, CompileError> {
    compile_engine(src, variant, opt_cfg, limits, None).map(|(c, _)| c)
}

/// Convenience: compile with [`Variant::Ffb`] and run, returning the
/// outcome. Note this always runs under the variant's default VM
/// configuration; `Session::compile_and_run` honors the session's
/// tuned `VmConfig` and fault overlay.
///
/// # Errors
///
/// Returns [`CompileError`] on syntax or type errors.
#[deprecated(
    since = "0.1.0",
    note = "build a `Session` and use `Session::compile_and_run`, which honors the session's VM configuration"
)]
pub fn compile_and_run(src: &str) -> Result<Outcome, CompileError> {
    compile_engine(
        src,
        Variant::Ffb,
        &OptConfig::default(),
        &Limits::default(),
        None,
    )
    .map(|(c, _)| c.run())
}
