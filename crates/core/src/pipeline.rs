//! The compilation pipeline (the paper's Figure 3), end to end.
//!
//! The engine here is driven by [`crate::session::Session`], which is
//! the only entry point. When the session's [`VerifyIr`] mode is
//! active, each intermediate form is re-checked after the phase that
//! produced it (see `docs/VERIFY_IR.md`): the typed LEXP after
//! translation, the CPS term after conversion and after every
//! optimizer pass, the closed program after closure conversion, and
//! the bytecode after code generation.

use crate::component::{elaborate_incremental, ComponentStats, IncrCtx};
use crate::config::Variant;
use crate::error::{CompileError, Violation};
use sml_cps::{close, convert, optimize, optimize_instrumented, OptConfig, OptStats};
use sml_lambda::{translate_seeded, CoerceStats, LtyInterner, LtyStats};
use sml_vm::{codegen, run as vm_run, MachineProgram, Outcome, VmConfig};
use std::cell::Cell;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::str::FromStr;
use std::time::{Duration, Instant};

/// Resource budgets for one compilation (see `docs/ROBUSTNESS.md`).
/// Exceeding one yields [`CompileError::Limit`], never a crash; the
/// defaults are far above anything the paper's benchmark suite needs.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Largest accepted source text, in bytes.
    pub max_source_bytes: usize,
    /// Largest accepted LEXP after translation, in nodes.
    pub max_lexp_nodes: usize,
    /// Largest accepted CPS program before optimization, in operators.
    pub max_cps_ops: usize,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            max_source_bytes: 16 << 20,
            max_lexp_nodes: 4_000_000,
            max_cps_ops: 8_000_000,
        }
    }
}

/// When the typed-IR verification pipeline runs (see
/// `docs/VERIFY_IR.md`). Verification only ever *checks* — it never
/// rewrites an IR — so the emitted code is byte-identical across
/// modes; the modes trade compile time for earlier, phase-attributed
/// detection of compiler bugs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum VerifyIr {
    /// Never verify. Zero overhead; miscompilations surface only as
    /// downstream crashes or wrong answers.
    Off,
    /// Verify in debug builds, skip in release builds (the default:
    /// tests and development get the full checks, production builds
    /// pay nothing).
    #[default]
    Debug,
    /// Verify in every build.
    Always,
}

impl VerifyIr {
    /// Whether verification actually runs in this build.
    pub fn is_active(self) -> bool {
        match self {
            VerifyIr::Off => false,
            VerifyIr::Debug => cfg!(debug_assertions),
            VerifyIr::Always => true,
        }
    }

    /// The canonical spelling, as accepted by [`FromStr`].
    pub fn as_str(self) -> &'static str {
        match self {
            VerifyIr::Off => "off",
            VerifyIr::Debug => "debug",
            VerifyIr::Always => "always",
        }
    }
}

impl fmt::Display for VerifyIr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Error from parsing a [`VerifyIr`] name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseVerifyIrError {
    given: String,
}

impl fmt::Display for ParseVerifyIrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown verify-ir mode `{}` (expected off, debug, or always)",
            self.given
        )
    }
}

impl std::error::Error for ParseVerifyIrError {}

impl FromStr for VerifyIr {
    type Err = ParseVerifyIrError;

    fn from_str(s: &str) -> Result<VerifyIr, ParseVerifyIrError> {
        match s.to_ascii_lowercase().as_str() {
            "off" => Ok(VerifyIr::Off),
            "debug" => Ok(VerifyIr::Debug),
            "always" => Ok(VerifyIr::Always),
            _ => Err(ParseVerifyIrError {
                given: s.to_owned(),
            }),
        }
    }
}

/// Counters from one compilation's IR-verification runs.
#[derive(Clone, Copy, Debug, Default)]
pub struct VerifyStats {
    /// The session's configured mode.
    pub mode: VerifyIr,
    /// LEXP type-checker runs (0 or 1).
    pub lexp_checks: u64,
    /// CPS invariant-checker runs: one after conversion, one per
    /// optimizer pass, one on the closed program.
    pub cps_checks: u64,
    /// Bytecode verifier runs (0 or 1); each run also verifies the
    /// pre-decoded threaded dispatch stream.
    pub bytecode_checks: u64,
    /// Wall-clock spent verifying, across all stages.
    pub time: Duration,
}

impl VerifyStats {
    /// Total verifier runs across all three stages.
    pub fn total_checks(&self) -> u64 {
        self.lexp_checks + self.cps_checks + self.bytecode_checks
    }
}

/// Extracts a printable message from a contained panic payload.
fn panic_msg(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic of unknown type".to_owned()
    }
}

/// Runs one phase with panic containment: a panic inside `f` becomes
/// [`CompileError::Internal`] carrying the phase name, so a compiler bug
/// is reported as a typed error instead of aborting the process.
/// (Stack overflow is not catchable this way — recursion-heavy phases
/// bound their depth up front; see the parser's nesting budget.)
fn contain<T>(phase: &'static str, f: impl FnOnce() -> T) -> Result<T, CompileError> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|p| CompileError::Internal {
        phase,
        msg: panic_msg(p),
        violation: None,
    })
}

/// Wraps a verifier rejection as [`CompileError::Internal`] attributed
/// to the phase whose output failed, with the structured payload.
fn verify_error(
    phase: &'static str,
    stage: &'static str,
    pass: Option<u32>,
    rule: &'static str,
    detail: String,
) -> CompileError {
    let violation = Violation {
        stage,
        pass,
        rule,
        detail,
    };
    CompileError::Internal {
        phase,
        msg: format!("IR verification failed: {violation}"),
        violation: Some(violation),
    }
}

/// Per-phase and summary statistics of one compilation.
#[derive(Clone, Debug, Default)]
pub struct CompileStats {
    /// Wall-clock time of the whole compilation.
    pub compile_time: Duration,
    /// Wall-clock per phase: parse, elaborate (+MTD), translate, CPS
    /// convert, optimize, closure convert, codegen.
    pub phase_times: Vec<(&'static str, Duration)>,
    /// LEXP size after translation (nodes).
    pub lexp_size: usize,
    /// CPS size before optimization (operators).
    pub cps_size_before: usize,
    /// CPS size after optimization.
    pub cps_size_after: usize,
    /// Machine code size (instructions) — the paper's code-size metric.
    pub code_size: usize,
    /// Coercion statistics from translation.
    pub coerce: CoerceStats,
    /// Optimizer statistics.
    pub opt: OptStats,
    /// LTY interner statistics for this compile's private view: the
    /// types and intern calls attributable to this compilation alone.
    /// Deterministic by construction — identical whether the session's
    /// shared arena was cold or warm, serial or parallel — and
    /// `interned == hashcons_misses` always holds.
    pub lty: LtyStats,
    /// IR-verification counters (all zero when verification is off).
    pub verify: VerifyStats,
    /// Component-wise incremental elaboration counters (all zero with
    /// `enabled: false` when the session compiles whole-program). See
    /// [`ComponentStats`].
    pub components: ComponentStats,
    /// Front-end warnings (nonexhaustive matches, redundant rules).
    pub warnings: Vec<String>,
}

/// A compiled program ready to run.
#[derive(Clone, Debug)]
pub struct Compiled {
    /// The machine code.
    pub machine: MachineProgram,
    /// Which variant produced it.
    pub variant: Variant,
    /// Compilation statistics.
    pub stats: CompileStats,
    /// Whether this artifact was served from a session's artifact cache
    /// rather than freshly compiled (in which case `stats` describes
    /// the original compilation, not this lookup).
    pub from_cache: bool,
}

/// Compiles `src` through the given LTY interner view — typically one
/// opened on the session's shared [`sml_lambda::LtyArena`], so the
/// hash-cons table is warm across compiles (and across batch workers)
/// while `stats.lty` still reports exactly this compile's activity.
/// A view whose mode disagrees with the variant's is replaced by a
/// fresh one inside `translate_seeded`. Every phase runs under panic
/// containment, so the only ways out are a [`Compiled`] program or a
/// typed [`CompileError`].
pub(crate) fn compile_engine(
    src: &str,
    variant: Variant,
    opt_cfg: &OptConfig,
    limits: &Limits,
    verify: VerifyIr,
    interner: LtyInterner,
    incr: Option<&IncrCtx<'_>>,
) -> Result<Compiled, CompileError> {
    if src.len() > limits.max_source_bytes {
        return Err(CompileError::Limit {
            phase: "parse",
            msg: format!(
                "source of {} bytes exceeds the {}-byte budget",
                src.len(),
                limits.max_source_bytes
            ),
        });
    }
    let t0 = Instant::now();
    let mut phases = Vec::new();
    let verifying = verify.is_active();
    let mut vstats = VerifyStats {
        mode: verify,
        ..VerifyStats::default()
    };

    let t = Instant::now();
    let prog = contain("parse", || sml_ast::parse(src))?.map_err(|e| {
        if e.limit {
            CompileError::Limit {
                phase: "parse",
                msg: e.msg,
            }
        } else {
            CompileError::Parse(e, src.to_owned())
        }
    })?;
    phases.push(("parse", t.elapsed()));

    let t = Instant::now();
    // With a component context, elaboration resumes from the deepest
    // cached checkpoint and replays only the dirtied suffix; the typed
    // program is isomorphic to the whole-program path's (differential-
    // gated byte-identity downstream). MTD runs on the working copy
    // only — checkpoints are deep forks, so its in-place re-linking
    // cannot corrupt them.
    let (elab, comp_stats) = contain("elaborate", || {
        let (mut e, comp_stats) = match incr {
            Some(ctx) => elaborate_incremental(&prog, ctx)?,
            None => (sml_elab::elaborate(&prog)?, ComponentStats::default()),
        };
        if variant.uses_mtd() {
            sml_elab::minimum_typing(&mut e);
        }
        Ok((e, comp_stats))
    })?
    .map_err(|e: sml_elab::ElabError| CompileError::Elab(e, src.to_owned()))?;
    phases.push(("elaborate", t.elapsed()));

    let t = Instant::now();
    let lambda_cfg = variant.lambda_config();
    let mut tr = contain("translate", || {
        translate_seeded(&elab, &lambda_cfg, interner)
    })?;
    phases.push(("translate", t.elapsed()));
    let lexp_size = tr.lexp.size();
    if lexp_size > limits.max_lexp_nodes {
        return Err(CompileError::Limit {
            phase: "translate",
            msg: format!(
                "LEXP of {lexp_size} nodes exceeds the {}-node budget",
                limits.max_lexp_nodes
            ),
        });
    }
    if verifying {
        let tv = Instant::now();
        let res = contain("translate", || {
            sml_lambda::verify_lexp(&tr.lexp, &mut tr.interner)
        })?;
        vstats.lexp_checks += 1;
        vstats.time += tv.elapsed();
        if let Err(v) = res {
            return Err(verify_error("translate", "lexp", None, v.rule, v.detail));
        }
    }

    let t = Instant::now();
    let mut cps = contain("cps-convert", || {
        convert(&tr.lexp, &mut tr.interner, tr.n_vars, &variant.cps_config())
    })?;
    phases.push(("cps-convert", t.elapsed()));
    let cps_size_before = cps.body.size();
    if cps_size_before > limits.max_cps_ops {
        return Err(CompileError::Limit {
            phase: "cps-convert",
            msg: format!(
                "CPS program of {cps_size_before} operators exceeds the {}-operator budget",
                limits.max_cps_ops
            ),
        });
    }
    if verifying {
        let tv = Instant::now();
        let res = contain("cps-convert", || sml_cps::verify_cps(&cps))?;
        vstats.cps_checks += 1;
        vstats.time += tv.elapsed();
        if let Err(v) = res {
            return Err(verify_error("cps-convert", "cps", None, v.rule, v.detail));
        }
    }

    let t = Instant::now();
    let opt = if verifying {
        // Re-check the CPS term after every optimizer pass, so a bad
        // rewrite is pinned to the pass that introduced it.
        let checks = Cell::new(0u64);
        let vtime = Cell::new(Duration::ZERO);
        let res = contain("cps-optimize", || {
            optimize_instrumented(&mut cps, opt_cfg, |pass, p| {
                let tv = Instant::now();
                let r = sml_cps::verify_cps(p);
                checks.set(checks.get() + 1);
                vtime.set(vtime.get() + tv.elapsed());
                r.map(|_| ()).map_err(|v| (pass, v))
            })
        })?;
        vstats.cps_checks += checks.get();
        vstats.time += vtime.get();
        match res {
            Ok(s) => s,
            Err((pass, v)) => {
                return Err(verify_error(
                    "cps-optimize",
                    "cps",
                    Some(pass as u32),
                    v.rule,
                    v.detail,
                ));
            }
        }
    } else {
        contain("cps-optimize", || optimize(&mut cps, opt_cfg))?
    };
    phases.push(("cps-optimize", t.elapsed()));
    let cps_size_after = cps.body.size();

    let t = Instant::now();
    let closed = contain("closure-convert", || close(cps))?;
    phases.push(("closure-convert", t.elapsed()));
    if verifying {
        let tv = Instant::now();
        let res = contain("closure-convert", || {
            sml_cps::verify_closed_program(&closed)
        })?;
        vstats.cps_checks += 1;
        vstats.time += tv.elapsed();
        if let Err(v) = res {
            return Err(verify_error(
                "closure-convert",
                "cps",
                None,
                v.rule,
                v.detail,
            ));
        }
    }

    let t = Instant::now();
    let machine = contain("codegen", || codegen(&closed))?;
    phases.push(("codegen", t.elapsed()));
    if verifying {
        let tv = Instant::now();
        let res = contain("codegen", || sml_vm::verify_bytecode(&machine))?;
        vstats.bytecode_checks += 1;
        if let Err(v) = res {
            vstats.time += tv.elapsed();
            return Err(verify_error("codegen", "bytecode", None, v.rule, v.detail));
        }
        // Also verify the pre-decoded threaded stream (round-trip,
        // coordinate maps, fused-operand bounds) so the typed chain
        // covers what `Dispatch::Threaded` actually executes.
        let res = contain("codegen", || sml_vm::verify_threaded(&machine))?;
        vstats.time += tv.elapsed();
        if let Err(v) = res {
            return Err(verify_error("codegen", "bytecode", None, v.rule, v.detail));
        }
    }

    let lty = tr.interner.stats();
    let stats = CompileStats {
        compile_time: t0.elapsed(),
        phase_times: phases,
        lexp_size,
        cps_size_before,
        cps_size_after,
        code_size: machine.code_size(),
        coerce: tr.stats,
        opt,
        lty,
        verify: vstats,
        components: comp_stats,
        warnings: tr.warnings,
    };
    Ok(Compiled {
        machine,
        variant,
        stats,
        from_cache: false,
    })
}

impl Compiled {
    /// Runs the compiled program on the abstract machine under the
    /// producing variant's default VM configuration. Prefer
    /// [`crate::session::Session::run`], which honors the session's
    /// tuned VM configuration and fault overlay.
    pub fn run(&self) -> Outcome {
        vm_run(&self.machine, &self.variant.vm_config())
    }

    /// Runs with an explicit VM configuration.
    pub fn run_with(&self, cfg: &VmConfig) -> Outcome {
        vm_run(&self.machine, cfg)
    }
}
