//! Compiler driver errors.

use std::fmt;

/// A compilation failure.
#[derive(Debug)]
pub enum CompileError {
    /// Syntax error, with the source for location rendering.
    Parse(sml_ast::ParseError, String),
    /// Type error, with the source for location rendering.
    Elab(sml_elab::ElabError, String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Parse(e, src) => f.write_str(&e.render(src)),
            CompileError::Elab(e, src) => f.write_str(&e.render(src)),
        }
    }
}

impl std::error::Error for CompileError {}
