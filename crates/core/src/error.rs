//! Compiler driver errors.
//!
//! The taxonomy (documented in `docs/ROBUSTNESS.md`) distinguishes five
//! failure classes so drivers can react appropriately: user-input
//! errors ([`CompileError::Parse`], [`CompileError::Elab`]), rejected
//! driver configuration ([`CompileError::Config`]), resource budgets
//! exceeded ([`CompileError::Limit`]), and internal compiler errors
//! ([`CompileError::Internal`]) — contained panics or IR-verifier
//! rejections that indicate a bug in the compiler itself, never in the
//! input program.

use std::fmt;

/// A structured IR-verification violation, attached to
/// [`CompileError::Internal`] when a `verify_ir` stage rejects the
/// compiler's own output (schema in `docs/VERIFY_IR.md`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Which verifier flagged it: `"lexp"`, `"cps"`, or `"bytecode"`.
    pub stage: &'static str,
    /// Optimizer pass index, when the CPS checker ran between passes.
    pub pass: Option<u32>,
    /// Stable rule tag from the stage's verifier (e.g. `"app-arity"`).
    pub rule: &'static str,
    /// Human-readable description of the offending IR.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} verifier: [{}] {}",
            self.stage, self.rule, self.detail
        )?;
        if let Some(p) = self.pass {
            write!(f, " (after optimizer pass {p})")?;
        }
        Ok(())
    }
}

/// A rejected `Session` / `VmConfig` / `Limits` knob: which field, what
/// value was given, and what the allowed range is.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// A count or size knob that must be at least 1 was zero.
    MustBeNonzero {
        /// Dotted field path, e.g. `"limits.max_lexp_nodes"`.
        field: &'static str,
    },
    /// A knob fell outside the range permitted by other knobs.
    OutOfRange {
        /// Dotted field path, e.g. `"vm.nursery_words"`.
        field: &'static str,
        /// The rejected value.
        given: u64,
        /// Smallest allowed value.
        min: u64,
        /// Largest allowed value.
        max: u64,
    },
}

impl ConfigError {
    /// The dotted path of the rejected field (also carried in
    /// `error_json` under `"field"`).
    pub fn field(&self) -> &'static str {
        match self {
            ConfigError::MustBeNonzero { field } | ConfigError::OutOfRange { field, .. } => field,
        }
    }

    /// The rejected value.
    pub fn given(&self) -> u64 {
        match self {
            ConfigError::MustBeNonzero { .. } => 0,
            ConfigError::OutOfRange { given, .. } => *given,
        }
    }

    /// The allowed range, rendered for messages (`"1.."` or
    /// `"min..=max"`).
    pub fn allowed(&self) -> String {
        match self {
            ConfigError::MustBeNonzero { .. } => "1..".into(),
            ConfigError::OutOfRange { min, max, .. } => format!("{min}..={max}"),
        }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid configuration: {} = {} (allowed {})",
            self.field(),
            self.given(),
            self.allowed()
        )
    }
}

impl std::error::Error for ConfigError {}

impl From<ConfigError> for CompileError {
    fn from(e: ConfigError) -> CompileError {
        CompileError::Config(e)
    }
}

/// A compilation failure.
#[derive(Debug)]
pub enum CompileError {
    /// Syntax error, with the source for location rendering.
    Parse(sml_ast::ParseError, String),
    /// Type error, with the source for location rendering.
    Elab(sml_elab::ElabError, String),
    /// The driver configuration itself was rejected before any source
    /// was compiled.
    Config(ConfigError),
    /// A resource budget was exceeded (recursion depth, source size,
    /// intermediate-form size). The input may be well-formed; it is
    /// simply too large for the configured limits.
    Limit {
        /// Pipeline phase that hit the budget.
        phase: &'static str,
        /// What budget, and by how much.
        msg: String,
    },
    /// An internal compiler error: a panic in some phase — or an IR
    /// verifier rejecting the phase's output — contained and reported
    /// instead of aborting the process. Always a compiler bug.
    Internal {
        /// Pipeline phase whose invariant broke.
        phase: &'static str,
        /// The contained panic message or verifier report.
        msg: String,
        /// Structured payload when an IR verifier raised the error;
        /// `None` for contained panics.
        violation: Option<Violation>,
    },
}

impl CompileError {
    /// Stable machine-readable class tag: `"parse"`, `"elab"`,
    /// `"config"`, `"limit"`, or `"internal"` (mirrored in the metrics
    /// schema and the `smlc` exit codes).
    pub fn kind(&self) -> &'static str {
        match self {
            CompileError::Parse(..) => "parse",
            CompileError::Elab(..) => "elab",
            CompileError::Config(..) => "config",
            CompileError::Limit { .. } => "limit",
            CompileError::Internal { .. } => "internal",
        }
    }

    /// The pipeline phase the failure is attributed to.
    pub fn phase(&self) -> &'static str {
        match self {
            CompileError::Parse(..) => "parse",
            CompileError::Elab(..) => "elaborate",
            CompileError::Config(..) => "config",
            CompileError::Limit { phase, .. } | CompileError::Internal { phase, .. } => phase,
        }
    }

    /// The structured verifier payload, when this error came from a
    /// `verify_ir` stage.
    pub fn violation(&self) -> Option<&Violation> {
        match self {
            CompileError::Internal { violation, .. } => violation.as_ref(),
            _ => None,
        }
    }

    /// The process exit code the `smlc` CLI maps this failure class to
    /// (documented in `docs/ROBUSTNESS.md`): syntax errors 2, type
    /// errors 3, exceeded budgets and rejected configuration 4, and
    /// contained internal compiler errors 101. The compile server
    /// reports the same codes in its error responses, so wire clients
    /// and CLI consumers see one taxonomy.
    pub fn exit_code(&self) -> u8 {
        match self {
            CompileError::Parse(..) => 2,
            CompileError::Elab(..) => 3,
            CompileError::Config(..) | CompileError::Limit { .. } => 4,
            CompileError::Internal { .. } => 101,
        }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Parse(e, src) => f.write_str(&e.render(src)),
            CompileError::Elab(e, src) => f.write_str(&e.render(src)),
            CompileError::Config(e) => write!(f, "{e}"),
            CompileError::Limit { phase, msg } => {
                write!(f, "limit exceeded in {phase}: {msg}")
            }
            CompileError::Internal { phase, msg, .. } => {
                write!(f, "internal compiler error in {phase}: {msg}")
            }
        }
    }
}

impl std::error::Error for CompileError {}
