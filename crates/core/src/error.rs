//! Compiler driver errors.
//!
//! The taxonomy (documented in `docs/ROBUSTNESS.md`) distinguishes four
//! failure classes so drivers can react appropriately: user-input
//! errors ([`CompileError::Parse`], [`CompileError::Elab`]), resource
//! budgets exceeded ([`CompileError::Limit`]), and internal compiler
//! errors ([`CompileError::Internal`]) — contained panics that indicate
//! a bug in the compiler itself, never in the input program.

use std::fmt;

/// A compilation failure.
#[derive(Debug)]
pub enum CompileError {
    /// Syntax error, with the source for location rendering.
    Parse(sml_ast::ParseError, String),
    /// Type error, with the source for location rendering.
    Elab(sml_elab::ElabError, String),
    /// A resource budget was exceeded (recursion depth, source size,
    /// intermediate-form size). The input may be well-formed; it is
    /// simply too large for the configured limits.
    Limit {
        /// Pipeline phase that hit the budget.
        phase: &'static str,
        /// What budget, and by how much.
        msg: String,
    },
    /// An internal compiler error: a panic in some phase, contained and
    /// reported instead of aborting the process. Always a compiler bug.
    Internal {
        /// Pipeline phase whose invariant broke.
        phase: &'static str,
        /// The contained panic message.
        msg: String,
    },
}

impl CompileError {
    /// Stable machine-readable class tag: `"parse"`, `"elab"`,
    /// `"limit"`, or `"internal"` (mirrored in the metrics schema and
    /// the `smlc` exit codes).
    pub fn kind(&self) -> &'static str {
        match self {
            CompileError::Parse(..) => "parse",
            CompileError::Elab(..) => "elab",
            CompileError::Limit { .. } => "limit",
            CompileError::Internal { .. } => "internal",
        }
    }

    /// The pipeline phase the failure is attributed to.
    pub fn phase(&self) -> &'static str {
        match self {
            CompileError::Parse(..) => "parse",
            CompileError::Elab(..) => "elaborate",
            CompileError::Limit { phase, .. } | CompileError::Internal { phase, .. } => phase,
        }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Parse(e, src) => f.write_str(&e.render(src)),
            CompileError::Elab(e, src) => f.write_str(&e.render(src)),
            CompileError::Limit { phase, msg } => {
                write!(f, "limit exceeded in {phase}: {msg}")
            }
            CompileError::Internal { phase, msg } => {
                write!(f, "internal compiler error in {phase}: {msg}")
            }
        }
    }
}

impl std::error::Error for CompileError {}
