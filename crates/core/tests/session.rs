//! Integration tests for the session API: artifact-cache correctness
//! (a hit is byte-identical to a forced recompile, including under
//! fault injection), warm-session determinism (reusing a session's LTY
//! table never changes generated code), LRU eviction accounting, batch
//! dedup, VM-configuration routing, and builder validation.

use smlc::{CompileError, Compiled, FaultInject, Job, Session, Variant, VmConfig, VmResult};

const PROGRAM: &str = r#"
    fun sq (x : real) = x * x
    fun lp (i, acc) = if i = 0 then acc else lp (i - 1, acc + sq (real i))
    val _ = print (rtos (lp (50, 0.0)))
"#;

const WARMUP: &str = r#"
    fun id x = x
    val p = (id 1, id 2.0, id "three")
    val _ = print (itos (#1 p))
"#;

const ALLOCATOR: &str = r#"
    fun build 0 = nil | build n = (n, real n) :: build (n - 1)
    fun len nil = 0 | len (_ :: r) = 1 + len r
    val _ = print (itos (len (build 2000)))
"#;

/// The machine program rendered to a canonical byte string; two
/// compilations are "byte-identical" when these agree.
fn code_bytes(c: &Compiled) -> String {
    format!("{:?}", c.machine)
}

#[test]
fn cache_hit_is_byte_identical_to_forced_recompile() {
    let session = Session::with_variant(Variant::Ffb);
    let first = session.compile(PROGRAM).expect("compiles");
    assert!(!first.from_cache, "first compile cannot be a hit");
    let hit = session.compile(PROGRAM).expect("compiles");
    assert!(hit.from_cache, "second identical compile must hit");

    // Forced recompile: a cache-disabled session with the same
    // configuration.
    let forced = Session::builder()
        .variant(Variant::Ffb)
        .cache(false)
        .build()
        .expect("valid")
        .compile(PROGRAM)
        .expect("compiles");
    assert!(!forced.from_cache);

    assert_eq!(code_bytes(&hit), code_bytes(&first));
    assert_eq!(code_bytes(&hit), code_bytes(&forced));
    assert_eq!(hit.stats.code_size, forced.stats.code_size);
    assert_eq!(hit.stats.lty, forced.stats.lty);
    assert_eq!(session.run(&hit).output, session.run(&forced).output);

    let stats = session.cache_stats();
    assert!(stats.enabled);
    assert_eq!(stats.hits, 1);
    assert_eq!(stats.misses, 1);
}

#[test]
fn cache_correct_under_fault_injection_config() {
    // A session whose VM config carries fault injection: the fault knobs
    // are part of the config fingerprint and of every run.
    let fault = FaultInject {
        fail_alloc_at: None,
        gc_every_n_allocs: Some(7),
        yield_every_n_slices: None,
    };
    let build = || {
        Session::builder()
            .variant(Variant::Ffb)
            .fault_inject(fault)
            .build()
            .expect("valid")
    };
    let session = build();
    let first = session.compile(ALLOCATOR).expect("compiles");
    let hit = session.compile(ALLOCATOR).expect("compiles");
    assert!(hit.from_cache);
    assert_eq!(code_bytes(&hit), code_bytes(&first));
    let forced = build();
    let recompiled = forced.compile(ALLOCATOR).expect("compiles");
    assert!(!recompiled.from_cache);
    assert_eq!(code_bytes(&hit), code_bytes(&recompiled));

    // Both artifacts run under the injected-GC schedule and agree.
    let (a, b) = (session.run(&hit), forced.run(&recompiled));
    assert_eq!(a.output, b.output);
    assert_eq!(a.stats.n_gcs, b.stats.n_gcs);
    assert!(
        a.stats.n_gcs > 0,
        "gc_every_n_allocs must force collections"
    );

    // A differently-fingerprinted session must not share cache keys
    // semantics: same source, fault-free config, still compiles cleanly.
    let plain = Session::with_variant(Variant::Ffb);
    let c = plain.compile(ALLOCATOR).expect("compiles");
    assert!(!c.from_cache);
    assert!(plain.run(&c).stats.n_gcs < a.stats.n_gcs);
}

#[test]
fn reused_session_compiles_byte_identical_to_fresh() {
    // Warm the reused session's LTY table on a *different* program so
    // the target compile is a cache miss that exercises the warm
    // interner rather than the artifact cache.
    let reused = Session::with_variant(Variant::Ffb);
    reused.compile(WARMUP).expect("warmup compiles");
    let warm = reused.compile(PROGRAM).expect("compiles");
    assert!(!warm.from_cache, "distinct source must miss the cache");

    let fresh = Session::with_variant(Variant::Ffb);
    let cold = fresh.compile(PROGRAM).expect("compiles");

    assert_eq!(
        code_bytes(&warm),
        code_bytes(&cold),
        "warm LTY table must not change generated code"
    );
    assert_eq!(warm.stats.code_size, cold.stats.code_size);
    assert_eq!(reused.run(&warm).output, fresh.run(&cold).output);

    // Counter fields are per-compile view deltas: the warm compile's
    // statistics are *exactly* the cold compile's, because each compile
    // counts through its own first-touch view regardless of what the
    // shared arena already holds. Pinning equality (not `<=`) is the
    // regression guard for the per-view accounting.
    assert_eq!(
        warm.stats.lty, cold.stats.lty,
        "per-compile LTY stats must be warmth-invariant"
    );
}

#[test]
fn arena_stats_track_sharing_and_gate_on_reuse_types() {
    // Default sessions own a shared arena; `arena_stats` reports it.
    let session = Session::with_variant(Variant::Ffb);
    let before = session.arena_stats().expect("default session has an arena");
    // The arena pre-interns the five atoms at construction.
    assert_eq!(before.resident(), 5);
    assert_eq!(before.misses(), 5);

    session.compile(WARMUP).expect("compiles");
    let mid = session.arena_stats().expect("arena persists");
    assert!(mid.resident() > 5, "a compile adds resident kinds");
    assert_eq!(
        mid.hits() + mid.misses(),
        mid.queries(),
        "hits and misses partition arena queries"
    );
    assert_eq!(
        mid.misses(),
        mid.resident() as u64,
        "every miss adds one kind"
    );
    assert!(mid.retries() <= mid.hits());

    // A second compile of a *different* program reuses shared kinds:
    // arena hits strictly increase while per-compile stats stay views.
    session.compile(PROGRAM).expect("compiles");
    let after = session.arena_stats().expect("arena persists");
    assert!(after.hits() > mid.hits(), "warm compile must hit the arena");
    assert!(after.resident() >= mid.resident());

    // `reuse_types(false)` drops the arena entirely.
    let cold = Session::builder()
        .variant(Variant::Ffb)
        .reuse_types(false)
        .build()
        .expect("valid");
    assert!(cold.arena_stats().is_none(), "no arena without type reuse");
}

#[test]
fn warm_parallel_batch_is_byte_identical_to_serial_cold() {
    // The core determinism promise of the shared arena: a warm parallel
    // batch over many distinct programs produces byte-identical machine
    // code to compiling each program in its own fresh session.
    let srcs = [PROGRAM, WARMUP, ALLOCATOR];
    let jobs: Vec<Job> = srcs.iter().map(|s| Job::new((*s).to_owned())).collect();

    let reference: Vec<String> = srcs
        .iter()
        .map(|s| {
            let c = Session::with_variant(Variant::Ffb).compile(s).unwrap();
            code_bytes(&c)
        })
        .collect();

    for workers in [1, 2, 8] {
        let session = Session::builder()
            .variant(Variant::Ffb)
            .batch_workers(workers)
            .cache(false)
            .build()
            .expect("valid");
        // Two consecutive batches: the second runs fully warm.
        for round in 0..2 {
            let results = session.compile_batch(&jobs);
            for (i, r) in results.iter().enumerate() {
                let c = r.as_ref().expect("compiles");
                assert_eq!(
                    code_bytes(c),
                    reference[i],
                    "workers={workers} round={round} job={i}"
                );
            }
        }
    }
}

#[test]
fn disabling_type_reuse_restores_cold_counters() {
    let session = Session::builder()
        .variant(Variant::Ffb)
        .reuse_types(false)
        .cache(false)
        .build()
        .expect("valid");
    session.compile(WARMUP).expect("compiles");
    let second = session.compile(PROGRAM).expect("compiles");
    let cold = Session::builder()
        .variant(Variant::Ffb)
        .cache(false)
        .build()
        .expect("valid")
        .compile(PROGRAM)
        .expect("compiles");
    assert_eq!(second.stats.lty, cold.stats.lty);
}

#[test]
fn lru_eviction_respects_capacity() {
    let session = Session::builder()
        .variant(Variant::Ffb)
        .cache_capacity(2)
        .build()
        .expect("valid");
    let srcs = [
        "val _ = print (itos 1)",
        "val _ = print (itos 2)",
        "val _ = print (itos 3)",
    ];
    for s in &srcs {
        session.compile(s).expect("compiles");
    }
    let stats = session.cache_stats();
    assert_eq!(stats.insertions, 3);
    assert_eq!(stats.entries, 2, "capacity bound holds");
    assert_eq!(stats.evictions, 1, "third insert evicts the oldest");
    assert_eq!(stats.capacity, 2);

    // srcs[0] was the least recently used — its re-compile misses.
    let again = session.compile(srcs[0]).expect("compiles");
    assert!(!again.from_cache, "evicted entry must recompile");
    // srcs[2] is still resident.
    let resident = session.compile(srcs[2]).expect("compiles");
    assert!(resident.from_cache, "most recent entry must still hit");
}

#[test]
fn errors_are_never_cached() {
    let session = Session::with_variant(Variant::Ffb);
    let bad = "val x = 1 + \"two\"";
    assert!(session.compile(bad).is_err());
    assert!(session.compile(bad).is_err());
    let stats = session.cache_stats();
    assert_eq!(stats.hits, 0);
    assert_eq!(stats.misses, 2, "failed compiles count as misses");
    assert_eq!(stats.insertions, 0, "errors must not be stored");
}

#[test]
fn compile_batch_matches_serial_and_dedups() {
    let jobs = vec![
        Job::new(PROGRAM.to_owned()),
        Job::with_variant(PROGRAM.to_owned(), Variant::Nrp),
        Job::new(WARMUP.to_owned()),
        Job::new(PROGRAM.to_owned()), // duplicate of jobs[0]
    ];
    let parallel = Session::builder().build().expect("valid");
    let serial = Session::builder().batch_workers(1).build().expect("valid");
    let p: Vec<Result<Compiled, CompileError>> = parallel.compile_batch(&jobs);
    let s: Vec<Result<Compiled, CompileError>> = serial.compile_batch(&jobs);
    assert_eq!(p.len(), jobs.len());
    for (a, b) in p.iter().zip(&s) {
        let (a, b) = (a.as_ref().expect("compiles"), b.as_ref().expect("compiles"));
        assert_eq!(code_bytes(a), code_bytes(b), "parallel == serial");
    }
    // The duplicate job is served from the cache, not recompiled.
    assert!(p[3].as_ref().expect("compiles").from_cache);
    assert_eq!(
        code_bytes(p[0].as_ref().unwrap()),
        code_bytes(p[3].as_ref().unwrap())
    );
    assert!(parallel.cache_stats().hits >= 1);
}

#[test]
fn compile_batch_contains_per_job_errors() {
    let jobs = vec![
        Job::new("val x = 1 + \"two\"".to_owned()),
        Job::new(WARMUP.to_owned()),
        Job::new("val x = 1 + \"two\"".to_owned()), // duplicate error
    ];
    let session = Session::builder().build().expect("valid");
    let results = session.compile_batch(&jobs);
    assert!(results[0].is_err());
    assert!(results[1].is_ok());
    assert!(results[2].is_err(), "duplicate errors reproduce per slot");
    assert_eq!(
        results[0].as_ref().unwrap_err().to_string(),
        results[2].as_ref().unwrap_err().to_string()
    );
}

#[test]
fn compile_and_run_honors_session_vm_config() {
    // A heap far too small for ALLOCATOR: the session's tuned VM config
    // must reach the run.
    let tiny = VmConfig {
        nursery_words: 128,
        tenured_words: 512,
        ..VmConfig::default()
    };
    let session = Session::builder().vm_config(tiny).build().expect("valid");
    let o = session.compile_and_run(ALLOCATOR).expect("compiles");
    assert_eq!(
        o.result,
        VmResult::HeapExhausted,
        "tiny semispace must exhaust: {:?}",
        o.result
    );

    // The same program under the variant's default VM config completes.
    let roomy = Session::with_variant(Variant::Ffb);
    let o = roomy.compile_and_run(ALLOCATOR).expect("compiles");
    assert!(matches!(o.result, VmResult::Value(_)), "{:?}", o.result);
    assert_eq!(o.output, "2000");
}

#[test]
fn fp3_session_defaults_to_fp3_vm_overhead() {
    // `Session::run` routes through the variant-appropriate VM config:
    // sml.fp3 pays the callee-save float-move overhead, so the same
    // machine program costs more cycles than under a default config.
    let session = Session::with_variant(Variant::Fp3);
    let c = session.compile(PROGRAM).expect("compiles");
    let tuned = session.run(&c);
    let plain = c.run_with(&VmConfig::default());
    assert_eq!(tuned.output, plain.output);
    assert!(
        tuned.stats.cycles > plain.stats.cycles,
        "fp3 overhead must cost cycles: {} vs {}",
        tuned.stats.cycles,
        plain.stats.cycles
    );
}

#[test]
fn builder_rejects_invalid_configurations() {
    assert!(
        Session::builder().cache_capacity(0).build().is_err(),
        "zero-capacity enabled cache"
    );
    assert!(
        Session::builder()
            .cache(false)
            .cache_capacity(0)
            .build()
            .is_ok(),
        "capacity is irrelevant when the cache is off"
    );
    let zero_cycles = VmConfig {
        max_cycles: 0,
        ..VmConfig::default()
    };
    assert!(Session::builder().vm_config(zero_cycles).build().is_err());
    let inverted = VmConfig {
        nursery_words: 1024,
        tenured_words: 512,
        ..VmConfig::default()
    };
    assert!(
        Session::builder().vm_config(inverted).build().is_err(),
        "nursery larger than the semispace"
    );
    let bad_fault = FaultInject {
        fail_alloc_at: Some(0),
        gc_every_n_allocs: None,
        yield_every_n_slices: None,
    };
    assert!(
        Session::builder().fault_inject(bad_fault).build().is_err(),
        "fail_alloc_at is 1-based; zero is invalid"
    );
}

#[test]
fn variant_from_str_round_trips() {
    for v in Variant::ALL {
        assert_eq!(v.name().parse::<Variant>(), Ok(v), "full name {}", v.name());
        let short = v.name().strip_prefix("sml.").unwrap();
        assert_eq!(short.parse::<Variant>(), Ok(v), "short name {short}");
    }
    assert!("sml.bogus".parse::<Variant>().is_err());
    let msg = "bogus".parse::<Variant>().unwrap_err().to_string();
    assert!(msg.contains("nrp"), "error lists accepted spellings: {msg}");
}
