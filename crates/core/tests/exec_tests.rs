//! Differential execution tests: every compiler variant must produce the
//! same output for the same program, and that output must be the correct
//! one.

use smlc::{CompileError, Compiled, Session, Variant, VmResult};

/// Compiles through a fresh single-variant session.
fn compile(src: &str, v: Variant) -> Result<Compiled, CompileError> {
    Session::with_variant(v).compile(src)
}

/// Compiles and runs under every variant; asserts all outputs equal
/// `expect` and the result is a normal halt.
fn check(src: &str, expect: &str) {
    for v in Variant::ALL {
        let c = compile(src, v).unwrap_or_else(|e| panic!("[{v}] compile failed: {e}\n{src}"));
        let o = c.run();
        assert!(
            matches!(o.result, VmResult::Value(_)),
            "[{v}] abnormal result {:?} for:\n{src}",
            o.result
        );
        assert_eq!(o.output, expect, "[{v}] wrong output for:\n{src}");
    }
}

/// Expects an uncaught exception with the given name under every variant.
fn check_uncaught(src: &str, name: &str) {
    for v in Variant::ALL {
        let c = compile(src, v).unwrap_or_else(|e| panic!("[{v}] compile failed: {e}"));
        let o = c.run();
        assert_eq!(
            o.result,
            VmResult::Uncaught(name.to_owned()),
            "[{v}] expected uncaught {name} for:\n{src}"
        );
    }
}

fn p(e: &str) -> String {
    format!("val _ = print ({e}) val _ = print \"\\n\"")
}

#[test]
fn integers() {
    check(&format!("val x = 2 + 3 * 4 {}", p("itos x")), "14\n");
    check(&format!("val x = 17 div 5 {}", p("itos x")), "3\n");
    check(&format!("val x = 17 mod 5 {}", p("itos x")), "2\n");
    check(&format!("val x = ~3 + 5 {}", p("itos x")), "2\n");
    check(
        &format!("val x = ~ 7 {}", p("itos x")),
        "~-7\n".trim_start_matches('~'),
    ); // -7
}

#[test]
fn booleans_and_comparisons() {
    check(
        &format!(
            "val x = if 3 < 4 andalso 5 >= 5 then 1 else 0 {}",
            p("itos x")
        ),
        "1\n",
    );
    check(
        &format!(
            "val x = if 3 = 4 orelse 4 <> 4 then 1 else 0 {}",
            p("itos x")
        ),
        "0\n",
    );
    check(
        &format!("val x = if \"abc\" < \"abd\" then 1 else 0 {}", p("itos x")),
        "1\n",
    );
}

#[test]
fn reals() {
    check(&format!("val x = 1.5 + 2.25 {}", p("rtos x")), "3.75\n");
    check(&format!("val x = 10.0 / 4.0 {}", p("rtos x")), "2.5\n");
    check(&format!("val x = floor 3.7 {}", p("itos x")), "3\n");
    check(&format!("val x = real 7 + 0.5 {}", p("rtos x")), "7.5\n");
    check(&format!("val x = sqrt 16.0 {}", p("rtos x")), "4.0\n");
}

#[test]
fn recursion() {
    check(
        &format!(
            "fun fact n = if n = 0 then 1 else n * fact (n - 1) {}",
            p("itos (fact 10)")
        ),
        "3628800\n",
    );
    check(
        &format!(
            "fun fib n = if n < 2 then n else fib (n - 1) + fib (n - 2) {}",
            p("itos (fib 15)")
        ),
        "610\n",
    );
}

#[test]
fn float_loops() {
    check(
        &format!(
            "fun lp (s, n) = if n = 0 then s else lp (s + 0.5, n - 1) {}",
            p("rtos (lp (0.0, 100))")
        ),
        "50.0\n",
    );
}

#[test]
fn higher_order_functions() {
    check(
        &format!(
            "fun map f nil = nil | map f (x :: r) = f x :: map f r
             fun sum nil = 0 | sum (x :: r) = x + sum r
             {}",
            p("itos (sum (map (fn x => x * x) [1, 2, 3, 4]))")
        ),
        "30\n",
    );
    check(
        &format!(
            "fun foldl f a nil = a | foldl f a (x :: r) = foldl f (f (x, a)) r
             {}",
            p("itos (foldl (fn (x, a) => x + a) 0 [10, 20, 30])")
        ),
        "60\n",
    );
}

#[test]
fn quad_example() {
    // The paper's §1 example: quad h 1.05 where h is monomorphic real.
    check(
        &format!(
            "fun quad f x = f (f (f (f x)))
             fun h (y : real) = y * 2.0
             {}",
            p("rtos (quad h 1.0)")
        ),
        "16.0\n",
    );
}

#[test]
fn float_record_unzip() {
    // Figure 2: lists of flat real pairs.
    check(
        &format!(
            "fun unzip nil = (nil, nil)
               | unzip ((a, b) :: r) = let val (xs, ys) = unzip r in (a :: xs, b :: ys) end
             fun suml nil = 0.0 | suml (x :: r) = x + suml r
             val (xs, ys) = unzip [(1.5, 10.0), (2.5, 20.0), (3.0, 30.0)]
             {}",
            p("rtos (suml xs + suml ys)")
        ),
        "67.0\n",
    );
}

#[test]
fn datatypes() {
    check(
        &format!(
            "datatype 'a tree = Leaf | Node of 'a tree * 'a * 'a tree
             fun insert (Leaf, x : int) = Node (Leaf, x, Leaf)
               | insert (Node (l, y, r), x) =
                   if x < y then Node (insert (l, x), y, r)
                   else Node (l, y, insert (r, x))
             fun total Leaf = 0 | total (Node (l, x, r)) = total l + x + total r
             fun build (nil, t) = t | build (x :: rest, t) = build (rest, insert (t, x))
             {}",
            p("itos (total (build ([5, 3, 8, 1, 9], Leaf)))")
        ),
        "26\n",
    );
    check(
        &format!(
            "datatype color = Red | Green | Blue
             fun code Red = 1 | code Green = 2 | code Blue = 3
             {}",
            p("itos (code Green + code Blue)")
        ),
        "5\n",
    );
    check(
        &format!(
            "datatype shape = Circle of real | Rect of real * real
             fun area (Circle r) = r * r * 3.0 | area (Rect (w, h)) = w * h
             {}",
            p("rtos (area (Circle 2.0) + area (Rect (3.0, 4.0)))")
        ),
        "24.0\n",
    );
}

#[test]
fn options_and_patterns() {
    check(
        &format!(
            "fun get (SOME x) = x | get NONE = 0
             val a = get (SOME 41)
             val b = get NONE
             {}",
            p("itos (a + b)")
        ),
        "41\n",
    );
}

#[test]
fn exceptions() {
    check(
        &format!(
            "exception Neg of int
             fun f x = if x < 0 then raise Neg x else x * 2
             val a = f 21 handle Neg n => n
             {}",
            p("itos a")
        ),
        "42\n",
    );
    check(
        &format!(
            "exception E1
             exception E2 of int
             fun risky 0 = raise E1 | risky 1 = raise E2 7 | risky n = n * 100
             val r = (risky 0 handle E1 => 1) + (risky 1 handle E2 n => n) + risky 2
             {}",
            p("itos r")
        ),
        "208\n",
    );
    check(
        &format!(
            "val d = (1 div 0) handle Div => ~1
             {}",
            p("itos d")
        ),
        "-1\n",
    );
    check(
        &format!(
            "val s = (strsub (\"abc\", 9); 0) handle Subscript => 1
             {}",
            p("itos s")
        ),
        "1\n",
    );
}

#[test]
fn uncaught_exceptions() {
    check_uncaught("exception Boom val _ = raise Boom", "Boom");
    check_uncaught("val x = 1 div 0", "Div");
    check_uncaught("fun f 0 = 1 val x = f 3", "Match");
}

#[test]
fn handler_restoration() {
    // After a handled exception, the outer handler is restored.
    check(
        &format!(
            "exception A exception B
             fun g () = (raise A) handle B => 0
             val r = g () handle A => 42
             {}",
            p("itos r")
        ),
        "42\n",
    );
}

#[test]
fn refs_and_loops() {
    check(
        &format!(
            "val i = ref 0
             val s = ref 0
             val _ = while !i < 10 do (s := !s + !i; i := !i + 1)
             {}",
            p("itos (!s)")
        ),
        "45\n",
    );
    check(
        &format!(
            "val r = ref 1.5
             val _ = r := !r + 1.0
             {}",
            p("rtos (!r)")
        ),
        "2.5\n",
    );
}

#[test]
fn arrays() {
    check(
        &format!(
            "val a = array (10, 0)
             fun fill i = if i = 10 then () else (aupdate (a, i, i * i); fill (i + 1))
             val _ = fill 0
             fun total (i, s) = if i = 10 then s else total (i + 1, s + asub (a, i))
             {}",
            p("itos (total (0, 0))")
        ),
        "285\n",
    );
    check(
        &format!(
            "val a = array (3, 1.5)
             val _ = aupdate (a, 1, 2.5)
             {}",
            p("rtos (asub (a, 0) + asub (a, 1))")
        ),
        "4.0\n",
    );
    check(
        &format!("val a = array (7, 0) {}", p("itos (alength a)")),
        "7\n",
    );
}

#[test]
fn strings() {
    check(
        &format!("val s = \"foo\" ^ \"bar\" {}", p("s ^ itos (size s)")),
        "foobar6\n",
    );
    check(
        &format!("val c = strsub (\"hello\", 1) {}", p("itos (ord c)")),
        "101\n",
    );
    check(
        &format!(
            "val x = if \"same\" = \"same\" then 1 else 0 {}",
            p("itos x")
        ),
        "1\n",
    );
}

#[test]
fn polymorphic_equality_on_structures() {
    check(
        &format!(
            "fun member (x, nil) = false
               | member (x, y :: r) = x = y orelse member (x, r)
             val a = if member ((1, 2), [(3, 4), (1, 2)]) then 1 else 0
             val b = if member (\"q\", [\"a\", \"b\"]) then 1 else 0
             {}",
            p("itos (a * 10 + b)")
        ),
        "10\n",
    );
    // Real equality (SML'90) — and the MTD Life scenario.
    check(
        &format!(
            "fun member (x, nil) = false
               | member (x, y :: r) = x = y orelse member (x, r)
             val a = if member (1.5, [1.0, 1.5, 2.0]) then 1 else 0
             {}",
            p("itos a")
        ),
        "1\n",
    );
}

#[test]
fn callcc_basics() {
    check(
        &format!("val x = callcc (fn k => 1 + throw k 41) {}", p("itos x")),
        "41\n",
    );
    check(
        &format!("val x = callcc (fn k => 42) {}", p("itos x")),
        "42\n",
    );
    check(
        &format!(
            "val r = 1 + callcc (fn k => if true then throw k 10 else 0)
             {}",
            p("itos r")
        ),
        "11\n",
    );
}

#[test]
fn structures_and_signatures() {
    check(
        &format!(
            "structure S = struct val base = 10 fun add x = x + base end
             {}",
            p("itos (S.add 32)")
        ),
        "42\n",
    );
    check(
        &format!(
            "signature SIG = sig val f : int -> int end
             structure Impl = struct fun f x = x * 2 fun hidden x = x end
             structure A : SIG = Impl
             {}",
            p("itos (A.f 21)")
        ),
        "42\n",
    );
}

#[test]
fn abstraction_execution() {
    check(
        &format!(
            "signature SIG = sig type t val mk : real * real -> t val first : t -> real end
             structure Impl = struct
               type t = real * real
               fun mk (a, b) = (a, b)
               fun first ((a, b) : t) = a
             end
             abstraction A : SIG = Impl
             {}",
            p("rtos (A.first (A.mk (2.5, 9.0)))")
        ),
        "2.5\n",
    );
}

#[test]
fn functor_execution() {
    check(
        &format!(
            "signature ORD = sig type t val le : t * t -> bool end
             functor Max (X : ORD) = struct fun max (a, b) = if X.le (a, b) then b else a end
             structure IntOrd = struct type t = int fun le (a : int, b) = a <= b end
             structure RealOrd = struct type t = real fun le (a : real, b) = a <= b end
             structure MI = Max (IntOrd)
             structure MR = Max (RealOrd)
             val i = MI.max (3, 7)
             val r = MR.max (2.5, 1.5)
             {}",
            p("itos i ^ \" \" ^ rtos r")
        ),
        "7 2.5\n",
    );
}

#[test]
fn functor_with_exception() {
    check(
        &format!(
            "signature S = sig exception E val f : int -> int end
             structure Impl = struct exception E fun f 0 = raise E | f n = n end
             functor F (X : S) = struct fun safe n = X.f n handle X.E => ~1 end
             structure A = F (Impl)
             {}",
            p("itos (A.safe 0 + A.safe 5)")
        ),
        "4\n",
    );
}

#[test]
fn nested_modules() {
    check(
        &format!(
            "structure Outer = struct
               structure Inner = struct val v = 2.5 fun scale x = x * v end
               val w = Inner.scale 4.0
             end
             {}",
            p("rtos (Outer.Inner.scale Outer.w)")
        ),
        "25.0\n",
    );
}

#[test]
fn pattern_match_order() {
    check(
        &format!(
            "fun f (0, _) = 1 | f (_, 0) = 2 | f (a, b) = a + b
             {}",
            p("itos (f (0, 5) * 100 + f (5, 0) * 10 + f (3, 4))")
        ),
        "127\n",
    );
    check(
        &format!(
            "fun g \"a\" = 1 | g \"b\" = 2 | g _ = 3
             {}",
            p("itos (g \"a\" * 100 + g \"b\" * 10 + g \"z\")")
        ),
        "123\n",
    );
}

#[test]
fn deep_datatype_patterns() {
    check(
        &format!(
            "datatype t = L | N of t * int * t
             fun depth L = 0 | depth (N (l, _, r)) =
               let val a = depth l val b = depth r
               in 1 + (if a < b then b else a) end
             {}",
            p("itos (depth (N (N (L, 1, N (L, 2, L)), 3, L)))")
        ),
        "3\n",
    );
}

#[test]
fn curried_functions() {
    check(
        &format!(
            "fun add3 a b c = a + b + c
             val add12 = add3 5 7
             {}",
            p("itos (add12 30)")
        ),
        "42\n",
    );
}

#[test]
fn mutual_recursion() {
    check(
        &format!(
            "fun even 0 = true | even n = odd (n - 1)
             and odd 0 = false | odd n = even (n - 1)
             {}",
            p("itos (if even 10 andalso odd 7 then 1 else 0)")
        ),
        "1\n",
    );
}

#[test]
fn list_append_and_rev() {
    check(
        &format!(
            "fun op @ (nil, ys) = ys | op @ (x :: xs, ys) = x :: (xs @ ys)
             fun rev nil = nil | rev (x :: r) = rev r @ [x]
             fun sum nil = 0 | sum (x :: r) = x + sum r
             fun hd (x :: _) = x
             {}",
            p("itos (hd (rev [1, 2, 9]) * 100 + sum ([1, 2] @ [3, 4]))")
        ),
        "910\n",
    );
}

#[test]
fn gc_survives_deep_structures() {
    // Allocate enough to force multiple collections with live data.
    check(
        &format!(
            "fun build 0 = nil | build n = (n, n * 2) :: build (n - 1)
             fun total nil = 0 | total ((a, b) :: r) = a + b + total r
             fun iter (0, acc) = acc
               | iter (k, acc) = iter (k - 1, acc + total (build 100))
             {}",
            p("itos (iter (100, 0))")
        ),
        &format!("{}\n", 100 * (100 * 101 / 2 * 3)),
    );
}

#[test]
fn gc_preserves_floats() {
    check(
        &format!(
            "fun build 0 = nil | build n = (real n, real n * 0.5) :: build (n - 1)
             fun total nil = 0.0 | total ((a, b) :: r) = a + b + total r
             fun iter (0, acc) = acc
               | iter (k, acc : real) = iter (k - 1, acc + total (build 50))
             {}",
            p("rtos (iter (200, 0.0))")
        ),
        &format!("{:?}\n", 200.0f64 * (50.0 * 51.0 / 2.0 * 1.5)),
    );
}

#[test]
fn char_handling() {
    check(
        &format!(
            "fun upper c = if ord c >= 97 andalso ord c <= 122 then chr (ord c - 32) else c
             val s = \"hello\"
             fun go (i, acc) = if i = size s then acc
                               else go (i + 1, acc + ord (upper (strsub (s, i))))
             {}",
            p("itos (go (0, 0))")
        ),
        &format!("{}\n", "HELLO".bytes().map(|b| b as i64).sum::<i64>()),
    );
}

#[test]
fn dense_constant_dispatch_uses_switch() {
    // A dense constant-constructor match compiles to a jump table
    // (paper 5.2: "pattern matches are compiled into switch
    // statements") and still runs correctly under every variant.
    check(
        &format!(
            "datatype d = A | B | C | D | E
             fun code A = 10 | code B = 20 | code C = 30 | code D = 40 | code E = 50
             fun go (nil, acc) = acc | go (x :: r, acc) = go (r, acc + code x)
             {}",
            p("itos (go ([A, C, E, B, D, A], 0))")
        ),
        "160\n",
    );
    // Dense integer literals too.
    check(
        &format!(
            "fun f 0 = 5 | f 1 = 6 | f 2 = 7 | f 3 = 8 | f n = n
             {}",
            p("itos (f 0 * 1000 + f 2 * 100 + f 3 * 10 + f 9)")
        ),
        "5789\n",
    );
}

#[test]
fn argument_swap_cycles() {
    // Swapping arguments in a tail call creates a register-move cycle;
    // the parallel-move scratch register must not collide with the
    // callee-address save (regression for a codegen bug).
    check(
        &format!(
            "fun f (a, b, n) = if n = 0 then a * 10 + b else f (b, a, n - 1)
             {}",
            p("itos (f (1, 2, 5) * 100 + f (1, 2, 4))")
        ),
        "2112\n",
    );
    // Three-cycle rotation.
    check(
        &format!(
            "fun g (a, b, c, n) = if n = 0 then a * 100 + b * 10 + c else g (c, a, b, n - 1)
             {}",
            p("itos (g (1, 2, 3, 4))")
        ),
        "312\n",
    );
    // Float swap cycle (float parallel moves).
    check(
        &format!(
            "fun h (x : real, y : real, n) = if n = 0 then x - y else h (y, x, n - 1)
             {}",
            p("rtos (h (5.5, 2.5, 3))")
        ),
        "-3.0\n",
    );
}

#[test]
fn match_warnings_are_reported() {
    let c = compile(
        "datatype t = A | B | C
         fun f A = 1 | f B = 2
         val (x :: _) = [f A]",
        Variant::Ffb,
    )
    .unwrap();
    let w = &c.stats.warnings;
    assert!(
        w.iter().any(|m| m.contains("match nonexhaustive")),
        "missing match warning: {w:?}"
    );
    assert!(
        w.iter().any(|m| m.contains("binding nonexhaustive")),
        "missing binding warning: {w:?}"
    );
    // Complete programs warn about nothing.
    let clean = compile("fun f true = 1 | f false = 0 val x = f true", Variant::Ffb).unwrap();
    assert!(
        clean.stats.warnings.is_empty(),
        "{:?}",
        clean.stats.warnings
    );
}

#[test]
fn builtin_order_datatype() {
    check(
        &format!(
            "fun cmp (a : int, b) = if a < b then LESS else if a > b then GREATER else EQUAL
             fun code LESS = 1 | code EQUAL = 2 | code GREATER = 3
             {}",
            p("itos (code (cmp (1, 2)) * 100 + code (cmp (5, 5)) * 10 + code (cmp (9, 2)))")
        ),
        "123\n",
    );
}

#[test]
fn string_builders() {
    check(
        &format!(
            "fun join (nil, sep) = \"\"
               | join (s :: nil, sep) = s
               | join (s :: rest, sep) = s ^ sep ^ join (rest, sep)
             {}",
            p("join ([\"a\", \"bb\", \"ccc\"], \", \")")
        ),
        "a, bb, ccc\n",
    );
}

#[test]
fn polymorphic_functions_in_data_structures() {
    // Functions stored in records and lists keep their conventions via
    // coercion wrappers (paper 4.2's arrow coercions).
    check(
        &format!(
            "val fns = [(fn (x : real) => x + 1.0, 1), (fn x => x * 2.0, 2)]
             fun total nil = 0.0
               | total ((f, w) :: r) = f (real w) + total r
             {}",
            p("rtos (total fns)")
        ),
        "6.0\n",
    );
}

#[test]
fn mutual_recursion_across_floats() {
    check(
        &format!(
            "fun fa (x : real, n) = if n = 0 then x else fb (x * 2.0, n - 1)
             and fb (x, n) = if n = 0 then x else fa (x + 1.0, n - 1)
             {}",
            p("rtos (fa (1.0, 5))")
        ),
        &format!("{:?}\n", {
            // fa(1,5)->fb(2,4)->fa(3,3)->fb(6,2)->fa(7,1)->fb(14,0)=14
            14.0f64
        }),
    );
}

#[test]
fn curried_module_functions() {
    check(
        &format!(
            "structure C = struct fun scale (k : real) x = k * x end
             val double = C.scale 2.0
             fun map f nil = nil | map f (x :: r) = f x :: map f r
             fun suml nil = 0.0 | suml (x :: r) = x + suml r
             val xs = map double [1.0, 2.5]
             {}",
            p("rtos (suml xs)")
        ),
        "7.0\n",
    );
}

#[test]
fn deeply_nested_closures() {
    check(
        &format!(
            "fun outer a =
               let
                 fun mid b =
                   let
                     fun inner c = a + b + c
                   in inner end
               in mid end
             val f = outer 100
             val g = f 20
             {}",
            p("itos (g 3 + outer 1 2 3)")
        ),
        &format!("{}\n", 123 + 6),
    );
}

#[test]
fn large_tuples_spread_up_to_limit() {
    // Ten fields is the paper's spread threshold; eleven falls back to a
    // heap tuple. Both must run identically.
    check(
        &format!(
            "fun sum10 (a, b, c, d, e, f, g, h, i, j) =
               a + b + c + d + e + f + g + h + i + j
             fun sum11 (a, b, c, d, e, f, g, h, i, j, k) =
               a + b + c + d + e + f + g + h + i + j + k
             {}",
            p("itos (sum10 (1,2,3,4,5,6,7,8,9,10) + sum11 (1,2,3,4,5,6,7,8,9,10,11))")
        ),
        &format!("{}\n", 55 + 66),
    );
}
