//! The deprecated free-function shims must keep compiling callers and
//! producing the same artifacts as the session API they forward to.
//! This file is the one sanctioned user of the old surface; everything
//! else in the workspace builds warning-free against the new one.

#![allow(deprecated)]

use smlc::{
    compile, compile_and_run, compile_full, compile_with, Limits, OptConfig, Session, Variant,
    VmResult,
};

const SRC: &str = r#"
    fun twice f x = f (f x)
    val _ = print (itos (twice (fn n => n + 3) 10))
"#;

#[test]
fn shims_match_session_output() {
    let old = compile(SRC, Variant::Ffb).expect("compiles");
    let new = Session::with_variant(Variant::Ffb)
        .compile(SRC)
        .expect("compiles");
    assert_eq!(format!("{:?}", old.machine), format!("{:?}", new.machine));
    assert_eq!(old.stats.code_size, new.stats.code_size);
    assert_eq!(old.run().output, "16");
}

#[test]
fn compile_with_applies_optimizer_config() {
    let none = OptConfig {
        max_rounds: 1,
        ..OptConfig::default()
    };
    let c = compile_with(SRC, Variant::Ffb, &none).expect("compiles");
    assert_eq!(c.run().output, "16");
}

#[test]
fn compile_full_enforces_limits() {
    let c = compile_full(SRC, Variant::Nrp, &OptConfig::default(), &Limits::default())
        .expect("compiles");
    assert_eq!(c.run().output, "16");
    let tiny = Limits {
        max_cps_ops: 1,
        ..Limits::default()
    };
    let err = compile_full(SRC, Variant::Nrp, &OptConfig::default(), &tiny).unwrap_err();
    assert_eq!(err.kind(), "limit");
}

#[test]
fn compile_and_run_uses_default_vm() {
    // The shim's historic behavior: sml.ffb under the *default* VM
    // configuration, whatever the caller might have tuned elsewhere.
    // `Session::compile_and_run` is the fixed replacement.
    let o = compile_and_run(SRC).expect("compiles");
    assert!(matches!(o.result, VmResult::Value(_)));
    assert_eq!(o.output, "16");
}

#[test]
fn variant_all_shim_matches_const() {
    assert_eq!(Variant::all(), Variant::ALL);
}
