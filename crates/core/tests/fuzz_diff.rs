//! Differential fuzzing: `sml-testkit` generates random expression trees,
//! a tiny reference interpreter evaluates them in Rust, and every
//! compiler variant must produce the same answer through the full
//! pipeline (parse → elaborate → translate → CPS → closure → codegen →
//! VM). Any divergence pinpoints a representation or convention bug.
//!
//! `div`/`mod` divisors are arbitrary subexpressions — negative,
//! variable, and occasionally zero — so the floor-division semantics
//! (DESIGN.md §8) and the `Div` exception path are both under
//! differential test, before and after constant folding. Every case
//! additionally runs under the pre-decoded threaded dispatch engine and
//! must match the decode loop counter-for-counter.

use sml_testkit::{run_cases, Rng};
use smlc::{CompileError, Compiled, Dispatch, Session, Variant, VmConfig, VmResult};

/// Compiles through a fresh single-variant session.
fn compile(src: &str, v: Variant) -> Result<Compiled, CompileError> {
    Session::with_variant(v).compile(src)
}

/// A generated integer expression. Division and mod take arbitrary
/// subexpressions on both sides: divisors may be negative, variable,
/// or zero (in which case the program must raise `Div`).
#[derive(Clone, Debug)]
enum E {
    Lit(i32),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    Div(Box<E>, Box<E>),
    Mod(Box<E>, Box<E>),
    If(Box<B>, Box<E>, Box<E>),
    Let(Box<E>, Box<E>),
    /// Apply `fn x => x + k` — exercises closures and calls.
    App(i32, Box<E>),
    /// Build a pair and select one side — exercises records.
    Pair(Box<E>, Box<E>, bool),
}

/// A generated boolean expression.
#[derive(Clone, Debug)]
enum B {
    Lt(E, E),
    Eq(E, E),
    Not(Box<B>),
    And(Box<B>, Box<B>),
}

/// Why reference evaluation stopped early.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Stop {
    /// Division or mod by zero: the program raises the `Div` exception.
    Div,
}

/// SML floor division, written independently of the compiler's
/// `sml_cps::floor_div` so the fuzzer is a genuine cross-check: start
/// from Rust's truncating quotient and step down when the signs differ
/// and the division is inexact.
fn ref_floor_div(a: i64, b: i64) -> i64 {
    let q = a / b;
    if a % b != 0 && (a < 0) != (b < 0) {
        q - 1
    } else {
        q
    }
}

/// Floor mod via the quotient-remainder law `a = b*q + r`.
fn ref_floor_mod(a: i64, b: i64) -> i64 {
    a - b.wrapping_mul(ref_floor_div(a, b))
}

/// Reference evaluation. `env` is the stack of `Let`-bound values; the
/// innermost binding is `last()`. `Err(Stop::Div)` means the program
/// raises `Div` at this point — matching the compiler's `CheckedDiv`
/// lowering, which binds and tests the **divisor first**, so a zero
/// divisor raises before the dividend is ever evaluated.
fn eval(e: &E, env: &mut Vec<i64>) -> Result<i64, Stop> {
    match e {
        E::Lit(n) => Ok(*n as i64),
        E::Add(a, b) => Ok(eval(a, env)?.wrapping_add(eval(b, env)?)),
        E::Sub(a, b) => Ok(eval(a, env)?.wrapping_sub(eval(b, env)?)),
        E::Mul(a, b) => Ok(eval(a, env)?.wrapping_mul(eval(b, env)?)),
        E::Div(a, d) | E::Mod(a, d) => {
            let dv = eval(d, env)?;
            if dv == 0 {
                return Err(Stop::Div);
            }
            let av = eval(a, env)?;
            Ok(match e {
                E::Div(..) => ref_floor_div(av, dv),
                _ => ref_floor_mod(av, dv),
            })
        }
        E::If(c, t, f) => {
            if beval(c, env)? {
                eval(t, env)
            } else {
                eval(f, env)
            }
        }
        E::Let(bind, body) => {
            let v = eval(bind, env)?;
            env.push(v);
            let r = eval(body, env);
            env.pop();
            r
        }
        E::App(k, a) => Ok(eval(a, env)?.wrapping_add(*k as i64)),
        E::Pair(a, b, first) => {
            let (va, vb) = (eval(a, env)?, eval(b, env)?);
            Ok(if *first { va } else { vb })
        }
    }
}

fn beval(b: &B, env: &mut Vec<i64>) -> Result<bool, Stop> {
    match b {
        B::Lt(a, c) => Ok(eval(a, env)? < eval(c, env)?),
        B::Eq(a, c) => Ok(eval(a, env)? == eval(c, env)?),
        B::Not(x) => Ok(!beval(x, env)?),
        // `andalso` short-circuits: a raising right-hand side is never
        // reached when the left is false.
        B::And(x, y) => Ok(beval(x, env)? && beval(y, env)?),
    }
}

/// Pretty-print as SML source. Negative literals use `~`.
fn sml(e: &E, depth: usize, out: &mut String) {
    match e {
        E::Lit(n) => {
            if *n < 0 {
                out.push_str(&format!("~{}", (*n as i64).unsigned_abs()));
            } else {
                out.push_str(&n.to_string());
            }
        }
        E::Add(a, b) => bin(a, "+", b, depth, out),
        E::Sub(a, b) => bin(a, "-", b, depth, out),
        E::Mul(a, b) => bin(a, "*", b, depth, out),
        E::Div(a, d) => bin(a, "div", d, depth, out),
        E::Mod(a, d) => bin(a, "mod", d, depth, out),
        E::If(c, t, f) => {
            out.push_str("(if ");
            bsml(c, depth, out);
            out.push_str(" then ");
            sml(t, depth, out);
            out.push_str(" else ");
            sml(f, depth, out);
            out.push(')');
        }
        E::Let(bind, body) => {
            out.push_str(&format!("(let val x{depth} = "));
            sml(bind, depth, out);
            out.push_str(" in ");
            sml(body, depth + 1, out);
            out.push_str(" end)");
        }
        E::App(k, a) => {
            if *k < 0 {
                out.push_str(&format!("((fn z => z + ~{}) ", (*k as i64).unsigned_abs()));
            } else {
                out.push_str(&format!("((fn z => z + {k}) "));
            }
            sml(a, depth, out);
            out.push(')');
        }
        E::Pair(a, b, first) => {
            out.push_str(&format!("(#{} (", if *first { 1 } else { 2 }));
            sml(a, depth, out);
            out.push_str(", ");
            sml(b, depth, out);
            out.push_str("))");
        }
    }
}

fn bin(a: &E, op: &str, b: &E, depth: usize, out: &mut String) {
    out.push('(');
    sml(a, depth, out);
    out.push_str(&format!(" {op} "));
    sml(b, depth, out);
    out.push(')');
}

fn bsml(b: &B, depth: usize, out: &mut String) {
    match b {
        B::Lt(a, c) => {
            out.push('(');
            sml(a, depth, out);
            out.push_str(" < ");
            sml(c, depth, out);
            out.push(')');
        }
        B::Eq(a, c) => {
            out.push('(');
            sml(a, depth, out);
            out.push_str(" = ");
            sml(c, depth, out);
            out.push(')');
        }
        // `not` is not in this compiler's initial basis; compare with
        // `false` instead (same CPS branch shape).
        B::Not(x) => {
            out.push('(');
            bsml(x, depth, out);
            out.push_str(" = false)");
        }
        B::And(x, y) => {
            out.push('(');
            bsml(x, depth, out);
            out.push_str(" andalso ");
            bsml(y, depth, out);
            out.push(')');
        }
    }
}

/// `Let` bodies never reference their binder here (the reference
/// interpreter would need de Bruijn plumbing); the binding expression is
/// still evaluated, so effects on code shape remain.
fn gen_expr(rng: &mut Rng, depth: usize) -> E {
    if depth == 0 || rng.range_usize(0, 10) < 3 {
        return E::Lit(rng.range_i32(-100, 100));
    }
    let d = depth - 1;
    match rng.range_usize(0, 9) {
        0 => E::Add(Box::new(gen_expr(rng, d)), Box::new(gen_expr(rng, d))),
        1 => E::Sub(Box::new(gen_expr(rng, d)), Box::new(gen_expr(rng, d))),
        2 => E::Mul(Box::new(gen_expr(rng, d)), Box::new(gen_expr(rng, d))),
        3 => E::Div(Box::new(gen_expr(rng, d)), Box::new(gen_divisor(rng, d))),
        4 => E::Mod(Box::new(gen_expr(rng, d)), Box::new(gen_divisor(rng, d))),
        5 => E::If(
            Box::new(gen_bool(rng, d.min(2), d)),
            Box::new(gen_expr(rng, d)),
            Box::new(gen_expr(rng, d)),
        ),
        6 => E::Let(Box::new(gen_expr(rng, d)), Box::new(gen_expr(rng, d))),
        7 => E::App(rng.range_i32(-20, 20), Box::new(gen_expr(rng, d))),
        _ => E::Pair(
            Box::new(gen_expr(rng, d)),
            Box::new(gen_expr(rng, d)),
            rng.flip(),
        ),
    }
}

/// Divisors skew toward nonzero literals of both signs (so folding can
/// fire and floor semantics get dense coverage) but are sometimes a
/// full subexpression — including, occasionally, a literal zero, which
/// must raise `Div` through every variant and both dispatch engines.
fn gen_divisor(rng: &mut Rng, depth: usize) -> E {
    match rng.range_usize(0, 8) {
        0 => E::Lit(0),
        1 | 2 => gen_expr(rng, depth),
        3..=5 => E::Lit(rng.range_i32(1, 50)),
        _ => E::Lit(rng.range_i32(-50, -1)),
    }
}

fn gen_bool(rng: &mut Rng, depth: usize, edepth: usize) -> B {
    if depth == 0 || rng.flip() {
        let a = gen_expr(rng, edepth.min(2));
        let b = gen_expr(rng, edepth.min(2));
        return if rng.flip() { B::Lt(a, b) } else { B::Eq(a, b) };
    }
    if rng.flip() {
        B::Not(Box::new(gen_bool(rng, depth - 1, edepth)))
    } else {
        B::And(
            Box::new(gen_bool(rng, depth - 1, edepth)),
            Box::new(gen_bool(rng, depth - 1, edepth)),
        )
    }
}

/// The VM's tagged integers are 31-bit; the reference interpreter uses
/// i64. Skip cases whose value (or any intermediate the VM would also
/// compute) overflows — conservatively, skip when the final value does.
fn fits(v: i64) -> bool {
    (-(1 << 30)..(1 << 30)).contains(&v)
}

/// Check for overflow at every node, not just the root, since the VM
/// wraps at 31 bits where i64 would not. A node that raises `Div` has
/// no value to range-check (and in the raising case some conservatively
/// checked subtrees never even evaluate — skipping extra cases is
/// harmless).
fn all_fits(e: &E, env: &mut Vec<i64>) -> bool {
    let node_ok = |v: Result<i64, Stop>| match v {
        Ok(v) => fits(v),
        Err(_) => true,
    };
    match e {
        E::Lit(_) => true,
        E::Add(a, b) | E::Sub(a, b) | E::Mul(a, b) | E::Div(a, b) | E::Mod(a, b) => {
            all_fits(a, env) && all_fits(b, env) && node_ok(eval(e, env))
        }
        E::If(c, t, f) => {
            bool_fits(c, env) && all_fits(t, env) && all_fits(f, env) && node_ok(eval(e, env))
        }
        E::Let(a, b) => {
            if !all_fits(a, env) {
                return false;
            }
            let Ok(v) = eval(a, env) else { return true };
            env.push(v);
            let ok = all_fits(b, env);
            env.pop();
            ok && node_ok(eval(e, env))
        }
        E::App(_, a) => all_fits(a, env) && node_ok(eval(e, env)),
        E::Pair(a, b, _) => all_fits(a, env) && all_fits(b, env),
    }
}

fn bool_fits(b: &B, env: &mut Vec<i64>) -> bool {
    match b {
        B::Lt(a, c) | B::Eq(a, c) => all_fits(a, env) && all_fits(c, env),
        B::Not(x) => bool_fits(x, env),
        B::And(x, y) => bool_fits(x, env) && bool_fits(y, env),
    }
}

#[test]
fn variants_agree_with_reference() {
    run_cases("variants_agree_with_reference", 48, |rng| {
        // Regenerate until the expression stays inside the tagged 31-bit
        // range everywhere (the analogue of proptest's `prop_assume!`).
        let mut env = Vec::new();
        let e = loop {
            let e = gen_expr(rng, 4);
            if all_fits(&e, &mut env) {
                break e;
            }
        };
        let expected = eval(&e, &mut env);

        let mut src = String::from("val _ = print (itos ");
        sml(&e, 0, &mut src);
        src.push(')');

        for v in Variant::ALL {
            let compiled = compile(&src, v)
                .unwrap_or_else(|err| panic!("[{}] compile failed: {err}\n{src}", v.name()));
            let out = compiled.run();
            match &expected {
                Ok(value) => {
                    assert!(
                        matches!(out.result, VmResult::Value(_)),
                        "[{}] abnormal result {:?} for\n{src}",
                        v.name(),
                        out.result
                    );
                    assert_eq!(
                        out.output,
                        value.to_string(),
                        "[{}] wrong value for\n{}",
                        v.name(),
                        src
                    );
                }
                Err(Stop::Div) => {
                    assert_eq!(
                        out.result,
                        VmResult::Uncaught("Div".to_owned()),
                        "[{}] division by zero must raise Div for\n{src}",
                        v.name()
                    );
                    assert_eq!(out.output, "", "[{}] raised before printing", v.name());
                }
            }
            // The threaded engine must be observationally identical —
            // result, output, and every counter — on the same program.
            let thr = compiled.run_with(&VmConfig {
                dispatch: Dispatch::Threaded,
                ..v.vm_config()
            });
            assert_eq!(
                out.result,
                thr.result,
                "[{}] engines diverge\n{src}",
                v.name()
            );
            assert_eq!(
                out.output,
                thr.output,
                "[{}] output diverges\n{src}",
                v.name()
            );
            assert_eq!(
                out.stats,
                thr.stats,
                "[{}] RunStats diverge\n{src}",
                v.name()
            );
        }
    });
}

/// A generated float expression. No reference interpreter is needed:
/// the property is that all six variants — whose float representations
/// differ radically (boxed vs. unboxed, FP-register args vs. memory) —
/// print byte-identical output.
#[derive(Clone, Debug)]
enum FE {
    Lit(f64),
    Add(Box<FE>, Box<FE>),
    Sub(Box<FE>, Box<FE>),
    Mul(Box<FE>, Box<FE>),
    If(Box<FE>, Box<FE>, Box<FE>, Box<FE>), // if a < b then t else f
    Let(Box<FE>, Box<FE>),
    /// Apply `fn x => x * k` — a float closure call.
    App(f64, Box<FE>),
    /// `#i (a, b)` — a flat float record under ffb, boxed under nrp/rep.
    Pair(Box<FE>, Box<FE>, bool),
}

fn fsml(e: &FE, depth: usize, out: &mut String) {
    let lit = |v: f64, out: &mut String| {
        if v < 0.0 {
            out.push_str(&format!("~{:?}", -v));
        } else {
            out.push_str(&format!("{v:?}"));
        }
    };
    match e {
        FE::Lit(v) => lit(*v, out),
        FE::Add(a, b) => fbin(a, "+", b, depth, out),
        FE::Sub(a, b) => fbin(a, "-", b, depth, out),
        FE::Mul(a, b) => fbin(a, "*", b, depth, out),
        FE::If(a, b, t, f) => {
            out.push_str("(if ");
            fbin(a, "<", b, depth, out);
            out.push_str(" then ");
            fsml(t, depth, out);
            out.push_str(" else ");
            fsml(f, depth, out);
            out.push(')');
        }
        FE::Let(bind, body) => {
            out.push_str(&format!("(let val y{depth} : real = "));
            fsml(bind, depth, out);
            out.push_str(" in ");
            fsml(body, depth + 1, out);
            out.push_str(" end)");
        }
        FE::App(k, a) => {
            out.push_str("((fn (x : real) => x * ");
            lit(*k, out);
            out.push_str(") ");
            fsml(a, depth, out);
            out.push(')');
        }
        FE::Pair(a, b, first) => {
            out.push_str(&format!("(#{} (", if *first { 1 } else { 2 }));
            fsml(a, depth, out);
            out.push_str(", ");
            fsml(b, depth, out);
            out.push_str("))");
        }
    }
}

fn fbin(a: &FE, op: &str, b: &FE, depth: usize, out: &mut String) {
    out.push('(');
    fsml(a, depth, out);
    out.push_str(&format!(" {op} "));
    fsml(b, depth, out);
    out.push(')');
}

fn gen_fexpr(rng: &mut Rng, depth: usize) -> FE {
    // Small half-integral literals keep every intermediate exact in f64,
    // so there is no rounding for a formatting difference to hide in.
    if depth == 0 || rng.range_usize(0, 10) < 3 {
        return FE::Lit(rng.range_i32(-32, 32) as f64 / 2.0);
    }
    let d = depth - 1;
    match rng.range_usize(0, 7) {
        0 => FE::Add(Box::new(gen_fexpr(rng, d)), Box::new(gen_fexpr(rng, d))),
        1 => FE::Sub(Box::new(gen_fexpr(rng, d)), Box::new(gen_fexpr(rng, d))),
        2 => FE::Mul(Box::new(gen_fexpr(rng, d)), Box::new(gen_fexpr(rng, d))),
        3 => FE::If(
            Box::new(gen_fexpr(rng, d)),
            Box::new(gen_fexpr(rng, d)),
            Box::new(gen_fexpr(rng, d)),
            Box::new(gen_fexpr(rng, d)),
        ),
        4 => FE::Let(Box::new(gen_fexpr(rng, d)), Box::new(gen_fexpr(rng, d))),
        5 => FE::App(
            rng.range_i32(-8, 8) as f64 / 2.0,
            Box::new(gen_fexpr(rng, d)),
        ),
        _ => FE::Pair(
            Box::new(gen_fexpr(rng, d)),
            Box::new(gen_fexpr(rng, d)),
            rng.flip(),
        ),
    }
}

#[test]
fn float_variants_agree() {
    run_cases("float_variants_agree", 32, |rng| {
        let e = gen_fexpr(rng, 4);
        let mut src = String::from("val _ = print (rtos ");
        fsml(&e, 0, &mut src);
        src.push(')');

        let mut reference: Option<String> = None;
        for v in Variant::ALL {
            let compiled = compile(&src, v)
                .unwrap_or_else(|err| panic!("[{}] compile failed: {err}\n{src}", v.name()));
            let out = compiled.run();
            assert!(
                matches!(out.result, VmResult::Value(_)),
                "[{}] abnormal result {:?} for\n{src}",
                v.name(),
                out.result
            );
            match &reference {
                None => reference = Some(out.output),
                Some(r) => assert_eq!(
                    &out.output,
                    r,
                    "[{}] diverges from sml.nrp for\n{}",
                    v.name(),
                    src
                ),
            }
        }
    });
}

/// Random integer `case` dispatch: arms over literals drawn from a
/// small range (dense enough to trigger the jump-table path, sparse
/// enough to sometimes stay a branch chain) plus a wildcard. Every
/// variant must pick the same arm as direct lookup.
#[test]
fn switch_dispatch_matches_reference() {
    run_cases("switch_dispatch_matches_reference", 32, |rng| {
        let mut arms = std::collections::BTreeMap::new();
        for _ in 0..rng.range_usize(1, 12) {
            arms.insert(rng.range_i64(0, 24), rng.range_i64(-1000, 1000));
        }
        let scrutinee = rng.range_i64(0, 24);
        let default = rng.range_i64(-1000, 1000);

        // Arm order in source follows BTreeMap order; duplicates are
        // impossible by construction.
        let mut src = String::from("fun f n = case n of ");
        for (i, (k, v)) in arms.iter().enumerate() {
            if i > 0 {
                src.push_str(" | ");
            }
            let v = if *v < 0 {
                format!("~{}", -v)
            } else {
                v.to_string()
            };
            src.push_str(&format!("{k} => {v}"));
        }
        let d = if default < 0 {
            format!("~{}", -default)
        } else {
            default.to_string()
        };
        src.push_str(&format!(
            " | _ => {d}\nval _ = print (itos (f {scrutinee}))"
        ));

        let expected = arms.remove(&scrutinee).unwrap_or(default);
        for v in Variant::ALL {
            let compiled = compile(&src, v)
                .unwrap_or_else(|err| panic!("[{}] compile failed: {err}\n{src}", v.name()));
            let out = compiled.run();
            assert_eq!(
                out.output,
                expected.to_string(),
                "[{}] wrong arm for\n{}",
                v.name(),
                src
            );
        }
    });
}
