//! Mutation tests for the typed-IR verification pipeline.
//!
//! The catalog in `sml_testkit::mutate` holds 30+ deterministic IR
//! corruptions across all four verified forms (LEXP, CPS, closed CPS,
//! bytecode). Each test below drives real fixture programs through the
//! actual compiler stages, applies every mutation to the stage's
//! output, and asserts the stage's verifier rejects the mutant — and
//! reports the expected rule tag when the mutation pins one down.
//! This is the evidence that the verifiers detect the corruption at
//! the phase that introduced it, not three phases later as a VM trap.

use sml_cps::{
    close, convert, optimize, verify_closed_program, verify_cps, ClosedProgram, CpsProgram,
    OptConfig,
};
use sml_lambda::{translate, Lexp, LtyInterner};
use sml_testkit::mutate::{bytecode_mutations, closed_mutations, cps_mutations, lexp_mutations};
use sml_vm::{codegen, verify_bytecode, MachineProgram};
use smlc::{SessionBuilder, Variant, VerifyIr};

/// Fixture programs, chosen so every IR construct the mutations target
/// appears in at least one: polymorphic wraps, multi-way datatype
/// dispatch, exceptions, records, floats, refs, and recursion.
const FIXTURES: &[&str] = &[
    // Polymorphism across int/real/string: wraps and unwraps.
    "fun id x = x
     fun pair x y = (x, y)
     val p = pair (id 1) (id 2.5)
     val q = pair (id \"s\") (#1 p)
     val _ = print (itos (#2 q))",
    // Multi-constructor datatype: SwitchInt dispatch plus recursion.
    "datatype d = A | B | C | D | E of int
     fun v A = 1 | v B = 2 | v C = 3 | v D = 4 | v (E n) = n
     fun sum [] = 0 | sum (x :: r) = v x + sum r
     val _ = print (itos (sum [A, B, C, D, E 9]))",
    // Exceptions: raise and handle, plus float arithmetic.
    "exception Neg of int
     fun f x = if x < 0 then raise Neg x else x * 2
     fun g y = (f y) handle Neg n => ~n
     val r = g ~3 + g 5
     val s = 1.5 + 2.25
     val _ = print (itos r)",
    // Refs, strings, and a loop.
    "val cell = ref 0
     fun loop 0 = !cell | loop n = (cell := !cell + n; loop (n - 1))
     val _ = print (itos (loop 10) ^ \"!\")",
    // Dense all-constant match: compiles to a SwitchInt dispatch.
    "fun w 1 = 10 | w 2 = 20 | w 3 = 30 | w 4 = 40 | w _ = 0
     val _ = print (itos (w 3 + w 9))",
];

/// Variants whose translations differ most: the boxed baseline, the
/// flat-float extreme, and the minimum-typing middle.
const VARIANTS: &[Variant] = &[Variant::Nrp, Variant::Mtd, Variant::Fp3];

/// Runs the real front end (parse, elaborate, optional minimum typing,
/// translate) on a fixture.
fn front_end(src: &str, v: Variant) -> (Lexp, LtyInterner, u32) {
    let prog = sml_ast::parse(src).expect("fixture parses");
    let mut elab = sml_elab::elaborate(&prog).expect("fixture elaborates");
    if v.uses_mtd() {
        sml_elab::minimum_typing(&mut elab);
    }
    let tr = translate(&elab, &v.lambda_config());
    (tr.lexp, tr.interner, tr.n_vars)
}

/// Front end plus CPS conversion.
fn to_cps(src: &str, v: Variant) -> CpsProgram {
    let (lexp, mut interner, n_vars) = front_end(src, v);
    convert(&lexp, &mut interner, n_vars, &v.cps_config())
}

/// Full middle end: conversion, optimization, closure conversion.
fn to_closed(src: &str, v: Variant) -> ClosedProgram {
    let mut cps = to_cps(src, v);
    optimize(&mut cps, &OptConfig::default());
    close(cps)
}

/// The whole compiler: closed program through code generation.
fn to_machine(src: &str, v: Variant) -> MachineProgram {
    codegen(&to_closed(src, v))
}

/// The catalog satisfies the PR's floor of 25 seeded corruptions.
#[test]
fn catalog_has_at_least_25_mutations() {
    let n = lexp_mutations().len()
        + cps_mutations().len()
        + closed_mutations().len()
        + bytecode_mutations().len();
    assert!(n >= 25, "only {n} mutations in the catalog");
}

/// Every LEXP mutation applies to some fixture and is rejected by
/// `verify_lexp` — with the pinned rule tag where one is expected.
#[test]
fn lexp_mutants_rejected() {
    for m in lexp_mutations() {
        let mut applied = false;
        'search: for &v in VARIANTS {
            for src in FIXTURES {
                let (mut lexp, mut interner, _) = front_end(src, v);
                sml_lambda::verify_lexp(&lexp, &mut interner)
                    .unwrap_or_else(|e| panic!("clean fixture rejected: {} {e:?}", v.name()));
                if !(m.apply)(&mut lexp, &mut interner) {
                    continue;
                }
                applied = true;
                let err = sml_lambda::verify_lexp(&lexp, &mut interner).expect_err(&format!(
                    "mutant {} accepted under {} on fixture:\n{src}",
                    m.name,
                    v.name()
                ));
                if let Some(rule) = m.expect_rule {
                    assert_eq!(
                        err.rule, rule,
                        "mutant {} tripped `{}`, expected `{rule}`: {}",
                        m.name, err.rule, err.detail
                    );
                }
                break 'search;
            }
        }
        assert!(applied, "mutation {} never applied to any fixture", m.name);
    }
}

/// Every CPS mutation applies to some fixture and is rejected by
/// `verify_cps`.
#[test]
fn cps_mutants_rejected() {
    for m in cps_mutations() {
        let mut applied = false;
        'search: for &v in VARIANTS {
            for src in FIXTURES {
                let mut cps = to_cps(src, v);
                verify_cps(&cps)
                    .unwrap_or_else(|e| panic!("clean fixture rejected: {} {e:?}", v.name()));
                if !(m.apply)(&mut cps) {
                    continue;
                }
                applied = true;
                let err = verify_cps(&cps).expect_err(&format!(
                    "mutant {} accepted under {} on fixture:\n{src}",
                    m.name,
                    v.name()
                ));
                if let Some(rule) = m.expect_rule {
                    assert_eq!(
                        err.rule, rule,
                        "mutant {} tripped `{}`, expected `{rule}`: {}",
                        m.name, err.rule, err.detail
                    );
                }
                break 'search;
            }
        }
        assert!(applied, "mutation {} never applied to any fixture", m.name);
    }
}

/// Every closed-program mutation applies to some fixture and is
/// rejected by `verify_closed_program`.
#[test]
fn closed_mutants_rejected() {
    for m in closed_mutations() {
        let mut applied = false;
        'search: for &v in VARIANTS {
            for src in FIXTURES {
                let mut closed = to_closed(src, v);
                verify_closed_program(&closed)
                    .unwrap_or_else(|e| panic!("clean fixture rejected: {} {e:?}", v.name()));
                if !(m.apply)(&mut closed) {
                    continue;
                }
                applied = true;
                let err = verify_closed_program(&closed).expect_err(&format!(
                    "mutant {} accepted under {} on fixture:\n{src}",
                    m.name,
                    v.name()
                ));
                if let Some(rule) = m.expect_rule {
                    assert_eq!(
                        err.rule, rule,
                        "mutant {} tripped `{}`, expected `{rule}`: {}",
                        m.name, err.rule, err.detail
                    );
                }
                break 'search;
            }
        }
        assert!(applied, "mutation {} never applied to any fixture", m.name);
    }
}

/// Every bytecode mutation applies to some fixture and is rejected by
/// `verify_bytecode`.
#[test]
fn bytecode_mutants_rejected() {
    for m in bytecode_mutations() {
        let mut applied = false;
        'search: for &v in VARIANTS {
            for src in FIXTURES {
                let mut machine = to_machine(src, v);
                verify_bytecode(&machine)
                    .unwrap_or_else(|e| panic!("clean fixture rejected: {} {e:?}", v.name()));
                if !(m.apply)(&mut machine) {
                    continue;
                }
                applied = true;
                let err = verify_bytecode(&machine).expect_err(&format!(
                    "mutant {} accepted under {} on fixture:\n{src}",
                    m.name,
                    v.name()
                ));
                if let Some(rule) = m.expect_rule {
                    assert_eq!(
                        err.rule, rule,
                        "mutant {} tripped `{}`, expected `{rule}`: {}",
                        m.name, err.rule, err.detail
                    );
                }
                break 'search;
            }
        }
        assert!(applied, "mutation {} never applied to any fixture", m.name);
    }
}

/// Under `VerifyIr::Always` every fixture compiles cleanly on every
/// variant, runs all three verifier families, and produces the same
/// machine code as `VerifyIr::Off`.
#[test]
fn fixtures_verify_clean_end_to_end() {
    for &v in Variant::ALL.iter() {
        let always = SessionBuilder::default()
            .variant(v)
            .verify_ir(VerifyIr::Always)
            .build()
            .unwrap();
        let off = SessionBuilder::default()
            .variant(v)
            .verify_ir(VerifyIr::Off)
            .build()
            .unwrap();
        for src in FIXTURES {
            let ca = always.compile(src).expect("clean program verified");
            let co = off.compile(src).expect("clean program compiled");
            assert!(ca.stats.verify.lexp_checks >= 1);
            assert!(ca.stats.verify.cps_checks >= 2);
            assert!(ca.stats.verify.bytecode_checks >= 1);
            assert_eq!(co.stats.verify.total_checks(), 0);
            assert_eq!(
                format!("{}", ca.machine),
                format!("{}", co.machine),
                "verification changed emitted code under {}",
                v.name()
            );
        }
    }
}

/// Every violation a mutant produces carries a non-empty rule tag and
/// detail string — the payload the pipeline forwards into
/// `CompileError::Internal { violation }` and `--stats=json`.
#[test]
fn violation_payload_is_structured() {
    let (mut lexp, mut interner, _) = front_end(FIXTURES[0], Variant::Nrp);
    let m = &lexp_mutations()[0];
    assert!((m.apply)(&mut lexp, &mut interner));
    let v = sml_lambda::verify_lexp(&lexp, &mut interner).unwrap_err();
    assert_eq!(v.rule, "unbound-var");
    assert!(!v.detail.is_empty());
}
