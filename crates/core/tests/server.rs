//! Compile-server integration tests: concurrent clients against the
//! in-process Unix-socket server (results byte-identical to solo
//! compiles), the wire protocol's error taxonomy, and the `smlc serve`
//! binary's graceful EOF and SIGTERM shutdown paths with final stats
//! flushed to stderr.

use std::io::{BufRead, BufReader, Read, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::time::{Duration, Instant};

use smlc::{CompileServer, Json, Session, Variant};

/// A unique socket path per test (tests run concurrently in one
/// process).
fn socket_path(tag: &str) -> PathBuf {
    static N: AtomicU32 = AtomicU32::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("smlc-test-{}-{tag}-{n}.sock", std::process::id()))
}

fn connect(path: &PathBuf) -> UnixStream {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match UnixStream::connect(path) {
            Ok(s) => return s,
            Err(_) if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(20)),
            Err(e) => panic!("server socket never came up: {e}"),
        }
    }
}

/// Sends one request line and reads one response line.
fn roundtrip(stream: &mut UnixStream, request: &str) -> Json {
    writeln!(stream, "{request}").unwrap();
    stream.flush().unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    Json::parse(line.trim()).unwrap_or_else(|e| panic!("bad response {line:?}: {e}"))
}

/// Builds a JSON string literal for a request field.
fn quoted(src: &str) -> String {
    Json::Str(src.to_owned()).to_string_compact()
}

/// Eight concurrent clients, each compiling and running its own program
/// several times, must all observe exactly the output and value a solo
/// session produces — while sharing one server session.
#[test]
fn eight_concurrent_clients_match_solo_compiles() {
    let path = socket_path("concurrent");
    let shutdown = AtomicBool::new(false);
    let server = CompileServer::new(Session::with_variant(Variant::Ffb)).workers(4);

    std::thread::scope(|s| {
        let handle = s.spawn(|| server.serve_unix(&path, &shutdown).unwrap());

        // Solo expectations, computed through independent sessions.
        let programs: Vec<String> = (0..8)
            .map(|i| {
                format!(
                    "fun f x = x * {} + 1\nval r = f {i}\nval _ = print (itos r)",
                    i + 2
                )
            })
            .collect();
        let expected: Vec<String> = programs
            .iter()
            .map(|p| {
                let session = Session::with_variant(Variant::Ffb);
                let c = session.compile(p).unwrap();
                session.run(&c).output
            })
            .collect();

        std::thread::scope(|clients| {
            for (i, (program, want)) in programs.iter().zip(&expected).enumerate() {
                let path = &path;
                clients.spawn(move || {
                    let mut stream = connect(path);
                    for round in 0..3 {
                        let req = format!(
                            "{{\"id\": {round}, \"src\": {}, \"run\": true}}",
                            quoted(program)
                        );
                        let resp = roundtrip(&mut stream, &req);
                        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
                        assert_eq!(resp.get("id").and_then(Json::as_i64), Some(round));
                        assert_eq!(
                            resp.get("output").and_then(Json::as_str),
                            Some(want.as_str()),
                            "client {i} diverged from its solo compile"
                        );
                        assert_eq!(resp.get("result").and_then(Json::as_str), Some("value"));
                        if round > 0 {
                            assert_eq!(
                                resp.get("from_cache").and_then(Json::as_bool),
                                Some(true),
                                "client {i}: repeat compile missed the shared cache"
                            );
                        }
                    }
                });
            }
        });

        shutdown.store(true, Ordering::SeqCst);
        let stats = handle.join().unwrap();
        assert_eq!(stats.clients, 8);
        assert_eq!(stats.jobs, 24);
        assert!(stats.queue_depth_peak >= 1);
    });
    assert!(!path.exists(), "socket file must be removed on shutdown");
}

/// The wire protocol's error taxonomy: malformed JSON, a missing `src`,
/// an unknown op, a parse error, and an elaboration error each map to
/// the documented `exit_code`, and a bad request never wedges the
/// connection.
#[test]
fn error_responses_carry_the_exit_code_taxonomy() {
    let path = socket_path("errors");
    let shutdown = AtomicBool::new(false);
    let server = CompileServer::new(Session::with_variant(Variant::Ffb)).workers(2);

    std::thread::scope(|s| {
        let handle = s.spawn(|| server.serve_unix(&path, &shutdown).unwrap());
        let mut stream = connect(&path);

        let cases: &[(&str, &str, i64)] = &[
            ("{this is not json", "request", 2),
            ("{\"id\": 1, \"op\": \"compile\"}", "request", 2),
            ("{\"id\": 2, \"op\": \"frobnicate\"}", "request", 2),
            ("{\"id\": 3, \"src\": \"val x = = 1\"}", "parse", 2),
            ("{\"id\": 4, \"src\": \"val x = y\"}", "elab", 3),
            (
                "{\"id\": 5, \"src\": \"val x = 1\", \"variant\": \"sml.bogus\"}",
                "request",
                2,
            ),
        ];
        for (req, kind, exit_code) in cases {
            let resp = roundtrip(&mut stream, req);
            assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false), "{req}");
            let err = resp.get("error").expect("error object");
            assert_eq!(err.get("kind").and_then(Json::as_str), Some(*kind), "{req}");
            assert_eq!(
                resp.get("exit_code").and_then(Json::as_i64),
                Some(*exit_code),
                "{req}"
            );
        }

        // The connection still works after every kind of bad request.
        let resp = roundtrip(
            &mut stream,
            "{\"id\": 9, \"src\": \"val _ = print (itos 7)\", \"run\": true}",
        );
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(resp.get("output").and_then(Json::as_str), Some("7"));

        // A `stats` op reports server-wide and per-client counters.
        let resp = roundtrip(&mut stream, "{\"id\": 10, \"op\": \"stats\"}");
        let server_obj = resp.get("server").expect("server object");
        assert_eq!(server_obj.get("clients").and_then(Json::as_i64), Some(1));
        assert_eq!(server_obj.get("jobs").and_then(Json::as_i64), Some(8));
        // Only compile ops count as client jobs: the four failed
        // compile attempts above plus the good one.
        let client_obj = resp.get("client").expect("client object");
        assert_eq!(client_obj.get("jobs").and_then(Json::as_i64), Some(5));

        shutdown.store(true, Ordering::SeqCst);
        handle.join().unwrap();
    });
}

/// A `{"op":"shutdown"}` request stops the whole server gracefully.
#[test]
fn shutdown_op_stops_the_server() {
    let path = socket_path("shutdown-op");
    let shutdown = AtomicBool::new(false);
    let server = CompileServer::new(Session::with_variant(Variant::Ffb)).workers(2);

    std::thread::scope(|s| {
        let handle = s.spawn(|| server.serve_unix(&path, &shutdown).unwrap());
        let mut stream = connect(&path);
        let resp = roundtrip(&mut stream, "{\"id\": 0, \"op\": \"shutdown\"}");
        assert_eq!(
            resp.get("shutting_down").and_then(Json::as_bool),
            Some(true)
        );
        let stats = handle.join().unwrap();
        assert_eq!(stats.jobs, 1);
    });
    assert!(!path.exists());
}

// ---------------------------------------------------------------------
// The `smlc serve` binary: EOF and SIGTERM shutdown
// ---------------------------------------------------------------------

fn smlc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_smlc"))
}

/// The final stderr line a server flushes on shutdown, parsed.
fn final_stats_line(child: Child) -> (std::process::Output, Json) {
    let out = child.wait_with_output().unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr);
    let line = stderr
        .lines()
        .rev()
        .find(|l| l.starts_with('{'))
        .unwrap_or_else(|| panic!("no stats line on stderr: {stderr:?}"));
    let stats = Json::parse(line).unwrap();
    (out, stats)
}

/// `smlc serve` over stdio answers each request in order and, at EOF,
/// drains in-flight jobs and flushes final stats to stderr.
#[test]
fn serve_stdio_eof_shutdown_flushes_stats() {
    let mut child = smlc()
        .args(["serve", "--workers=2"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();

    {
        let stdin = child.stdin.take().unwrap();
        let mut stdin = stdin;
        for i in 0..3 {
            writeln!(
                stdin,
                "{{\"id\": {i}, \"src\": \"val _ = print (itos ({i} + 40))\", \"run\": true}}"
            )
            .unwrap();
        }
        // Dropping stdin is the EOF that shuts the server down.
    }

    let mut stdout = String::new();
    child
        .stdout
        .take()
        .unwrap()
        .read_to_string(&mut stdout)
        .unwrap();
    let responses: Vec<Json> = stdout.lines().map(|l| Json::parse(l).unwrap()).collect();
    assert_eq!(responses.len(), 3, "stdout: {stdout:?}");
    for (i, resp) in responses.iter().enumerate() {
        assert_eq!(resp.get("id").and_then(Json::as_i64), Some(i as i64));
        assert_eq!(
            resp.get("output").and_then(Json::as_str),
            Some(format!("{}", i + 40).as_str())
        );
    }

    let (out, stats) = final_stats_line(child);
    assert!(out.status.success());
    let server = stats.get("server").expect("server stats");
    assert_eq!(server.get("jobs").and_then(Json::as_i64), Some(3));
    assert_eq!(server.get("clients").and_then(Json::as_i64), Some(1));
}

/// `smlc serve --socket` exits cleanly on SIGTERM: in-flight work
/// drains, final stats reach stderr, and the socket file is removed.
#[test]
fn serve_socket_sigterm_shutdown() {
    let path = socket_path("sigterm");
    let child = smlc()
        .args(["serve", "--workers=2", "--socket"])
        .arg(&path)
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();

    let mut stream = connect(&path);
    let resp = roundtrip(
        &mut stream,
        "{\"id\": 0, \"src\": \"val _ = print (itos 7)\", \"run\": true}",
    );
    assert_eq!(resp.get("output").and_then(Json::as_str), Some("7"));

    let kill = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .unwrap();
    assert!(kill.success());

    let (out, stats) = final_stats_line(child);
    assert!(out.status.success(), "SIGTERM exit was not graceful");
    let server = stats.get("server").expect("server stats");
    assert_eq!(server.get("jobs").and_then(Json::as_i64), Some(1));
    assert_eq!(server.get("clients").and_then(Json::as_i64), Some(1));
    assert!(!path.exists(), "socket file must be removed on SIGTERM");
}

/// The `smlc client` subcommand drives a served socket end to end.
#[test]
fn client_subcommand_round_trips() {
    let path = socket_path("client");
    let server = smlc()
        .args(["serve", "--workers=2", "--socket"])
        .arg(&path)
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    connect(&path); // wait for the socket, then drop the probe

    let out = smlc()
        .args([
            "client",
            "--run",
            "-e",
            "val _ = print (itos (3 * 4))",
            "--socket",
        ])
        .arg(&path)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "client failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(String::from_utf8_lossy(&out.stdout), "12");

    Command::new("kill")
        .args(["-TERM", &server.id().to_string()])
        .status()
        .unwrap();
    let (out, _) = final_stats_line(server);
    assert!(out.status.success());
}
