//! Integration tests for the observability layer: the JSON schema is
//! pinned by a golden test, cross-checked against `docs/OBSERVABILITY.md`,
//! and the hash-cons counters are validated on a polymorphic program.

use std::collections::BTreeSet;

use smlc::{CompileError, Compiled, Json, Metrics, Session, Variant, METRICS_SCHEMA_VERSION};

/// Compiles through a fresh single-variant session. The LTY counters
/// asserted below are per-compile by construction (each compile's
/// private view counts them), warm or cold arena alike.
fn compile(src: &str, v: Variant) -> Result<Compiled, CompileError> {
    Session::with_variant(v).compile(src)
}

/// Every object key reachable in `j`, recursively.
fn collect_keys(j: &Json, out: &mut BTreeSet<String>) {
    match j {
        Json::Obj(fields) => {
            for (k, v) in fields {
                out.insert(k.clone());
                collect_keys(v, out);
            }
        }
        Json::Arr(items) => {
            for item in items {
                collect_keys(item, out);
            }
        }
        _ => {}
    }
}

/// A default (zeroed, run present) `Metrics` serializes the complete
/// schema; every key it emits must be documented in
/// `docs/OBSERVABILITY.md`.
#[test]
fn metrics_doc_cross_check() {
    let doc = include_str!("../../../docs/OBSERVABILITY.md");
    let mut keys = BTreeSet::new();
    collect_keys(&Metrics::default().to_json(), &mut keys);
    assert!(
        keys.len() > 40,
        "schema lost fields: only {} keys",
        keys.len()
    );
    let missing: Vec<&String> = keys
        .iter()
        .filter(|k| {
            // A key counts as documented when it appears backticked, as
            // a dotted path (`sizes.lexp`), or quoted in the worked
            // example.
            !(doc.contains(&format!("`{k}`"))
                || doc.contains(&format!(".{k}`"))
                || doc.contains(&format!("\"{k}\"")))
        })
        .collect();
    assert!(
        missing.is_empty(),
        "keys undocumented in docs/OBSERVABILITY.md: {missing:?}"
    );
}

/// Golden test: the exact serialized form of a zeroed metrics document.
/// A change here is a schema change — update `docs/OBSERVABILITY.md` and
/// bump `METRICS_SCHEMA_VERSION` if a field was renamed, removed, or
/// changed meaning.
#[test]
fn golden_default_metrics_document() {
    assert_eq!(METRICS_SCHEMA_VERSION, 5);
    let compact = Metrics::default().to_json().to_string_compact();
    let expected = concat!(
        "{\"schema_version\":5,\"variant\":\"sml.nrp\",",
        "\"compile\":{\"total_ms\":0.0,\"phases\":[],",
        "\"sizes\":{\"lexp\":0,\"cps_before\":0,\"cps_after\":0,\"code\":0},",
        "\"lty\":{\"interned\":0,\"intern_calls\":0,\"hashcons_hits\":0,",
        "\"hashcons_misses\":0,\"deep_compares\":0,\"hit_rate\":0.0},",
        "\"coerce\":{\"requests\":0,\"identities\":0,\"wraps\":0,",
        "\"fn_wrappers\":0,\"record_rebuilds\":0,\"memo_hits\":0},",
        "\"opt\":{\"rounds\":0,\"wrap_cancelled\":0,\"record_copies\":0,",
        "\"beta\":0,\"inlined\":0,\"dead\":0},",
        "\"verify\":{\"mode\":\"debug\",\"lexp_checks\":0,\"cps_checks\":0,",
        "\"bytecode_checks\":0,\"ms\":0.0},\"warnings\":0},",
        "\"run\":{\"result\":\"value\",\"cycles\":0,\"instrs\":0,",
        "\"alloc_words\":0,\"n_allocs\":0,",
        "\"gc\":{\"collections\":0,\"copied_words\":0,\"cycles\":0,\"minor_collections\":0,\"major_collections\":0,\"promoted_words\":0,\"remembered_set_peak\":0,\"minor_cycles\":0,\"major_cycles\":0,\"max_minor_pause_cycles\":0,\"max_major_pause_cycles\":0,\"major_slices\":0,\"barrier_words\":0,\"pause_overruns\":0,\"pause_hist_minor\":[0,0,0,0,0,0,0,0],\"pause_hist_major\":[0,0,0,0,0,0,0,0]},",
        "\"cycles_by_class\":{\"move\":0,\"int-arith\":0,\"float-arith\":0,",
        "\"memory\":0,\"alloc\":0,\"branch\":0,\"jump\":0,\"runtime\":0,",
        "\"control\":0,\"gc\":0},",
        "\"instrs_by_class\":{\"move\":0,\"int-arith\":0,\"float-arith\":0,",
        "\"memory\":0,\"alloc\":0,\"branch\":0,\"jump\":0,\"runtime\":0,",
        "\"control\":0,\"gc\":0}},",
        "\"dispatch\":{\"engine\":\"decode\",\"superinstructions\":0,",
        "\"stream_len\":0},",
        "\"cache\":{\"enabled\":false,\"hits\":0,\"misses\":0,",
        "\"evictions\":0,\"insertions\":0,\"entries\":0,\"capacity\":0},",
        "\"arena\":{\"resident\":0,\"hits\":0,\"misses\":0,\"retries\":0,",
        "\"queries\":0,\"shards\":[]},",
        "\"sched\":{\"policy\":\"round-robin\",\"quantum\":0,\"tenants\":0,",
        "\"rejected\":0,\"rounds\":0,\"slices\":0,",
        "\"preemptions\":0,\"max_overshoot\":0,\"ready_peak\":0,\"done\":0,",
        "\"heap_exhausted\":0,\"fault\":0,\"out_of_fuel\":0,",
        "\"deadline_missed\":0},",
        "\"components\":{\"enabled\":false,\"scc_count\":0,\"recompiled\":0,",
        "\"cache_hits\":0,\"topo_depth\":0},",
        "\"server\":{\"jobs\":0,\"clients\":0,\"queue_depth_peak\":0}}"
    );
    assert_eq!(compact, expected);
}

const POLY: &str = "
    fun id x = x
    fun pair x y = (x, y)
    val a = id 1
    val b = id 2.0
    val c = id \"three\"
    val d = pair (id a) (id b)
    val _ = print (itos (id (#1 d)))
";

/// Hash-cons counters on a polymorphic program: hits are nonzero
/// (instantiations re-intern the same types), hits and misses partition
/// the intern calls, and the number of distinct types equals the misses.
#[test]
fn hashcons_hits_nonzero_and_partition_calls() {
    let c = compile(POLY, Variant::Ffb).unwrap();
    let lty = c.stats.lty;
    assert!(
        lty.hashcons_hits > 0,
        "no hash-cons hits on a polymorphic program"
    );
    assert!(lty.hashcons_misses > 0);
    assert_eq!(lty.hashcons_hits + lty.hashcons_misses, lty.intern_calls);
    assert_eq!(lty.interned as u64, lty.hashcons_misses);
    assert_eq!(lty.deep_compares, 0, "hash-cons mode must not deep-compare");
    let rate = lty.hit_rate();
    assert!(rate > 0.0 && rate < 1.0, "hit rate {rate} out of range");
}

/// More polymorphic instantiations can only add hash-cons hits:
/// appending re-uses of `id` to a program strictly increases hits and
/// never decreases the hit rate.
#[test]
fn hashcons_hits_monotone_in_instantiations() {
    let more = format!("{POLY} val e = id 4  val f = id 5.0  val g = id (id \"h\")");
    let small = compile(POLY, Variant::Ffb).unwrap().stats.lty;
    let big = compile(&more, Variant::Ffb).unwrap().stats.lty;
    assert!(
        big.hashcons_hits > small.hashcons_hits,
        "extra instantiations did not add hits: {} vs {}",
        big.hashcons_hits,
        small.hashcons_hits
    );
    assert!(big.hit_rate() >= small.hit_rate());
}

/// The CLI schema and the library schema are the same object: spot-check
/// a real compile+run document for structural invariants.
#[test]
fn run_document_invariants() {
    let c = compile(POLY, Variant::Fp3).unwrap();
    let o = c.run();
    let m = Metrics::of_run(&c, &o);
    let s = &m.run.as_ref().unwrap().stats;
    assert_eq!(s.cycles_by_class.iter().sum::<u64>(), s.cycles);
    assert_eq!(s.instrs_by_class.iter().sum::<u64>(), s.instrs);
    let json = m.to_json().to_string_compact();
    assert!(json.contains("\"variant\":\"sml.fp3\""));
    assert!(json.contains("\"result\":\"value\""));
}
