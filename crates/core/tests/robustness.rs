//! End-to-end fault containment: adversarial and resource-hungry inputs
//! produce typed errors or traps — never a panic, abort, or stack
//! overflow — and trap paths leave the VM counters consistent.

use smlc::{
    CompileError, Compiled, FaultInject, InstrClass, Limits, OptConfig, RunStats, Session, Variant,
    VmConfig, VmResult,
};

/// Compiles through a fresh single-variant session.
fn compile(src: &str, v: Variant) -> Result<Compiled, CompileError> {
    Session::with_variant(v).compile(src)
}

/// Compiles with an explicit optimizer configuration and limits.
fn compile_full(
    src: &str,
    v: Variant,
    opt: &OptConfig,
    limits: &Limits,
) -> Result<Compiled, CompileError> {
    Session::builder()
        .variant(v)
        .opt_config(*opt)
        .limits(*limits)
        .build()
        .expect("test limits are valid")
        .compile(src)
}

fn assert_consistent(stats: &RunStats) {
    assert_eq!(
        stats.cycles_by_class.iter().sum::<u64>(),
        stats.cycles,
        "cycles_by_class must sum to cycles"
    );
    assert_eq!(
        stats.instrs_by_class.iter().sum::<u64>(),
        stats.instrs,
        "instrs_by_class must sum to instrs"
    );
    assert_eq!(
        stats.cycles_by_class[InstrClass::Gc as usize],
        stats.gc_cycles
    );
}

#[test]
fn deeply_nested_parens_hit_the_depth_budget() {
    // Ten thousand nesting levels would overflow the parser's stack
    // without the depth budget; with it, compilation fails fast with a
    // Limit error.
    let depth = 10_000;
    let src = format!("val x = {}1{}", "(".repeat(depth), ")".repeat(depth));
    match compile(&src, Variant::Ffb) {
        Err(CompileError::Limit { phase, msg }) => {
            assert_eq!(phase, "parse");
            assert!(msg.contains("depth budget"), "unexpected message: {msg}");
        }
        other => panic!("expected a parse-limit error, got {other:?}"),
    }
}

#[test]
fn deeply_nested_let_hits_the_depth_budget() {
    let depth = 10_000;
    let src = format!(
        "val x = {}0{}",
        "let val y = 1 in ".repeat(depth),
        " end".repeat(depth)
    );
    match compile(&src, Variant::Nrp) {
        Err(CompileError::Limit { phase, .. }) => assert_eq!(phase, "parse"),
        other => panic!("expected a parse-limit error, got {other:?}"),
    }
}

#[test]
fn long_cons_chain_hits_the_depth_budget() {
    let src = format!("val x = {}nil", "1 :: ".repeat(10_000));
    match compile(&src, Variant::Ffb) {
        Err(CompileError::Limit { phase, .. }) => assert_eq!(phase, "parse"),
        other => panic!("expected a parse-limit error, got {other:?}"),
    }
}

#[test]
fn reasonable_nesting_still_parses() {
    let depth = 50;
    let src = format!("val x = {}1{}", "(".repeat(depth), ")".repeat(depth));
    compile(&src, Variant::Ffb).expect("100 levels is well within budget");
}

#[test]
fn source_size_budget_is_enforced() {
    let limits = Limits {
        max_source_bytes: 64,
        ..Limits::default()
    };
    let src = format!("val x = {}", "1 + ".repeat(50));
    match compile_full(&src, Variant::Ffb, &OptConfig::default(), &limits) {
        Err(CompileError::Limit { phase, msg }) => {
            assert_eq!(phase, "parse");
            assert!(msg.contains("byte"), "unexpected message: {msg}");
        }
        other => panic!("expected a source-size limit error, got {other:?}"),
    }
}

#[test]
fn error_taxonomy_tags_are_stable() {
    let parse = compile("val = =", Variant::Ffb).unwrap_err();
    assert_eq!(parse.kind(), "parse");
    assert_eq!(parse.phase(), "parse");

    let elab = compile("val x = 1 + \"s\"", Variant::Ffb).unwrap_err();
    assert_eq!(elab.kind(), "elab");
    assert_eq!(elab.phase(), "elaborate");

    let limit = CompileError::Limit {
        phase: "translate",
        msg: "x".into(),
    };
    assert_eq!(limit.kind(), "limit");
    let ice = CompileError::Internal {
        phase: "codegen",
        msg: "x".into(),
        violation: None,
    };
    assert_eq!(ice.kind(), "internal");
    assert_eq!(ice.phase(), "codegen");
    assert!(ice.to_string().contains("internal compiler error"));

    let config = CompileError::Config(smlc::ConfigError::MustBeNonzero {
        field: "cache_capacity",
    });
    assert_eq!(config.kind(), "config");
    assert_eq!(config.phase(), "config");
    assert!(config.to_string().contains("cache_capacity"));
}

#[test]
fn error_document_covers_every_failure_class() {
    let e = compile("val = =", Variant::Ffb).unwrap_err();
    let doc = smlc::error_json(Variant::Ffb, &e).to_string_compact();
    assert!(doc.contains(&format!(
        "\"schema_version\":{}",
        smlc::METRICS_SCHEMA_VERSION
    )));
    assert!(doc.contains("\"error\":"));
    assert!(doc.contains("\"kind\":\"parse\""));
    assert!(doc.contains("\"phase\":\"parse\""));
    assert!(doc.contains("\"message\":"));
    assert!(doc.contains("\"compile\":null"));
    assert!(doc.contains("\"run\":null"));
    assert!(doc.contains("\"components\":null"));
    assert!(doc.contains("\"server\":null"));
}

#[test]
fn uncaught_exception_keeps_counters_consistent() {
    let c = compile("exception Boom val _ = raise Boom", Variant::Ffb).unwrap();
    let o = c.run();
    assert_eq!(o.result, VmResult::Uncaught("Boom".into()));
    assert_consistent(&o.stats);
}

#[test]
fn out_of_fuel_keeps_counters_consistent() {
    let c = compile("fun loop n = loop (n + 1) val _ = loop 0", Variant::Ffb).unwrap();
    let o = c.run_with(&VmConfig {
        max_cycles: 50_000,
        ..VmConfig::default()
    });
    assert_eq!(o.result, VmResult::OutOfFuel);
    assert!(o.stats.cycles > 50_000);
    assert_consistent(&o.stats);
}

const LIST_BUILDER: &str = "
    fun build n = if n = 0 then nil else n :: build (n - 1)
    fun len nil = 0 | len (_ :: t) = 1 + len t
    val _ = print (itos (len (build 2000)))
";

#[test]
fn heap_ceiling_traps_instead_of_aborting() {
    let c = compile(LIST_BUILDER, Variant::Ffb).unwrap();
    let o = c.run_with(&VmConfig {
        tenured_words: 2_048,
        nursery_words: 512,
        ..VmConfig::default()
    });
    assert_eq!(o.result, VmResult::HeapExhausted);
    assert!(o.stats.n_gcs >= 1);
    assert_consistent(&o.stats);
}

#[test]
fn injected_alloc_failure_traps_deterministically() {
    let c = compile(LIST_BUILDER, Variant::Ffb).unwrap();
    let o = c.run_with(&VmConfig {
        fault: FaultInject {
            fail_alloc_at: Some(40),
            gc_every_n_allocs: None,
            yield_every_n_slices: None,
        },
        ..VmConfig::default()
    });
    assert_eq!(o.result, VmResult::HeapExhausted);
    assert_eq!(o.stats.n_allocs, 39);
    assert_consistent(&o.stats);
}

#[test]
fn forced_gc_stress_does_not_change_program_behavior() {
    let c = compile(LIST_BUILDER, Variant::Ffb).unwrap();
    let quiet = c.run();
    assert_eq!(quiet.result, VmResult::Value(0));
    assert_eq!(quiet.output, "2000");
    for k in [1, 2, 7] {
        let stressed = c.run_with(&VmConfig {
            fault: FaultInject {
                fail_alloc_at: None,
                gc_every_n_allocs: Some(k),
                yield_every_n_slices: None,
            },
            ..VmConfig::default()
        });
        assert_eq!(stressed.result, quiet.result, "gc_every_n_allocs={k}");
        assert_eq!(stressed.output, quiet.output, "gc_every_n_allocs={k}");
        assert!(stressed.stats.n_gcs > quiet.stats.n_gcs);
        assert_consistent(&stressed.stats);
    }
}

#[test]
fn trap_results_have_stable_metric_tags() {
    assert_eq!(smlc::result_tag(&VmResult::HeapExhausted), "heap-exhausted");
    assert_eq!(smlc::result_tag(&VmResult::Fault("x".into())), "fault");
    assert_eq!(smlc::result_tag(&VmResult::OutOfFuel), "out-of-fuel");
}
