//! SCC partitioner edge cases and incremental-elaboration differentials.
//!
//! The contract under test is twofold: the partitioner groups
//! declarations the way `docs/ARCHITECTURE.md` specifies (mutual
//! recursion fuses, shadowing splits, signatures fuse forward), and the
//! incremental suffix-replay path is *byte-identical* to whole-program
//! elaboration — same machine code, warm or cold, across all six
//! variants and a progen seed sweep.

use sml_testkit::progen::{gen_program, GenConfig};
use sml_testkit::Rng;
use smlc::{partition, ComponentGraph, Session, Variant};

fn graph(src: &str) -> ComponentGraph {
    partition(&sml_ast::parse(src).unwrap())
}

/// An incremental session (the default) next to a whole-program one
/// with the same knobs.
fn session_pair(v: Variant) -> (Session, Session) {
    let incr = Session::builder().variant(v).build().unwrap();
    let whole = Session::builder()
        .variant(v)
        .incremental(false)
        .build()
        .unwrap();
    assert!(incr.incremental() && !whole.incremental());
    (incr, whole)
}

/// Compile in both sessions and demand byte-identical machine code.
fn assert_differential(incr: &Session, whole: &Session, src: &str, what: &str) {
    let a = incr.compile(src).unwrap_or_else(|e| panic!("{what}: {e}"));
    let b = whole.compile(src).unwrap_or_else(|e| panic!("{what}: {e}"));
    assert!(
        a.stats.components.enabled || a.from_cache,
        "{what}: incremental session must report component stats"
    );
    assert_eq!(
        format!("{}", a.machine),
        format!("{}", b.machine),
        "{what}: incremental output diverged from whole-program"
    );
}

// ---------------------------------------------------------------------
// Partitioner edge cases
// ---------------------------------------------------------------------

#[test]
fn mutually_recursive_and_is_one_component() {
    let g = graph(
        "fun even n = if n = 0 then true else odd (n - 1) \
         and odd n = if n = 0 then false else even (n - 1) \
         val x = even 4",
    );
    assert_eq!(g.len(), 2, "an `and` group is one declaration, one SCC");
    assert_eq!(g.components[1].deps, vec![0]);
    assert_eq!(g.topo_depth, 2);
}

#[test]
fn mutually_recursive_datatypes_are_one_component() {
    let g = graph(
        "datatype tree = Leaf of int | Node of forest \
         and forest = Empty | Cons of tree * forest \
         fun size t = case t of Leaf _ => 1 | Node f => sizes f \
         and sizes f = case f of Empty => 0 | Cons (t, r) => size t + sizes r \
         val n = size (Node (Cons (Leaf 1, Empty)))",
    );
    assert_eq!(g.len(), 3);
    assert_eq!(
        g.components[1].deps,
        vec![0],
        "funs depend on the datatypes"
    );
    assert_eq!(
        g.components[2].deps,
        vec![0, 1],
        "the use site reads both the constructors and the funs"
    );
}

/// Shadowing: a redefinition of `x` reads the *previous* `x`, so the
/// partition must split at the rebinding (three components, each
/// depending only on its immediate predecessor), not fuse into one.
#[test]
fn shadowing_redefinition_splits_components() {
    let g = graph("val x = 1 val x = x + 1 val y = x");
    assert_eq!(g.len(), 3, "shadowing must not fuse declarations");
    assert_eq!(g.components[1].deps, vec![0]);
    assert_eq!(
        g.components[2].deps,
        vec![1],
        "the use of `x` resolves to the nearest (shadowing) binder"
    );
}

/// A `signature` has no runtime content; it fuses forward with the
/// `structure` (or `functor`) that first consumes it so a checkpoint
/// never splits an ascription from its signature.
#[test]
fn signature_fuses_with_structure_and_functor() {
    let g = graph(
        "signature SIG = sig val item : int end \
         structure S : SIG = struct val item = 3 end \
         val a = S.item \
         signature FSIG = sig val item : int end \
         functor F (X : FSIG) = struct val v = X.item + 1 end \
         structure T = F (S) \
         val b = T.v",
    );
    // sig+S | a | fsig+F | T | b
    assert_eq!(g.len(), 5, "each signature fuses with its consumer");
    assert_eq!(g.components[0].decs, 0..2);
    assert_eq!(g.components[2].decs, 3..5);
    assert_eq!(g.components[3].deps, vec![0, 2], "T = F(S) reads both");
}

// ---------------------------------------------------------------------
// Recompiled-counter behaviour (the tentpole's observable contract)
// ---------------------------------------------------------------------

const BASE: &str = "fun id x = x\nval a = id 1\nval _ = print (itos a)";

#[test]
fn cold_compile_recompiles_every_component() {
    let s = Session::with_variant(Variant::Ffb);
    let c = s.compile(BASE).unwrap();
    let cs = &c.stats.components;
    assert!(cs.enabled);
    assert_eq!(cs.scc_count, 3);
    assert_eq!(cs.recompiled, 3);
    assert_eq!(cs.cache_hits, 0);
    assert_eq!(cs.topo_depth, 3);
}

#[test]
fn editing_last_declaration_recompiles_only_it() {
    let s = Session::with_variant(Variant::Ffb);
    s.compile(BASE).unwrap();
    let edited = "fun id x = x\nval a = id 1\nval _ = print (itos (a + a))";
    let c = s.compile(edited).unwrap();
    let cs = &c.stats.components;
    assert_eq!((cs.recompiled, cs.cache_hits), (1, 2), "suffix only");
}

#[test]
fn editing_middle_declaration_dirties_downstream_only() {
    let s = Session::with_variant(Variant::Ffb);
    s.compile(BASE).unwrap();
    let edited = "fun id x = x\nval a = id 2\nval _ = print (itos a)";
    let c = s.compile(edited).unwrap();
    let cs = &c.stats.components;
    assert_eq!((cs.recompiled, cs.cache_hits), (2, 1));
}

#[test]
fn appending_a_declaration_keeps_prefix_warm() {
    let s = Session::with_variant(Variant::Ffb);
    s.compile(BASE).unwrap();
    let appended = format!("{BASE}\nval z = id 9");
    let c = s.compile(&appended).unwrap();
    let cs = &c.stats.components;
    assert_eq!((cs.scc_count, cs.recompiled, cs.cache_hits), (4, 1, 3));
}

#[test]
fn whole_program_session_reports_disabled_stats() {
    let s = Session::builder()
        .variant(Variant::Ffb)
        .incremental(false)
        .build()
        .unwrap();
    let c = s.compile(BASE).unwrap();
    let cs = &c.stats.components;
    assert!(!cs.enabled);
    assert_eq!((cs.scc_count, cs.recompiled, cs.cache_hits), (0, 0, 0));
}

// ---------------------------------------------------------------------
// Byte-identity differentials: incremental vs whole-program
// ---------------------------------------------------------------------

/// Cold and warm (post-edit) compiles under every variant — including
/// the MTD-using ones — must match whole-program output byte for byte.
#[test]
fn edit_differential_all_variants() {
    let edits = [
        BASE.to_owned(),
        BASE.replace("id 1", "id 5"),
        format!("{BASE}\nval tail = id 7\nval _ = print (itos tail)"),
        BASE.replace("fun id x = x", "fun id x = (x, x)\nfun fst (a, _) = a")
            .replace("id 1", "fst (id 1)"),
    ];
    for v in Variant::ALL {
        let (incr, whole) = session_pair(v);
        for (i, src) in edits.iter().enumerate() {
            assert_differential(&incr, &whole, src, &format!("{v} edit {i}"));
        }
    }
}

/// Progen sweep: each seed's program compiles identically through the
/// suffix-replay path, then again after a synthesized append (warm
/// replay over a cached prefix). 60 seeds here; the full 200-seed sweep
/// runs in `incr_bench` (release).
#[test]
fn progen_differential_byte_identity() {
    let cfg = GenConfig::default();
    for seed in 0..60u64 {
        let mut rng = Rng::new(seed);
        let src = gen_program(&mut rng, &cfg);
        let v = *Rng::new(seed ^ 0xC0FFEE).pick(&Variant::ALL);
        let (incr, whole) = session_pair(v);
        assert_differential(&incr, &whole, &src, &format!("seed {seed} cold"));
        let appended = format!("{src}\nval zz_{seed} = {seed}");
        assert_differential(&incr, &whole, &appended, &format!("seed {seed} warm"));
    }
}
