//! Whole-program differential fuzzing with the `sml-testkit` program
//! generator: every seeded, well-typed program must (a) compile and run
//! under all six variants without a panic escaping the pipeline, and
//! (b) produce the identical result value and print output across
//! variants — the variant-equivalence oracle behind the paper's
//! Figure 7/8 matrix.

use sml_testkit::progen::{gen_program, GenConfig};
use sml_testkit::{run_cases, Rng};
use smlc::{CompileError, Compiled, Session, Variant, VmResult};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Compiles through a fresh single-variant session.
fn compile(src: &str, v: Variant) -> Result<Compiled, CompileError> {
    Session::with_variant(v).compile(src)
}

/// Compiles and runs `src` under `v`, catching any panic that escapes.
/// Returns `(result, output)` or panics with a seed-reproducible report.
fn run_variant(src: &str, v: Variant) -> (VmResult, String) {
    let outcome = catch_unwind(AssertUnwindSafe(|| match compile(src, v) {
        Ok(c) => {
            let o = c.run();
            Ok((o.result, o.output))
        }
        Err(e) => Err(format!("{e}")),
    }));
    match outcome {
        Ok(Ok(pair)) => pair,
        Ok(Err(e)) => panic!("[{}] compile failed: {e}\nsource:\n{src}", v.name()),
        Err(_) => panic!("[{}] PANIC escaped the pipeline for\n{src}", v.name()),
    }
}

#[test]
fn generated_programs_agree_across_variants() {
    let cfg = GenConfig::default();
    run_cases("generated_programs_agree_across_variants", 60, |rng| {
        let src = gen_program(rng, &cfg);
        let mut reference: Option<(VmResult, String, &'static str)> = None;
        for v in Variant::ALL {
            let (result, output) = run_variant(&src, v);
            assert!(
                matches!(result, VmResult::Value(_)),
                "[{}] abnormal result {result:?} for\n{src}",
                v.name()
            );
            match &reference {
                None => reference = Some((result, output, v.name())),
                Some((r_res, r_out, r_name)) => {
                    assert_eq!(
                        &result,
                        r_res,
                        "[{}] result diverges from {r_name} for\n{src}",
                        v.name()
                    );
                    assert_eq!(
                        &output,
                        r_out,
                        "[{}] output diverges from {r_name} for\n{src}",
                        v.name()
                    );
                }
            }
        }
    });
}

#[test]
fn generated_programs_survive_fault_injection() {
    // The same generated corpus, rerun under GC stress: forcing a
    // collection before every other allocation must not change any
    // program's behavior under any variant.
    use smlc::{FaultInject, VmConfig};
    let cfg = GenConfig {
        items: 3,
        ..GenConfig::default()
    };
    run_cases("generated_programs_survive_fault_injection", 12, |rng| {
        let src = gen_program(rng, &cfg);
        for v in Variant::ALL {
            let c = compile(&src, v)
                .unwrap_or_else(|e| panic!("[{}] compile failed: {e}\n{src}", v.name()));
            let quiet = c.run();
            let stressed = c.run_with(&VmConfig {
                fault: FaultInject {
                    fail_alloc_at: None,
                    gc_every_n_allocs: Some(2),
                    yield_every_n_slices: None,
                },
                ..v.vm_config()
            });
            assert_eq!(
                quiet.result,
                stressed.result,
                "[{}] GC stress changed the result for\n{src}",
                v.name()
            );
            assert_eq!(
                quiet.output,
                stressed.output,
                "[{}] GC stress changed the output for\n{src}",
                v.name()
            );
        }
    });
}

#[test]
fn generated_programs_agree_across_collector_modes() {
    // Collector-mode differential: the same compiled program must
    // behave byte-identically under the default generational
    // configuration, the semispace baseline collector, and a
    // pathological generational setup (tiny nursery, immediate
    // promotion) that maximizes minor-collection and promotion traffic.
    use smlc::{GcMode, VmConfig};
    let cfg = GenConfig {
        items: 3,
        ..GenConfig::default()
    };
    run_cases(
        "generated_programs_agree_across_collector_modes",
        10,
        |rng| {
            let src = gen_program(rng, &cfg);
            for v in Variant::ALL {
                let c = compile(&src, v)
                    .unwrap_or_else(|e| panic!("[{}] compile failed: {e}\n{src}", v.name()));
                let reference = c.run();
                let modes: [(&str, VmConfig); 2] = [
                    (
                        "semispace",
                        VmConfig {
                            gc_mode: GcMode::Semispace,
                            ..v.vm_config()
                        },
                    ),
                    (
                        "tiny-nursery",
                        VmConfig {
                            nursery_words: 1 << 10,
                            promote_after: 1,
                            ..v.vm_config()
                        },
                    ),
                ];
                for (name, vm) in modes {
                    let alt = c.run_with(&vm);
                    assert_eq!(
                        reference.result,
                        alt.result,
                        "[{} / {name}] collector mode changed the result for\n{src}",
                        v.name()
                    );
                    assert_eq!(
                        reference.output,
                        alt.output,
                        "[{} / {name}] collector mode changed the output for\n{src}",
                        v.name()
                    );
                }
            }
        },
    );
}

#[test]
fn generated_programs_agree_across_pause_budgets() {
    // Pause-budget differential: over the generated corpus, a bounded
    // incremental major collector must be observationally identical to
    // the stop-the-world collector it slices up — byte-identical result
    // and output, the same words promoted — and must actually honor its
    // budget (no recorded pause above `max_pause_cycles`). The
    // semispace baseline rides along as a third, structurally unrelated
    // oracle. Geometry is shrunk (256-word nursery, immediate
    // promotion) so the corpus forces real major collections; the
    // budget of 1200 exceeds 4 * nursery + 150, so the nursery clamp is
    // inert and minor-collection scheduling is identical across modes.
    use smlc::{GcMode, VmConfig};
    let cfg = GenConfig {
        items: 3,
        ..GenConfig::default()
    };
    run_cases("generated_programs_agree_across_pause_budgets", 16, |rng| {
        let src = gen_program(rng, &cfg);
        for v in Variant::ALL {
            let c = compile(&src, v)
                .unwrap_or_else(|e| panic!("[{}] compile failed: {e}\n{src}", v.name()));
            let small = VmConfig {
                nursery_words: 256,
                promote_after: 1,
                ..v.vm_config()
            };
            let stw = c.run_with(&small);
            let incr = c.run_with(&VmConfig {
                max_pause_cycles: 1200,
                ..small
            });
            let semi = c.run_with(&VmConfig {
                gc_mode: GcMode::Semispace,
                ..v.vm_config()
            });
            assert_eq!(
                stw.result,
                incr.result,
                "[{}] pause budget changed the result for\n{src}",
                v.name()
            );
            assert_eq!(
                stw.output,
                incr.output,
                "[{}] pause budget changed the output for\n{src}",
                v.name()
            );
            assert_eq!(
                stw.stats.promoted_words,
                incr.stats.promoted_words,
                "[{}] pause budget changed promotion traffic for\n{src}",
                v.name()
            );
            assert_eq!(
                stw.result,
                semi.result,
                "[{}] semispace diverges from generational for\n{src}",
                v.name()
            );
            assert_eq!(
                stw.output,
                semi.output,
                "[{}] semispace diverges from generational for\n{src}",
                v.name()
            );
            assert_eq!(
                incr.stats.pause_overruns,
                0,
                "[{}] over-budget pause recorded for\n{src}",
                v.name()
            );
            assert!(
                incr.stats.max_minor_pause <= 1200 && incr.stats.max_major_pause <= 1200,
                "[{}] pause above budget (minor {}, major {}) for\n{src}",
                v.name(),
                incr.stats.max_minor_pause,
                incr.stats.max_major_pause
            );
        }
    });
}

#[test]
fn generated_programs_agree_across_dispatch_engines() {
    // Dispatch-engine differential over the generated corpus: the
    // pre-decoded threaded engine must be observationally identical to
    // the decode loop on every variant — same result, same output, and
    // the same `RunStats` to the last counter (the full 200-seed ×
    // 6-variant sweep runs in `dispatch_bench`; this keeps a
    // representative slice in the tier-1 suite).
    use smlc::{Dispatch, VmConfig};
    let cfg = GenConfig::default();
    run_cases(
        "generated_programs_agree_across_dispatch_engines",
        30,
        |rng| {
            let src = gen_program(rng, &cfg);
            for v in Variant::ALL {
                let c = compile(&src, v)
                    .unwrap_or_else(|e| panic!("[{}] compile failed: {e}\n{src}", v.name()));
                let dec = c.run();
                let thr = c.run_with(&VmConfig {
                    dispatch: Dispatch::Threaded,
                    ..v.vm_config()
                });
                assert_eq!(
                    dec.result,
                    thr.result,
                    "[{}] engines disagree on the result for\n{src}",
                    v.name()
                );
                assert_eq!(
                    dec.output,
                    thr.output,
                    "[{}] engines disagree on the output for\n{src}",
                    v.name()
                );
                assert_eq!(
                    dec.stats,
                    thr.stats,
                    "[{}] engines disagree on RunStats for\n{src}",
                    v.name()
                );
                assert_eq!(thr.dispatch.engine, Dispatch::Threaded);
            }
        },
    );
}

#[test]
fn generated_programs_run_identically_under_every_scheduler_policy() {
    // Scheduler differential — the multi-tenant isolation gate: under
    // every `SchedPolicy` × `Dispatch` combination, each tenant's
    // result, output, and full `RunStats` must be byte-identical to a
    // solo run of the same program and config. Tenants get distinct
    // priorities and one gets a (generous) deadline so the policy
    // machinery genuinely reorders the schedule.
    use smlc::{Dispatch, SchedPolicy, SchedulerBuilder, TenantOutcome, TenantSpec, VmConfig};
    use std::sync::Arc;
    let cfg = GenConfig {
        items: 3,
        ..GenConfig::default()
    };
    let session = Session::default();
    run_cases(
        "generated_programs_run_identically_under_every_scheduler_policy",
        8,
        |rng| {
            let src = gen_program(rng, &cfg);
            let v = Variant::Ffb;
            let c = compile(&src, v)
                .unwrap_or_else(|e| panic!("[{}] compile failed: {e}\n{src}", v.name()));
            let program = Arc::new(c.machine.clone());
            for engine in [Dispatch::Decode, Dispatch::Threaded] {
                let vm = VmConfig {
                    dispatch: engine,
                    ..v.vm_config()
                };
                let solo = c.run_with(&vm);
                for policy in [
                    SchedPolicy::RoundRobin,
                    SchedPolicy::Priority,
                    SchedPolicy::Deadline,
                ] {
                    let sched = SchedulerBuilder::new()
                        .quantum(701)
                        .policy(policy)
                        .build()
                        .unwrap();
                    let specs = vec![
                        TenantSpec::new(program.clone(), &vm).priority(3),
                        TenantSpec::new(program.clone(), &vm).deadline_cycles(u64::MAX / 2),
                        TenantSpec::new(program.clone(), &vm),
                    ];
                    let (reports, stats) = session
                        .run_tenants_with(sched, &specs)
                        .expect("uncapped scheduler admits all tenants");
                    assert_eq!(stats.done, 3);
                    for (i, r) in reports.iter().enumerate() {
                        assert_eq!(r.outcome, TenantOutcome::Done);
                        assert_eq!(
                            r.result,
                            solo.result,
                            "[{}/{}] tenant {i} result diverges from solo for\n{src}",
                            policy.name(),
                            engine.name()
                        );
                        assert_eq!(
                            r.output,
                            solo.output,
                            "[{}/{}] tenant {i} output diverges from solo for\n{src}",
                            policy.name(),
                            engine.name()
                        );
                        assert_eq!(
                            r.stats,
                            solo.stats,
                            "[{}/{}] tenant {i} RunStats diverge from solo for\n{src}",
                            policy.name(),
                            engine.name()
                        );
                    }
                }
            }
        },
    );
}

#[test]
fn seeded_corpus_is_stable() {
    // The generator is part of the reproducibility story: the corpus a
    // seed denotes must never drift silently. Pin one program's shape.
    let src = gen_program(&mut Rng::new(12345), &GenConfig::default());
    let again = gen_program(&mut Rng::new(12345), &GenConfig::default());
    assert_eq!(src, again);
}
