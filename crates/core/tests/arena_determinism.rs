//! Scheduling-permutation differential test for the shared LTY arena.
//!
//! The arena's determinism contract (see `docs/ARCHITECTURE.md`) says
//! generated code is a pure function of `(source, variant, config)` —
//! independent of how many batch workers run, how the scheduler
//! interleaves them, and in which order jobs arrive. This suite pins
//! that contract by compiling a mixed workload under every combination
//! of worker count {1, 2, 8} and several deterministically shuffled job
//! orders, comparing each artifact byte-for-byte against a serial cold
//! reference compiled in its own fresh session.
//!
//! Per-compile LTY statistics are compared too: they come from each
//! compile's private interner view, so they must be identical warm or
//! cold, serial or parallel.

use smlc::{Compiled, Job, Session, Variant};

/// Recursive polymorphic list workout: many re-instantiations.
const POLY_LISTS: &str = r#"
    fun map f nil = nil | map f (x :: r) = f x :: map f r
    fun len nil = 0 | len (_ :: r) = 1 + len r
    fun up 0 = nil | up n = n :: up (n - 1)
    val xs = map (fn x => x + 1) (up 40)
    val ys = map (fn x => (x, real x)) xs
    val _ = print (itos (len xs + len ys))
"#;

/// Float-heavy arithmetic: exercises `Real` kinds and boxing choices.
const FLOATS: &str = r#"
    fun sq (x : real) = x * x
    fun horner (a : real, b : real, c : real, x : real) = (a * x + b) * x + c
    fun lp (i, acc) = if i = 0 then acc
                      else lp (i - 1, acc + horner (1.0, 2.0, 3.0, sq (real i)))
    val _ = print (rtos (lp (30, 0.0)))
"#;

/// Nested records and selections: deep `SRecord`/`Record` structure.
const RECORDS: &str = r#"
    fun swap (a, b) = (b, a)
    val p = ((1, 2.0), ("x", (3, 4)))
    val q = swap p
    val (u, v) = q
    val _ = print (itos (#1 (#2 u)))
"#;

/// Higher-order functions and closures: arrow-kind churn.
const CLOSURES: &str = r#"
    fun compose f g = fn x => f (g x)
    fun twice f = compose f f
    val inc = fn x => x + 1
    val four = twice twice
    val _ = print (itos (four inc 0))
"#;

/// Exceptions and conditionals around allocation.
const EXCEPTIONS: &str = r#"
    exception Neg
    fun fact n = if n < 0 then raise Neg
                 else if n = 0 then 1 else n * fact (n - 1)
    val r = (fact 10) handle Neg => 0
    val _ = print (itos r)
"#;

const SOURCES: [&str; 5] = [POLY_LISTS, FLOATS, RECORDS, CLOSURES, EXCEPTIONS];

/// Variants mixed into the workload. Using more than one variant makes
/// distinct interner modes and representation choices contend for the
/// same arena shards.
const VARIANTS: [Variant; 3] = [Variant::Ffb, Variant::Nrp, Variant::Fp3];

/// The canonical byte string of a compiled artifact.
fn code_bytes(c: &Compiled) -> String {
    format!("{:?}", c.machine)
}

/// A deterministic LCG (Numerical Recipes constants) — the repo takes
/// no RNG dependency, and the shuffles must be reproducible anyway.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// Fisher–Yates driven by the LCG.
fn shuffle<T>(xs: &mut [T], seed: u64) {
    let mut rng = Lcg(seed);
    for i in (1..xs.len()).rev() {
        let j = (rng.next() as usize) % (i + 1);
        xs.swap(i, j);
    }
}

/// One reference artifact per (source, variant): compiled serial and
/// cold, each in its own fresh session with the cache off.
fn references() -> Vec<(usize, Variant, Compiled)> {
    let mut out = Vec::new();
    for (si, src) in SOURCES.iter().enumerate() {
        for &v in &VARIANTS {
            let c = Session::builder()
                .variant(v)
                .cache(false)
                .build()
                .expect("valid")
                .compile(src)
                .expect("reference compiles");
            out.push((si, v, c));
        }
    }
    out
}

#[test]
fn warm_batches_are_byte_identical_across_workers_and_orders() {
    let refs = references();

    // Job indices 0..15 into `refs`; shuffled per permutation.
    let order: Vec<usize> = (0..refs.len()).collect();
    let seeds = [0x5eed_0001u64, 0x5eed_0002, 0x5eed_0003, 0x5eed_0004];

    for workers in [1usize, 2, 8] {
        for &seed in &seeds {
            let mut perm = order.clone();
            shuffle(&mut perm, seed);
            let jobs: Vec<Job> = perm
                .iter()
                .map(|&k| {
                    let (si, v, _) = refs[k];
                    Job::with_variant(SOURCES[si].to_owned(), v)
                })
                .collect();

            // One shared warm session per permutation; the cache is off
            // so every job really compiles through the shared arena.
            let session = Session::builder()
                .batch_workers(workers)
                .cache(false)
                .build()
                .expect("valid");
            let results = session.compile_batch(&jobs);
            assert_eq!(results.len(), jobs.len());

            for (slot, &k) in perm.iter().enumerate() {
                let (si, v, ref reference) = refs[k];
                let got = results[slot].as_ref().unwrap_or_else(|e| {
                    panic!("workers={workers} seed={seed:#x} job={si}/{v:?}: {e}")
                });
                let tag = format!(
                    "workers={workers} seed={seed:#x} src={si} variant={}",
                    v.name()
                );
                assert_eq!(
                    code_bytes(got),
                    code_bytes(reference),
                    "machine code diverged: {tag}"
                );
                assert_eq!(
                    got.stats.code_size, reference.stats.code_size,
                    "code size diverged: {tag}"
                );
                assert_eq!(
                    got.stats.lty, reference.stats.lty,
                    "per-compile LTY stats diverged: {tag}"
                );
                assert_eq!(
                    got.stats.coerce, reference.stats.coerce,
                    "coercion stats diverged: {tag}"
                );
            }
        }
    }
}

#[test]
fn warm_batch_runs_agree_with_cold_reference_runs() {
    // Beyond code bytes: actually execute the warm-batch artifacts and
    // compare observable behavior against the cold references.
    let refs = references();
    let jobs: Vec<Job> = refs
        .iter()
        .map(|&(si, v, _)| Job::with_variant(SOURCES[si].to_owned(), v))
        .collect();

    let session = Session::builder()
        .batch_workers(8)
        .cache(false)
        .build()
        .expect("valid");
    // Compile the batch twice; the second round is fully warm.
    let _ = session.compile_batch(&jobs);
    let results = session.compile_batch(&jobs);

    for (slot, (si, v, reference)) in refs.iter().enumerate() {
        let got = results[slot].as_ref().expect("compiles");
        let (a, b) = (session.run(got), session.run(reference));
        assert_eq!(a.output, b.output, "output diverged: src={si} {}", v.name());
        assert_eq!(a.result, b.result, "result diverged: src={si} {}", v.name());
        assert_eq!(
            a.stats.instrs,
            b.stats.instrs,
            "instruction count diverged: src={si} {}",
            v.name()
        );
    }
}
