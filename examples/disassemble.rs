//! Disassemble the paper's introductory `quad` example under the
//! non-type-based compiler (`sml.nrp`) and the fully type-based one
//! (`sml.ffb`), side by side with their runtime statistics.
//!
//! The paper's §1 motivates representation analysis with exactly this
//! program: a polymorphic `double` applied at type `real -> real`. Under
//! standard boxed conventions every float crossing `f` is a heap object;
//! under `sml.ffb` the float flows through floating-point registers and
//! the inner calls allocate nothing.
//!
//! ```sh
//! cargo run --example disassemble
//! ```

use smlc::{Session, Variant};

const QUAD: &str = "
fun double f x = f (f x)
fun quad g = double double g
fun inc (y : real) = y + 1.0
val _ = print (rtos (quad inc 1.0))
";

fn main() {
    println!("source:\n{QUAD}");
    let session = Session::default();
    for variant in [Variant::Nrp, Variant::Ffb] {
        let compiled = session.compile_variant(QUAD, variant).expect("compile");
        println!("================ {} ================", variant.name());
        print!("{}", compiled.machine);
        let out = session.run(&compiled);
        println!(
            "\noutput {:?} | cycles {} | alloc {} words\n",
            out.output, out.stats.cycles, out.stats.alloc_words
        );
    }
    println!(
        "Under sml.ffb the float argument travels in FP registers and the\n\
         `+ 1.0` works on unboxed values; under sml.nrp every call boxes\n\
         its float (`fbox`/`funbox` pairs and larger allocation counts\n\
         in the listing above)."
    );
}
