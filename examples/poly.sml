(* Polymorphism exercising the observability counters: repeated
   instantiations drive LTY hash-cons hits; float uses force WRAPs
   under the type-based variants. Try:
   cargo run --release -p smlc --bin smlc -- --all --stats=json examples/poly.sml *)
fun id x = x
fun compose f g x = f (g x)
fun twice f = compose f f
val inc = fn n => n + 1
val four = twice twice inc 0
val half = id 0.5
val _ = print (itos (id four))
val _ = print "\n"
