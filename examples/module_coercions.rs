//! Demonstrates the paper's module-language representation analysis
//! (sections 3-4): signature matching inserts thinning coercions,
//! `abstraction` forces standard boxed representations for values of
//! abstract type, and functor application coerces between abstract and
//! concrete representations — all invisible to the programmer.
//!
//! ```sh
//! cargo run --example module_coercions
//! ```

use smlc::{Session, Variant};

fn main() {
    let program = r#"
        (* A 2D-vector abstraction. Inside the functor, `X.t` is flexible,
           so vectors passed through it use the standard (recursively
           boxed) representation; at the concrete call sites below they
           are flat records of raw floats. The compiler inserts the
           coercions at the boundaries. *)
        signature VEC = sig
          type t
          val mk : real * real -> t
          val add : t * t -> t
          val dot : t * t -> real
        end

        structure FlatVec = struct
          type t = real * real
          fun mk (x : real, y : real) = (x, y)
          fun add (((a, b), (c, d)) : t * t) = (a + c, b + d)
          fun dot (((a, b), (c, d)) : t * t) = a * c + b * d
        end

        functor Norms (X : VEC) = struct
          fun norm2 v = X.dot (v, v)
          fun stretch (v, k) =
            let fun go (acc, 0) = acc
                  | go (acc, n) = go (X.add (acc, v), n - 1)
            in go (X.mk (0.0, 0.0), k) end
        end

        structure N = Norms (FlatVec)

        (* Opaque ascription: outside, `t` is abstract. *)
        abstraction A : VEC = FlatVec

        val v = FlatVec.mk (3.0, 4.0)
        val n2 = N.norm2 v
        val big = N.stretch (v, 1000)
        val abs_v = A.mk (1.0, 2.0)
        val abs_n = A.dot (abs_v, abs_v)
        val _ = print ("norm2 (3,4)      = " ^ rtos n2 ^ "\n")
        val _ = print ("norm2 (stretch)  = " ^ rtos (N.norm2 big) ^ "\n")
        val _ = print ("dot (abstract)   = " ^ rtos abs_n ^ "\n")
    "#;

    let session = Session::default();
    for v in [Variant::Nrp, Variant::Ffb] {
        let compiled = session.compile_variant(program, v).expect("compiles");
        let o = session.run(&compiled);
        println!("== {} ==", v.name());
        print!("{}", o.output);
        let c = &compiled.stats.coerce;
        println!(
            "coercions: {} requested, {} identities, {} wrap/unwrap, {} fn wrappers, \
             {} record rebuilds, {} shared-coercion hits",
            c.requests, c.identities, c.wraps, c.fn_wrappers, c.record_rebuilds, c.shared_hits
        );
        println!(
            "cycles {}  alloc {} words\n",
            o.stats.cycles, o.stats.alloc_words
        );
    }
}
