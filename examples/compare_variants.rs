//! Compares the six compiler variants of the paper's evaluation on a
//! float-intensive workload, printing the per-variant execution time,
//! heap allocation, and code size — a miniature of the paper's Figure 8.
//!
//! ```sh
//! cargo run --release --example compare_variants
//! ```

use smlc::{Session, Variant};

fn main() {
    // A projectile integrator: float pairs flow through a tail-recursive
    // loop — exactly the kind of code where unboxed floats (sml.ffb) and
    // flattened arguments shine.
    let program = r#"
        fun step ((x, y), (vx, vy), n) =
          if n = 0 then (x, y)
          else step ((x + vx * 0.01, y + vy * 0.01),
                     (vx * 0.999, vy * 0.999 - 0.098), n - 1)
        val (fx, fy) = step ((0.0, 0.0), (30.0, 40.0), 20000)
        val _ = print (rtos fx ^ " " ^ rtos fy ^ "\n")
    "#;

    println!(
        "{:10} {:>12} {:>12} {:>10} {:>8} {:>8}",
        "variant", "cycles", "alloc words", "code size", "exec", "alloc"
    );
    let session = Session::default();
    let mut base: Option<(u64, u64)> = None;
    for v in Variant::ALL {
        let compiled = session.compile_variant(program, v).expect("compiles");
        let o = session.run(&compiled);
        let (bc, ba) = *base.get_or_insert((o.stats.cycles, o.stats.alloc_words));
        println!(
            "{:10} {:>12} {:>12} {:>10} {:>8.2} {:>8.2}",
            v.name(),
            o.stats.cycles,
            o.stats.alloc_words,
            compiled.stats.code_size,
            o.stats.cycles as f64 / bc as f64,
            o.stats.alloc_words as f64 / ba as f64,
        );
    }
    println!("\n(ratios are relative to sml.nrp, as in the paper's Figure 8)");
}
