(* Classic doubly-recursive Fibonacci; try:
   cargo run --release -p smlc --bin smlc -- --stats=json examples/fib.sml *)
fun fib n = if n < 2 then n else fib (n - 1) + fib (n - 2)
val _ = print (itos (fib 20))
val _ = print "\n"
