//! Walks a small program through every phase of the paper's Figure 3
//! pipeline, printing the intermediate sizes and the final machine code.
//!
//! ```sh
//! cargo run --example pipeline_explorer -- "fun twice f x = f (f x)  val y = twice (fn n => n + 1) 40"
//! ```

use sml_cps::{close, convert, optimize, OptConfig};
use sml_lambda::translate;
use smlc::Variant;

fn main() {
    let default = "fun twice f x = f (f x)  val y = twice (fn n => n + 1) 40 \
                   val _ = print (itos y)";
    let src = std::env::args()
        .nth(1)
        .unwrap_or_else(|| default.to_owned());
    let variant = Variant::Ffb;

    println!("source ({} bytes):\n{src}\n", src.len());

    let prog = sml_ast::parse(&src).expect("parse");
    println!(
        "[parse]            {} top-level declarations",
        prog.decs.len()
    );

    let mut elab = sml_elab::elaborate(&prog).expect("elaborate");
    println!(
        "[elaborate]        {} typed declarations, {} variables",
        elab.decs.len(),
        elab.vars.len()
    );

    sml_elab::minimum_typing(&mut elab);
    println!("[mtd]              minimum typing derivations applied");

    let mut tr = translate(&elab, &variant.lambda_config());
    println!(
        "[translate]        LEXP size {} nodes, {} distinct LTYs, {} coercions ({} identities)",
        tr.lexp.size(),
        tr.interner.len(),
        tr.stats.requests,
        tr.stats.identities
    );

    let mut cps = convert(&tr.lexp, &mut tr.interner, tr.n_vars, &variant.cps_config());
    println!("[cps-convert]      {} CPS operators", cps.body.size());

    let stats = optimize(&mut cps, &OptConfig::default());
    println!(
        "[cps-optimize]     {} operators after {} rounds ({} beta, {} inlined, {} dead, {} wrap-pairs cancelled)",
        cps.body.size(),
        stats.rounds,
        stats.beta,
        stats.inlined,
        stats.dead,
        stats.wrap_cancelled
    );

    let closed = close(cps);
    println!(
        "[closure-convert]  {} first-order functions",
        closed.funs.len()
    );

    let machine = sml_vm::codegen(&closed);
    println!(
        "[codegen]          {} instructions in {} blocks\n",
        machine.code_size(),
        machine.blocks.len()
    );

    print!("{machine}");

    let out = sml_vm::run(&machine, &variant.vm_config());
    println!("\nresult: {:?}   output: {:?}", out.result, out.output);
    println!(
        "cycles {}  instrs {}  alloc {} words  gcs {}",
        out.stats.cycles, out.stats.instrs, out.stats.alloc_words, out.stats.n_gcs
    );
}
