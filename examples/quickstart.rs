//! Quickstart: compile an SML program with the type-based compiler and
//! run it on the abstract machine.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use smlc::{Session, Variant, VmResult};

fn main() {
    let program = r#"
        (* The paper's running example (section 1): a polymorphic `quad`
           applied to a monomorphic real function. The type-based
           compiler wraps `h` so that `f` is called correctly inside
           `quad`, while direct calls to `h` pass reals in float
           registers. *)
        fun quad f x = f (f (f (f x)))
        fun h (x : real) = x * x * x + x * 2.0 + 1.0

        val direct = h (h 1.05)
        val wrapped = quad h 1.05
        val _ = print ("h (h 1.05)    = " ^ rtos direct ^ "\n")
        val _ = print ("quad h 1.05   = " ^ rtos wrapped ^ "\n")

        fun fib n = if n < 2 then n else fib (n - 1) + fib (n - 2)
        val _ = print ("fib 25        = " ^ itos (fib 25) ^ "\n")
    "#;

    // `Variant::Ffb` is the paper's best compiler: representation
    // analysis + minimum typing derivations + unboxed floats. A session
    // carries the configuration and caches artifacts across compiles.
    let session = Session::with_variant(Variant::Ffb);
    let compiled = session.compile(program).expect("the program type checks");
    let outcome = session.run(&compiled);

    print!("{}", outcome.output);
    match outcome.result {
        VmResult::Value(_) => {}
        other => panic!("abnormal termination: {other:?}"),
    }
    println!("---");
    println!(
        "machine code size : {} instructions",
        compiled.stats.code_size
    );
    println!("compile time      : {:?}", compiled.stats.compile_time);
    println!("cycles executed   : {}", outcome.stats.cycles);
    println!("heap allocated    : {} words", outcome.stats.alloc_words);
    println!("collections       : {}", outcome.stats.n_gcs);
}
