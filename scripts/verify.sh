#!/usr/bin/env bash
# Full verification gate: the tier-1 test suite plus formatting, lint,
# and fuzz checks. Run from anywhere inside the repository; CI and
# pre-merge checks should pass this script exactly as-is.
set -euo pipefail
cd "$(dirname "$0")/.."

# The `pub` surface of the smlc crate, one canonical line per item
# (see docs/API.md and the snapshot gate below).
api_snapshot() {
  grep -rhoE '^[[:space:]]*pub (fn|struct|enum|trait|const|type) [A-Za-z_][A-Za-z0-9_]*' crates/core/src \
    | sed -E 's/^[[:space:]]+//' | LC_ALL=C sort -u
}

if [[ "${1:-}" == "--update-api-surface" ]]; then
  api_snapshot > tests/api_surface.txt
  echo "updated tests/api_surface.txt ($(wc -l < tests/api_surface.txt) items)"
  exit 0
fi

echo "== tier-1: build (release) =="
cargo build --release

echo "== tier-1: tests =="
cargo test -q

echo "== rustfmt =="
cargo fmt --check

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

# Public-API snapshot: the `pub` surface of the smlc crate is pinned in
# tests/api_surface.txt (see docs/API.md). An intentional surface change
# regenerates the file with the same recipe; an accidental one fails
# here.
echo "== public API surface =="
if ! diff -u tests/api_surface.txt <(api_snapshot); then
  echo "error: public API surface drifted from tests/api_surface.txt" >&2
  echo "  regenerate with: scripts/verify.sh --update-api-surface" >&2
  exit 1
fi

# Typed-IR verification gate (docs/VERIFY_IR.md). Tier-1 tests already
# run with VerifyIr::Debug active (dev profile); here the fuzz smoke is
# repeated in release with every verifier forced on, the mutation
# harness proves the seeded IR corruptions are rejected at their
# introducing phase, and the overhead benchmark writes BENCH_pr5.json
# while asserting VerifyIr::Off runs zero checks and never changes the
# emitted code.
echo "== verify-ir: mutation harness =="
cargo test -q -p smlc --test verify_ir

echo "== verify-ir: fuzz smoke (release, 200 seeds, VerifyIr::Always) =="
SMLC_VERIFY_IR=always cargo run -q --release -p smlc-bench --bin fuzz_smoke

echo "== verify-ir: overhead bench (BENCH_pr5.json) =="
cargo run -q --release -p smlc-bench --bin verify_bench

# Differential fuzz smoke (docs/ROBUSTNESS.md): seeded well-typed
# programs under all six variants, demanding no panic, no trap, and
# identical output. First a short dev-profile pass so debug assertions
# in the compiler and VM are live, then the full release sweep.
echo "== fuzz smoke (dev profile, debug assertions) =="
cargo run -q -p smlc-bench --bin fuzz_smoke -- --seeds=40

echo "== fuzz smoke (release, 200 seeds) =="
cargo run -q --release -p smlc-bench --bin fuzz_smoke

# Artifact-cache benchmark: runs the 12x6 matrix cache-off, cold, and
# warm in one reused session, asserts the warm pass is served entirely
# from cache with outcomes byte-identical to the serial cold path, and
# writes the BENCH_pr3.json trajectory.
echo "== cache bench (BENCH_pr3.json) =="
cargo run -q --release -p smlc-bench --bin cache_bench

# Generational-GC benchmark: sweeps nursery sizes over the figure
# benchmarks against the semispace baseline collector, asserts outputs
# stay byte-identical and that the generational default copies fewer
# total words, and writes the BENCH_pr4.json trajectory.
echo "== gc bench (BENCH_pr4.json) =="
cargo run -q --release -p smlc-bench --bin gc_bench

# Bounded-pause / tenant-isolation gate (docs/ROBUSTNESS.md): the
# figure benchmarks and a 200-seed progen corpus are run three ways —
# generational stop-the-world, generational with a pause budget, and
# the semispace baseline — demanding byte-identical outputs, identical
# promotion traffic, and zero over-budget pauses; a 16-tenant storm
# with one hostile tenant must exhaust only that tenant's quota while
# the other fifteen finish with their solo results. Writes the
# BENCH_pr7.json trajectory.
echo "== gc pause bench (BENCH_pr7.json) =="
cargo run -q --release -p smlc-bench --bin gc_pause_bench

echo "== incremental GC / scheduler differential =="
cargo test -q -p sml-vm --test incremental

# Shared LTY arena gate (docs/ARCHITECTURE.md): the scheduling-
# permutation differential test pins that warm parallel batches are
# byte-identical to the serial cold reference across worker counts and
# shuffled job orders; the intern-storm property test pins exact arena
# accounting under contention; the benchmark asserts warm interning
# beats cold and writes the BENCH_pr6.json trajectory.
echo "== arena: scheduling-permutation differential =="
cargo test -q -p smlc --test arena_determinism

echo "== arena: intern-storm accounting =="
cargo test -q -p sml-lambda --test intern_storm

echo "== arena bench (BENCH_pr6.json) =="
cargo run -q --release -p smlc-bench --bin arena_bench

# SCC-incremental compilation gate (docs/ARCHITECTURE.md §Incremental
# elaboration, docs/SERVER.md): partitioner edge cases, the
# recompiled-counter contract, and incremental-vs-whole-program
# byte-identity on edits, progen seeds, and the figure benchmarks; the
# server suite drives concurrent clients, the wire protocol's error
# taxonomy, and EOF/SIGTERM shutdown of the `smlc serve` binary.
echo "== scc: components + server =="
cargo test -q -p smlc --test components --test server
cargo test -q -p smlc-bench --test incremental

# Incremental-elaboration benchmark: a single-declaration edit on a
# 40-dec chain must replay only the dirtied suffix, and a 200-seed
# progen sweep must stay byte-identical to whole-program elaboration,
# cold and warm. Writes the BENCH_pr8.json trajectory.
echo "== incremental bench (BENCH_pr8.json) =="
cargo run -q --release -p smlc-bench --bin incr_bench

# Dispatch-engine gate (docs/ARCHITECTURE.md §7): the threaded engine's
# differential suite (trap parity, fuel sweeps mid-superinstruction,
# scheduler slicing, stream verification), then the bench gate proving
# decode/threaded observational identity over the figure benchmarks ×
# all six variants plus a 200-seed progen corpus and recording the
# threaded engine's wall-time geomean. Writes the BENCH_pr9.json
# trajectory.
echo "== dispatch: engine differential =="
cargo test -q -p sml-vm --test dispatch

echo "== dispatch bench (BENCH_pr9.json) =="
cargo run -q --release -p smlc-bench --bin dispatch_bench

# Scheduler gate (docs/SCHEDULER.md): the policy suite (builder
# validation, typed admission errors, EDF feasibility, starvation
# aging, overshoot accounting, a fault-injected 1000-tenant isolation
# storm), then the bench gate. sched_bench's round-robin storm is the
# no-regression baseline — every well-behaved tenant must stay
# byte-identical to its solo run under each policy — and its deadline
# curves must show EDF missing nothing on the feasible workload while
# round-robin misses under load. Writes the BENCH_pr10.json trajectory.
echo "== sched: policy suite =="
cargo test -q -p sml-vm --test sched

echo "== sched bench (BENCH_pr10.json) =="
cargo run -q --release -p smlc-bench --bin sched_bench

# Documentation gate: every relative Markdown link in README.md and
# docs/*.md must resolve (first-party checker, no external deps).
echo "== docs: relative-link check =="
cargo run -q --release -p smlc-bench --bin docs_lint

echo "verify: all gates passed"
