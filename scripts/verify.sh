#!/usr/bin/env bash
# Full verification gate: the tier-1 test suite plus formatting, lint,
# and fuzz checks. Run from anywhere inside the repository; CI and
# pre-merge checks should pass this script exactly as-is.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: build (release) =="
cargo build --release

echo "== tier-1: tests =="
cargo test -q

echo "== rustfmt =="
cargo fmt --check

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

# Differential fuzz smoke (docs/ROBUSTNESS.md): seeded well-typed
# programs under all six variants, demanding no panic, no trap, and
# identical output. First a short dev-profile pass so debug assertions
# in the compiler and VM are live, then the full release sweep.
echo "== fuzz smoke (dev profile, debug assertions) =="
cargo run -q -p smlc-bench --bin fuzz_smoke -- --seeds=40

echo "== fuzz smoke (release, 200 seeds) =="
cargo run -q --release -p smlc-bench --bin fuzz_smoke

echo "verify: all gates passed"
