#!/usr/bin/env bash
# Full verification gate: the tier-1 test suite plus formatting and
# lint checks. Run from anywhere inside the repository; CI and
# pre-merge checks should pass this script exactly as-is.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: build (release) =="
cargo build --release

echo "== tier-1: tests =="
cargo test -q

echo "== rustfmt =="
cargo fmt --check

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "verify: all gates passed"
