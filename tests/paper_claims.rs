//! Machine-checked versions of the paper's qualitative claims: who wins,
//! in which direction, on which kind of workload. Absolute numbers are
//! substrate-dependent (see DESIGN.md), but these directional properties
//! must hold for the reproduction to be faithful.

use smlc::{CompileError, Compiled, Session, Variant};

/// Compiles through a fresh single-variant session.
fn compile(src: &str, v: Variant) -> Result<Compiled, CompileError> {
    Session::with_variant(v).compile(src)
}

fn cycles(src: &str, v: Variant) -> u64 {
    compile(src, v).expect("compiles").run().stats.cycles
}

fn alloc(src: &str, v: Variant) -> u64 {
    compile(src, v).expect("compiles").run().stats.alloc_words
}

const FLOAT_LOOP: &str = r#"
    fun step ((x, y), (vx, vy), n) =
      if n = 0 then (x, y)
      else step ((x + vx * 0.01, y + vy * 0.01),
                 (vx * 0.999, vy * 0.999 - 0.098), n - 1)
    val (fx, fy) = step ((0.0, 0.0), (30.0, 40.0), 5000)
    val _ = print (rtos (fx + fy))
"#;

#[test]
fn type_based_compilers_beat_nrp_on_floats() {
    // Paper 6: "The type-based compilers perform uniformly better than
    // older compilers that do not support representation analysis."
    let nrp = cycles(FLOAT_LOOP, Variant::Nrp);
    let rep = cycles(FLOAT_LOOP, Variant::Rep);
    let ffb = cycles(FLOAT_LOOP, Variant::Ffb);
    assert!(rep <= nrp, "rep {rep} vs nrp {nrp}");
    assert!(
        ffb < rep,
        "unboxed floats must beat boxed floats: ffb {ffb} vs rep {rep}"
    );
    assert!(
        (ffb as f64) < 0.85 * nrp as f64,
        "the float win must be substantial: ffb {ffb} vs nrp {nrp}"
    );
}

#[test]
fn ffb_reduces_heap_allocation_substantially() {
    // Paper: sml.ffb decreases total heap allocation by 36% on average;
    // on float loops far more.
    let nrp = alloc(FLOAT_LOOP, Variant::Nrp);
    let ffb = alloc(FLOAT_LOOP, Variant::Ffb);
    assert!(
        (ffb as f64) < 0.7 * nrp as f64,
        "ffb alloc {ffb} vs nrp {nrp}"
    );
}

#[test]
fn fag_flattens_known_function_arguments() {
    // Paper: "the simple, non-type-based argument flattening optimization
    // in the sml.fag compiler gives a useful speedup" (with reduced
    // allocation: the argument tuples are never built).
    let src = r#"
        fun add3 (a, b, c) = a + b + c
        fun lp (i, acc) = if i = 0 then acc else lp (i - 1, add3 (acc, i, 1))
        val _ = print (itos (lp (20000, 0)))
    "#;
    let nrp = alloc(src, Variant::Nrp);
    let fag = alloc(src, Variant::Fag);
    assert!(fag < nrp, "fag must allocate less: {fag} vs {nrp}");
}

#[test]
fn mtd_specializes_life_style_equality() {
    // Paper 6: "the (slow) polymorphic equality in a tight loop ... is
    // successfully transformed into a (fast) monomorphic equality
    // operator" by minimum typing derivations.
    let src = r#"
        fun loop (i, acc, set) =
          if i = 0 then acc
          else
            let
              fun member (x, nil) = false
                | member (x, y :: r) = x = y orelse member (x, r)
            in
              loop (i - 1, (if member (i mod 40, set) then acc + 1 else acc), set)
            end
        val _ = print (itos (loop (4000, 0, [1, 5, 9, 13, 17, 21, 25, 29, 33, 37])))
    "#;
    let rep = cycles(src, Variant::Rep);
    let mtd = cycles(src, Variant::Mtd);
    assert!(
        (mtd as f64) < 0.75 * rep as f64,
        "MTD must substantially speed up the equality loop: mtd {mtd} vs rep {rep}"
    );
}

#[test]
fn mtd_mostly_matches_rep_elsewhere() {
    // Paper: "most of the coercions eliminated by MTD would have been
    // eliminated anyway by CPS contractions" — outside equality-style
    // cases the two run neck and neck.
    let src = r#"
        fun fib n = if n < 2 then n else fib (n - 1) + fib (n - 2)
        val _ = print (itos (fib 18))
    "#;
    let rep = cycles(src, Variant::Rep) as f64;
    let mtd = cycles(src, Variant::Mtd) as f64;
    assert!((mtd / rep - 1.0).abs() < 0.1, "rep {rep} vs mtd {mtd}");
}

#[test]
fn fp3_close_to_ffb() {
    // Paper Figure 8: sml.fp3 is a wash relative to sml.ffb (0.81 vs
    // 0.77 overall — slightly worse on average).
    let ffb = cycles(FLOAT_LOOP, Variant::Ffb) as f64;
    let fp3 = cycles(FLOAT_LOOP, Variant::Fp3) as f64;
    assert!(fp3 / ffb < 1.15, "fp3 {fp3} vs ffb {ffb}");
    assert!(fp3 / ffb > 0.9, "fp3 {fp3} vs ffb {ffb}");
}

#[test]
fn recursive_datatypes_use_standard_boxed_elements() {
    // Paper 2/Figure 2: list elements keep standard boxed representations
    // under every variant, so putting flat float pairs into lists costs
    // coercions — and all variants still agree on results.
    let src = r#"
        fun unzip nil = (nil, nil)
          | unzip ((a, b) :: r) = let val (xs, ys) = unzip r in (a :: xs, b :: ys) end
        fun suml nil = 0.0 | suml (x :: r) = x + suml r
        fun build 0 = nil | build n = (real n, real n * 0.5) :: build (n - 1)
        val (xs, ys) = unzip (build 200)
        val _ = print (rtos (suml xs + suml ys))
    "#;
    let mut outs = Vec::new();
    for v in Variant::ALL {
        outs.push(compile(src, v).unwrap().run().output);
    }
    assert!(
        outs.windows(2).all(|w| w[0] == w[1]),
        "all variants agree: {outs:?}"
    );
}

#[test]
fn wrap_cancellation_fires_in_optimizer() {
    // Paper 5.2: "pairs of wrapper and unwrapper operations are
    // cancelled" in the CPS optimizer.
    let src = r#"
        fun id x = x
        val a = id 2.5
        val b = a + 0.5
        val _ = print (rtos b)
    "#;
    let compiled = compile(src, Variant::Ffb).unwrap();
    let o = compiled.run();
    assert_eq!(o.output, "3.0");
    assert!(
        compiled.stats.opt.wrap_cancelled > 0 || compiled.stats.opt.beta > 0,
        "optimizer stats: {:?}",
        compiled.stats.opt
    );
}

#[test]
fn code_size_stays_comparable() {
    // Paper Figure 8: generated code size remains about the same across
    // compilers (within a few percent).
    {
        let b = FLOAT_LOOP;
        let nrp = compile(b, Variant::Nrp).unwrap().stats.code_size as f64;
        let ffb = compile(b, Variant::Ffb).unwrap().stats.code_size as f64;
        let ratio = ffb / nrp;
        assert!((0.5..1.5).contains(&ratio), "code size ratio {ratio}");
    }
}

#[test]
fn hash_consing_keeps_type_count_constant() {
    // Paper 4.5: with hash-consing, functor applications share static
    // representations; type-node counts must not grow with the number of
    // applications.
    use sml_lambda::{translate, LambdaConfig};
    let mk = |n: usize| {
        let mut s = String::from(
            "signature S = sig type t val mk : real -> t end\n\
             functor F (X : S) = struct val a = X.mk 1.0 end\n\
             structure R = struct type t = real fun mk (x : real) = x end\n",
        );
        for i in 0..n {
            s.push_str(&format!("structure B{i} = F (R)\n"));
        }
        s
    };
    let count = |n: usize| {
        let prog = sml_ast::parse(&mk(n)).unwrap();
        let elab = sml_elab::elaborate(&prog).unwrap();
        let tr = translate(&elab, &LambdaConfig::default());
        tr.interner.len()
    };
    assert_eq!(
        count(4),
        count(64),
        "LTY count independent of functor applications"
    );
}
