//! Cross-crate integration tests: drive the full pipeline on programs
//! exercising several subsystems at once, and property-test the
//! compiler's end-to-end arithmetic against a Rust oracle.

use smlc::{CompileError, Compiled, Outcome, Session, Variant, VmResult};

/// Compiles through a fresh single-variant session.
fn compile(src: &str, v: Variant) -> Result<Compiled, CompileError> {
    Session::with_variant(v).compile(src)
}

/// Session-based replacement for the old free `compile_and_run`.
fn compile_and_run(src: &str) -> Result<Outcome, CompileError> {
    Session::default().compile_and_run(src)
}

fn output_all_variants(src: &str) -> String {
    let mut first: Option<String> = None;
    for v in Variant::ALL {
        let o = compile(src, v)
            .unwrap_or_else(|e| panic!("[{v}] {e}"))
            .run();
        assert!(
            matches!(o.result, VmResult::Value(_)),
            "[{v}] abnormal: {:?}",
            o.result
        );
        match &first {
            None => first = Some(o.output),
            Some(f) => assert_eq!(&o.output, f, "[{v}] differs"),
        }
    }
    first.expect("at least one variant")
}

#[test]
fn full_pipeline_composition() {
    // Modules + datatypes + exceptions + floats + higher-order functions
    // in one program.
    let out = output_all_variants(
        r#"
        signature STACK = sig
          type 'a t
          val empty : 'a t
          val push : 'a * 'a t -> 'a t
          val pop : 'a t -> 'a * 'a t
          exception Empty
        end

        structure ListStack = struct
          type 'a t = 'a list
          exception Empty
          val empty = nil
          fun push (x, s) = x :: s
          fun pop nil = raise Empty
            | pop (x :: s) = (x, s)
        end

        functor Calc (S : STACK) = struct
          fun eval ops =
            let
              fun go (nil, s) = let val (r, _) = S.pop s in r end
                | go (1 :: rest, s) =
                    let
                      val (a, s1) = S.pop s
                      val (b, s2) = S.pop s1
                    in go (rest, S.push (a + b, s2)) end
                | go (2 :: rest, s) =
                    let
                      val (a, s1) = S.pop s
                      val (b, s2) = S.pop s1
                    in go (rest, S.push (a * b, s2)) end
                | go (n :: rest, s) = go (rest, S.push (n, s))
            in
              go (ops, S.empty)
            end
        end

        structure C = Calc (ListStack)
        (* 10 20 + 3 *  => 90  (operands are encoded as >2) *)
        val r = C.eval [10, 20, 1, 3, 2]
        val oops = C.eval [1] handle ListStack.Empty => ~1
        val _ = print (itos r ^ " " ^ itos oops ^ "\n")
    "#,
    );
    assert_eq!(out, "90 -1\n");
}

#[test]
fn closures_capture_floats() {
    let out = output_all_variants(
        r#"
        fun make_adder (x : real) = fn y => x + y
        val add3 = make_adder 3.5
        val adders = [make_adder 1.0, make_adder 2.0, add3]
        fun total nil = 0.0 | total (f :: r) = f 10.0 + total r
        val _ = print (rtos (total adders) ^ "\n")
    "#,
    );
    assert_eq!(out, "36.5\n");
}

#[test]
fn callcc_escapes_through_modules() {
    let out = output_all_variants(
        r#"
        fun appf f nil = () | appf f (x :: r) = (f x; appf f r)
        structure K = struct
          fun first_leq (limit : int) l =
            callcc (fn k =>
              (appf (fn x => if x <= limit then throw k x else ()) l; ~1))
        end
        val a = K.first_leq 3 [9, 7, 2, 8]
        val b = K.first_leq 0 [9, 7, 2, 8]
        val _ = print (itos a ^ " " ^ itos b ^ "\n")
    "#,
    );
    assert_eq!(out, "2 -1\n");
}

#[test]
fn deep_recursion_allocates_and_collects() {
    let src = r#"
        fun down 0 = nil | down n = n :: down (n - 1)
        fun sum nil = 0 | sum (x :: r) = x + sum r
        fun iter (0, acc) = acc | iter (k, acc) = iter (k - 1, acc + sum (down 500))
        val _ = print (itos (iter (200, 0)) ^ "\n")
    "#;
    let c = compile(src, Variant::Ffb).unwrap();
    let o = c.run();
    assert_eq!(o.output, format!("{}\n", 200i64 * (500 * 501 / 2)));
    assert!(o.stats.n_gcs > 0, "the workload must trigger collections");
}

#[test]
fn compile_and_run_helper() {
    let o = compile_and_run("val _ = print (itos (6 * 7))").unwrap();
    assert_eq!(o.output, "42");
}

#[test]
fn compile_errors_render_with_locations() {
    let err = compile("val x = unknown", Variant::Ffb).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("unbound"), "got: {msg}");
    assert!(msg.contains("1:"), "location rendered: {msg}");
}

// ----- property tests against a Rust oracle ---------------------------------

mod props {
    use super::*;
    use sml_testkit::{run_cases, Rng};

    /// A tiny arithmetic-expression AST shared by the SML pretty-printer
    /// and the Rust oracle.
    #[derive(Debug, Clone)]
    enum E {
        Lit(i32),
        Add(Box<E>, Box<E>),
        Sub(Box<E>, Box<E>),
        Mul(Box<E>, Box<E>),
        IfLt(Box<E>, Box<E>, Box<E>, Box<E>),
    }

    fn gen_e(rng: &mut Rng, depth: usize) -> E {
        if depth == 0 || rng.range_usize(0, 10) < 3 {
            return E::Lit(rng.range_i32(-50, 50));
        }
        let d = depth - 1;
        match rng.range_usize(0, 4) {
            0 => E::Add(Box::new(gen_e(rng, d)), Box::new(gen_e(rng, d))),
            1 => E::Sub(Box::new(gen_e(rng, d)), Box::new(gen_e(rng, d))),
            2 => E::Mul(Box::new(gen_e(rng, d)), Box::new(gen_e(rng, d))),
            _ => E::IfLt(
                Box::new(gen_e(rng, d)),
                Box::new(gen_e(rng, d)),
                Box::new(gen_e(rng, d)),
                Box::new(gen_e(rng, d)),
            ),
        }
    }

    fn to_sml(e: &E) -> String {
        match e {
            E::Lit(n) => {
                if *n < 0 {
                    format!("~{}", -(*n as i64))
                } else {
                    n.to_string()
                }
            }
            E::Add(a, b) => format!("({} + {})", to_sml(a), to_sml(b)),
            E::Sub(a, b) => format!("({} - {})", to_sml(a), to_sml(b)),
            E::Mul(a, b) => format!("({} * {})", to_sml(a), to_sml(b)),
            E::IfLt(a, b, c, d) => format!(
                "(if {} < {} then {} else {})",
                to_sml(a),
                to_sml(b),
                to_sml(c),
                to_sml(d)
            ),
        }
    }

    /// Oracle with wrapping semantics matching 31-bit tagged ints is not
    /// needed: values stay small enough with depth 4 and |lit| < 50 that
    /// i64 arithmetic is exact... except Mul chains; clamp via i64.
    fn eval(e: &E) -> i64 {
        match e {
            E::Lit(n) => *n as i64,
            E::Add(a, b) => eval(a).wrapping_add(eval(b)),
            E::Sub(a, b) => eval(a).wrapping_sub(eval(b)),
            E::Mul(a, b) => eval(a).wrapping_mul(eval(b)),
            E::IfLt(a, b, c, d) => {
                if eval(a) < eval(b) {
                    eval(c)
                } else {
                    eval(d)
                }
            }
        }
    }

    fn fits_31(e: &E) -> bool {
        // Reject expressions whose any subterm exceeds the tagged range.
        fn go(e: &E) -> Option<i64> {
            let v = match e {
                E::Lit(n) => *n as i64,
                E::Add(a, b) => go(a)?.checked_add(go(b)?)?,
                E::Sub(a, b) => go(a)?.checked_sub(go(b)?)?,
                E::Mul(a, b) => go(a)?.checked_mul(go(b)?)?,
                E::IfLt(a, b, c, d) => {
                    go(a)?;
                    go(b)?;
                    let c = go(c)?;
                    let d = go(d)?;
                    if c.abs() > d.abs() {
                        c
                    } else {
                        d
                    }
                }
            };
            if v.abs() < (1 << 30) {
                Some(v)
            } else {
                None
            }
        }
        go(e).is_some()
    }

    #[test]
    fn compiled_arithmetic_matches_oracle() {
        run_cases("compiled_arithmetic_matches_oracle", 24, |rng| {
            // Regenerate until every subterm fits the tagged 31-bit range
            // (the analogue of proptest's `prop_filter`).
            let e = loop {
                let e = gen_e(rng, 4);
                if fits_31(&e) {
                    break e;
                }
            };
            let src = format!("val _ = print (itos {})", to_sml(&e));
            let expect = eval(&e).to_string();
            // nrp and ffb bracket the variant space.
            for v in [Variant::Nrp, Variant::Ffb] {
                let o = compile(&src, v).unwrap().run();
                assert_eq!(&o.output, &expect, "variant {}", v.name());
            }
        });
    }
}
